//! Fault-injection harness: adversarial instances and hostile schedules
//! for robustness testing.
//!
//! The generators in [`spec`](crate::spec) produce *plausible* markets;
//! this module produces *hostile* ones — the inputs a serving system sees
//! when an upstream pipeline is broken or a dependency is misbehaving:
//!
//! * **poisoned weights** — NaN, ±infinity, or negative values scattered
//!   into an otherwise healthy weight vector ([`poison_weights`]);
//! * **degenerate graphs** — empty markets, edgeless markets, disconnected
//!   blocks with starved nodes ([`adversarial_instance`]);
//! * **dropout storms** — bursts of worker/task deactivations that stress
//!   incremental repair ([`dropout_storm`]);
//! * **cancellation floods** — schedules of near-zero deadlines and
//!   pre-fired cancellations that stress the solver budget plumbing
//!   ([`cancellation_flood`]).
//!
//! Everything is deterministic in the seed, so a failing campaign case is
//! reproducible from its seed alone. The harness deliberately lives in
//! `mbta-workload` (below `mbta-core` in the dependency order): it only
//! *builds* hostile inputs; driving them through the engine is the job of
//! `mbta-core`'s tests and the CLI's `--inject-faults` campaign.

use mbta_graph::builder::GraphBuilder;
use mbta_graph::random::{random_bipartite, RandomGraphSpec};
use mbta_graph::BipartiteGraph;
use mbta_util::SplitMix64;

/// A class of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Some weights replaced with NaN.
    NanWeights,
    /// Some weights replaced with +∞ or -∞.
    InfiniteWeights,
    /// Some weights replaced with negative finite values.
    NegativeWeights,
    /// Weight slice truncated (length mismatch with the edge count).
    TruncatedWeights,
    /// A market with zero workers or zero tasks.
    EmptyMarket,
    /// Workers and tasks exist but no edges connect them.
    EdgelessMarket,
    /// Two mutually unreachable blocks plus fully isolated nodes.
    Disconnected,
    /// Pathological capacity skew: one worker holds nearly all capacity.
    CapacitySkew,
}

impl FaultKind {
    /// Short label for campaign reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::NanWeights => "nan-weights",
            FaultKind::InfiniteWeights => "inf-weights",
            FaultKind::NegativeWeights => "neg-weights",
            FaultKind::TruncatedWeights => "truncated-weights",
            FaultKind::EmptyMarket => "empty-market",
            FaultKind::EdgelessMarket => "edgeless-market",
            FaultKind::Disconnected => "disconnected",
            FaultKind::CapacitySkew => "capacity-skew",
        }
    }
}

/// An adversarial instance plus the faults that were injected into it.
#[derive(Debug, Clone)]
pub struct FaultyInstance {
    /// The (possibly degenerate) eligibility graph.
    pub graph: BipartiteGraph,
    /// The (possibly poisoned, possibly mis-sized) weight vector.
    pub weights: Vec<f64>,
    /// Which fault classes were injected. Empty means a healthy control
    /// instance — campaigns need those too, to catch over-rejection.
    pub injected: Vec<FaultKind>,
    /// The seed that reproduces this instance exactly.
    pub seed: u64,
}

/// Replaces roughly `fraction` of `weights` with the poison for `kind`
/// (NaN, ±∞, or a negative value). Returns the number of poisoned slots.
/// Deterministic in `seed`. Non-poison kinds leave the slice untouched.
pub fn poison_weights(weights: &mut [f64], fraction: f64, kind: FaultKind, seed: u64) -> usize {
    let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut hit = 0usize;
    for w in weights.iter_mut() {
        if !rng.next_bool(fraction) {
            continue;
        }
        *w = match kind {
            FaultKind::NanWeights => f64::NAN,
            FaultKind::InfiniteWeights => {
                if rng.next_bool(0.5) {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                }
            }
            FaultKind::NegativeWeights => -rng.next_f64() - 1e-9,
            _ => continue,
        };
        hit += 1;
    }
    hit
}

/// Builds a deterministic adversarial instance for `seed`.
///
/// The fault mix rotates with the seed so a campaign over consecutive
/// seeds covers every class: healthy controls, weight poisoning at varying
/// fractions, degenerate topologies, and combinations thereof. Instance
/// sizes stay small (≤ ~60 nodes/side) — robustness campaigns run
/// thousands of these, and the failure modes are structural, not
/// scale-dependent.
pub fn adversarial_instance(seed: u64) -> FaultyInstance {
    let mut rng = SplitMix64::new(seed);
    let mut injected = Vec::new();

    // Topology first.
    let topo = rng.next_below(10);
    let graph = match topo {
        // 0: empty market (one side or both missing).
        0 => {
            injected.push(FaultKind::EmptyMarket);
            let mut b = GraphBuilder::new();
            if rng.next_bool(0.5) {
                b.add_workers(rng.next_index(4), 1);
            } else {
                b.add_tasks(rng.next_index(4), 1);
            }
            b.build().expect("degenerate side-only market builds")
        }
        // 1: workers and tasks but no edges.
        1 => {
            injected.push(FaultKind::EdgelessMarket);
            let mut b = GraphBuilder::new();
            b.add_workers(1 + rng.next_index(6), 1);
            b.add_tasks(1 + rng.next_index(6), 1);
            b.build().expect("edgeless market builds")
        }
        // 2-3: disconnected blocks + isolated nodes.
        2 | 3 => {
            injected.push(FaultKind::Disconnected);
            let mut b = GraphBuilder::new();
            let block = 2 + rng.next_index(5);
            let ws = b.add_workers(2 * block + 2, 1 + rng.next_below(3) as u32);
            let ts = b.add_tasks(2 * block + 2, 1 + rng.next_below(3) as u32);
            // Block A: first `block` workers × first `block` tasks.
            // Block B: second `block` of each. The final +2 nodes per side
            // stay fully isolated.
            for blk in 0..2 {
                for i in 0..block {
                    for j in 0..block {
                        if rng.next_bool(0.6) {
                            let _ = b.add_edge(
                                ws[blk * block + i],
                                ts[blk * block + j],
                                rng.next_f64(),
                                rng.next_f64(),
                            );
                        }
                    }
                }
            }
            b.build().expect("disconnected market builds")
        }
        // 4: extreme capacity skew.
        4 => {
            injected.push(FaultKind::CapacitySkew);
            let mut b = GraphBuilder::new();
            let hog = b.add_worker(1000);
            let ws = b.add_workers(5 + rng.next_index(10), 1);
            let ts = b.add_tasks(6 + rng.next_index(10), 1 + rng.next_below(4) as u32);
            for &t in &ts {
                let _ = b.add_edge(hog, t, rng.next_f64(), rng.next_f64());
                let w = ws[rng.next_index(ws.len())];
                let _ = b.add_edge(w, t, rng.next_f64(), rng.next_f64());
            }
            b.build().expect("skewed market builds")
        }
        // 5-9: structurally healthy random market.
        _ => random_bipartite(
            &RandomGraphSpec {
                n_workers: 5 + rng.next_index(55),
                n_tasks: 5 + rng.next_index(40),
                avg_degree: 1.0 + rng.next_f64() * 6.0,
                capacity: 1 + rng.next_below(3) as u32,
                demand: 1 + rng.next_below(3) as u32,
            },
            rng.next_u64(),
        ),
    };

    // Healthy baseline weights in [0, 1].
    let mut weights: Vec<f64> = (0..graph.n_edges()).map(|_| rng.next_f64()).collect();

    // Then maybe poison them.
    match rng.next_below(8) {
        0 => {
            let kind = FaultKind::NanWeights;
            if poison_weights(
                &mut weights,
                0.05 + rng.next_f64() * 0.5,
                kind,
                rng.next_u64(),
            ) > 0
            {
                injected.push(kind);
            }
        }
        1 => {
            let kind = FaultKind::InfiniteWeights;
            if poison_weights(
                &mut weights,
                0.05 + rng.next_f64() * 0.5,
                kind,
                rng.next_u64(),
            ) > 0
            {
                injected.push(kind);
            }
        }
        2 => {
            let kind = FaultKind::NegativeWeights;
            if poison_weights(
                &mut weights,
                0.05 + rng.next_f64() * 0.5,
                kind,
                rng.next_u64(),
            ) > 0
            {
                injected.push(kind);
            }
        }
        3 if !weights.is_empty() => {
            injected.push(FaultKind::TruncatedWeights);
            let keep = rng.next_index(weights.len());
            weights.truncate(keep);
        }
        _ => {} // healthy weights
    }

    FaultyInstance {
        graph,
        weights,
        injected,
        seed,
    }
}

/// One event of a churn script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Worker logs off (raw id).
    DeactivateWorker(u32),
    /// Worker logs back in.
    ActivateWorker(u32),
    /// Task is cancelled.
    DeactivateTask(u32),
    /// Task is re-posted.
    ActivateTask(u32),
}

/// A dropout storm: a burst of deactivations hitting roughly
/// `storm_fraction` of each side almost back-to-back, followed by a
/// partial recovery wave. Stresses incremental repair far harder than
/// uniform churn — repair work piles up on the survivors, then the
/// recovery wave re-adds nodes into an already-rearranged assignment.
pub fn dropout_storm(
    n_workers: usize,
    n_tasks: usize,
    storm_fraction: f64,
    seed: u64,
) -> Vec<ChurnEvent> {
    let mut rng = SplitMix64::new(seed);
    let mut events = Vec::new();

    let mut workers: Vec<u32> = (0..n_workers as u32).collect();
    let mut tasks: Vec<u32> = (0..n_tasks as u32).collect();
    rng.shuffle(&mut workers);
    rng.shuffle(&mut tasks);
    let w_hit = ((n_workers as f64) * storm_fraction).round() as usize;
    let t_hit = ((n_tasks as f64) * storm_fraction).round() as usize;

    // The storm: interleaved worker/task dropouts.
    let mut wi = workers.iter().take(w_hit).peekable();
    let mut ti = tasks.iter().take(t_hit).peekable();
    while wi.peek().is_some() || ti.peek().is_some() {
        if wi.peek().is_some() && (ti.peek().is_none() || rng.next_bool(0.5)) {
            events.push(ChurnEvent::DeactivateWorker(*wi.next().unwrap()));
        } else if let Some(&t) = ti.next() {
            events.push(ChurnEvent::DeactivateTask(t));
        }
    }

    // Partial recovery: about half of each hit set comes back, in a
    // different order than it left.
    let mut back_w: Vec<u32> = workers.iter().take(w_hit).copied().collect();
    let mut back_t: Vec<u32> = tasks.iter().take(t_hit).copied().collect();
    rng.shuffle(&mut back_w);
    rng.shuffle(&mut back_t);
    for &w in back_w.iter().take(w_hit / 2) {
        events.push(ChurnEvent::ActivateWorker(w));
    }
    for &t in back_t.iter().take(t_hit / 2) {
        events.push(ChurnEvent::ActivateTask(t));
    }
    events
}

/// One solve of a cancellation-flood schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodSolve {
    /// Wall-clock budget for this solve, in milliseconds (0 = already
    /// expired at entry).
    pub deadline_ms: u64,
    /// Whether the cancellation token fires before the solve even starts.
    pub pre_cancelled: bool,
}

/// A cancellation flood: `n` solve budgets drawn adversarially tight —
/// mostly 0–3 ms, with a scatter of pre-fired cancellations and a few
/// generous budgets as controls. Deterministic in `seed`.
pub fn cancellation_flood(n: usize, seed: u64) -> Vec<FloodSolve> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| FloodSolve {
            deadline_ms: match rng.next_below(10) {
                0..=5 => rng.next_below(4),      // brutal: 0-3 ms
                6..=8 => 5 + rng.next_below(45), // tight: 5-49 ms
                _ => 1000,                       // control: effectively unbounded
            },
            pre_cancelled: rng.next_bool(0.2),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_deterministic_in_seed() {
        for seed in 0..50 {
            let a = adversarial_instance(seed);
            let b = adversarial_instance(seed);
            assert_eq!(a.graph.n_edges(), b.graph.n_edges(), "seed {seed}");
            assert_eq!(a.injected, b.injected, "seed {seed}");
            assert_eq!(a.weights.len(), b.weights.len(), "seed {seed}");
            // NaN != NaN, so compare bit patterns.
            let bits = |v: &[f64]| v.iter().map(|w| w.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.weights), bits(&b.weights), "seed {seed}");
        }
    }

    #[test]
    fn campaign_covers_every_fault_class() {
        let mut seen = std::collections::HashSet::new();
        let mut healthy = 0usize;
        for seed in 0..500 {
            let inst = adversarial_instance(seed);
            if inst.injected.is_empty() {
                healthy += 1;
            }
            for k in &inst.injected {
                seen.insert(*k);
            }
        }
        for kind in [
            FaultKind::NanWeights,
            FaultKind::InfiniteWeights,
            FaultKind::NegativeWeights,
            FaultKind::TruncatedWeights,
            FaultKind::EmptyMarket,
            FaultKind::EdgelessMarket,
            FaultKind::Disconnected,
            FaultKind::CapacitySkew,
        ] {
            assert!(seen.contains(&kind), "never injected {}", kind.name());
        }
        assert!(healthy > 50, "need healthy controls, got {healthy}");
    }

    #[test]
    fn poison_respects_fraction_roughly() {
        let mut w = vec![0.5f64; 10_000];
        let hit = poison_weights(&mut w, 0.3, FaultKind::NanWeights, 1);
        assert!((2_500..3_500).contains(&hit), "hit {hit}");
        assert_eq!(w.iter().filter(|x| x.is_nan()).count(), hit);
    }

    #[test]
    fn storm_only_recovers_dropped_nodes() {
        let events = dropout_storm(40, 30, 0.5, 9);
        let mut dropped_w = std::collections::HashSet::new();
        let mut dropped_t = std::collections::HashSet::new();
        for e in &events {
            match *e {
                ChurnEvent::DeactivateWorker(w) => {
                    dropped_w.insert(w);
                }
                ChurnEvent::DeactivateTask(t) => {
                    dropped_t.insert(t);
                }
                ChurnEvent::ActivateWorker(w) => assert!(dropped_w.contains(&w)),
                ChurnEvent::ActivateTask(t) => assert!(dropped_t.contains(&t)),
            }
        }
        assert_eq!(dropped_w.len(), 20);
        assert_eq!(dropped_t.len(), 15);
    }

    #[test]
    fn flood_has_brutal_and_control_budgets() {
        let flood = cancellation_flood(200, 3);
        assert_eq!(flood.len(), 200);
        assert!(flood.iter().any(|f| f.deadline_ms < 4));
        assert!(flood.iter().any(|f| f.deadline_ms == 1000));
        assert!(flood.iter().any(|f| f.pre_cancelled));
        assert!(flood.iter().any(|f| !f.pre_cancelled));
    }
}
