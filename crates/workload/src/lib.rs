//! `mbta-workload`: synthetic labor-market workload generators.
//!
//! The paper's evaluation (like every ICDE task-assignment evaluation of
//! its era) runs on synthetic parameter sweeps plus real platform traces.
//! The traces are not redistributable, so this crate substitutes
//! *trace-shaped* generators (see DESIGN.md §4): the two robust empirical
//! facts about crowd labor markets — heavy-tailed participation/pay and
//! sparse eligibility — are what the algorithms' relative ranking depends
//! on, and both are reproduced here with fixed seeds.
//!
//! * [`dist`] — the samplers ([`dist::Zipf`], Box–Muller normal, uniform
//!   ranges) built on the deterministic `SplitMix64` stream.
//! * [`faults`] — the fault-injection harness: poisoned weights, degenerate
//!   topologies, dropout storms and cancellation floods for robustness
//!   campaigns.
//! * [`spec`] — [`spec::WorkloadSpec`]: a serializable description of an
//!   instance (profile + sizes + seed) that generates the same `Market`
//!   bit-for-bit every time,
//! * [`trace`] — session-structured timed event streams (worker logins,
//!   task postings/expiries) for churn and day-in-the-life simulations.
//!
//! Profiles:
//!
//! | Profile     | Shape                                                       |
//! |-------------|-------------------------------------------------------------|
//! | `Uniform`   | i.i.d. uniform everything — the clean baseline sweep        |
//! | `Zipfian`   | Zipf task popularity (degree skew) and Zipf pay             |
//! | `Microtask` | AMT-like: cheap redundant tasks, high-capacity workers      |
//! | `Freelance` | Upwork-like: expensive one-shot tasks, specialist workers   |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dist;
pub mod faults;
pub mod spec;
pub mod trace;

pub use faults::{adversarial_instance, FaultKind, FaultyInstance};
pub use spec::{Profile, WorkloadSpec};
pub use trace::{normalize_trace, TimedEvent, TraceFile, TraceSpec};
