//! Timed event traces: who is online when.
//!
//! The churn experiments (F14) use uniformly random activate/deactivate
//! events; real markets have *sessions* — a worker logs on, stays a while,
//! logs off; a task is posted and expires. This module generates such
//! session-structured traces deterministically: each worker gets an arrival
//! time uniform over the horizon and an exponentially distributed session
//! length; tasks get posting times and lifetimes the same way. The result
//! is a time-sorted event list a simulation loop can replay against an
//! `IncrementalAssignment` (see the `day_simulation` example).

use mbta_util::SplitMix64;

/// One market event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Worker `id` comes online.
    WorkerOn(u32),
    /// Worker `id` goes offline.
    WorkerOff(u32),
    /// Task `id` is posted.
    TaskPosted(u32),
    /// Task `id` expires (or is cancelled).
    TaskExpired(u32),
}

/// An event with its timestamp (abstract time units in `[0, horizon]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// When the event happens.
    pub time: f64,
    /// What happens.
    pub event: Event,
}

/// Parameters of a session trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Length of the simulated period (e.g. 24.0 for a day in hours).
    pub horizon: f64,
    /// Mean worker session length (exponential).
    pub mean_session: f64,
    /// Mean task lifetime (exponential).
    pub mean_task_lifetime: f64,
    /// Trace seed.
    pub seed: u64,
}

impl TraceSpec {
    /// Generates the sorted event list for `n_workers` workers and
    /// `n_tasks` tasks. Every entity gets exactly one on/posted event; the
    /// matching off/expired event is included only if it falls inside the
    /// horizon (otherwise the entity is still live at the end).
    pub fn generate(&self, n_workers: usize, n_tasks: usize) -> Vec<TimedEvent> {
        assert!(self.horizon > 0.0, "horizon must be positive");
        assert!(
            self.mean_session > 0.0 && self.mean_task_lifetime > 0.0,
            "mean durations must be positive"
        );
        let root = SplitMix64::new(self.seed);
        let mut events = Vec::with_capacity(2 * (n_workers + n_tasks));

        let mut wrng = root.derive("worker-sessions");
        for w in 0..n_workers as u32 {
            let start = wrng.next_f64() * self.horizon;
            let dur = exponential(&mut wrng, self.mean_session);
            events.push(TimedEvent {
                time: start,
                event: Event::WorkerOn(w),
            });
            if start + dur < self.horizon {
                events.push(TimedEvent {
                    time: start + dur,
                    event: Event::WorkerOff(w),
                });
            }
        }
        let mut trng = root.derive("task-lifetimes");
        for t in 0..n_tasks as u32 {
            let posted = trng.next_f64() * self.horizon;
            let dur = exponential(&mut trng, self.mean_task_lifetime);
            events.push(TimedEvent {
                time: posted,
                event: Event::TaskPosted(t),
            });
            if posted + dur < self.horizon {
                events.push(TimedEvent {
                    time: posted + dur,
                    event: Event::TaskExpired(t),
                });
            }
        }
        events.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("times are finite"));
        events
    }
}

/// Exponential sample with the given mean (inverse CDF).
fn exponential(rng: &mut SplitMix64, mean: f64) -> f64 {
    let u = rng.next_f64().max(1e-12);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_util::FxHashMap;

    fn spec() -> TraceSpec {
        TraceSpec {
            horizon: 24.0,
            mean_session: 4.0,
            mean_task_lifetime: 6.0,
            seed: 11,
        }
    }

    #[test]
    fn events_are_sorted_and_in_horizon() {
        let evs = spec().generate(200, 100);
        assert!(evs.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(evs.iter().all(|e| (0.0..24.0).contains(&e.time)));
    }

    #[test]
    fn every_entity_turns_on_once_and_off_at_most_once() {
        let evs = spec().generate(150, 80);
        let mut on: FxHashMap<u32, u32> = FxHashMap::default();
        let mut off: FxHashMap<u32, u32> = FxHashMap::default();
        for e in &evs {
            match e.event {
                Event::WorkerOn(w) => *on.entry(w).or_insert(0) += 1,
                Event::WorkerOff(w) => *off.entry(w).or_insert(0) += 1,
                _ => {}
            }
        }
        assert_eq!(on.len(), 150);
        assert!(on.values().all(|&c| c == 1));
        assert!(off.values().all(|&c| c == 1));
        // With mean session 4h over a 24h horizon most sessions end inside.
        assert!(off.len() > 100, "only {} offs", off.len());
    }

    #[test]
    fn off_follows_on_for_each_worker() {
        let evs = spec().generate(100, 0);
        let mut on_time: FxHashMap<u32, f64> = FxHashMap::default();
        for e in &evs {
            match e.event {
                Event::WorkerOn(w) => {
                    on_time.insert(w, e.time);
                }
                Event::WorkerOff(w) => {
                    assert!(e.time >= on_time[&w], "off before on for {w}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = spec().generate(50, 50);
        let b = spec().generate(50, 50);
        assert_eq!(a, b);
        let mut other = spec();
        other.seed = 12;
        assert_ne!(a, other.generate(50, 50));
    }

    #[test]
    fn mean_session_roughly_respected() {
        // Average measured session (among completed ones) within 25% of the
        // configured mean, over a long horizon so truncation bias is small.
        let long = TraceSpec {
            horizon: 1000.0,
            mean_session: 5.0,
            mean_task_lifetime: 5.0,
            seed: 3,
        };
        let evs = long.generate(2000, 0);
        let mut on_time: FxHashMap<u32, f64> = FxHashMap::default();
        let mut total = 0.0;
        let mut n = 0usize;
        for e in &evs {
            match e.event {
                Event::WorkerOn(w) => {
                    on_time.insert(w, e.time);
                }
                Event::WorkerOff(w) => {
                    total += e.time - on_time[&w];
                    n += 1;
                }
                _ => {}
            }
        }
        let mean = total / n as f64;
        assert!((3.75..6.25).contains(&mean), "mean session {mean}");
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        TraceSpec {
            horizon: 0.0,
            mean_session: 1.0,
            mean_task_lifetime: 1.0,
            seed: 0,
        }
        .generate(1, 1);
    }
}
