//! Timed event traces: who is online when.
//!
//! The churn experiments (F14) use uniformly random activate/deactivate
//! events; real markets have *sessions* — a worker logs on, stays a while,
//! logs off; a task is posted and expires. This module generates such
//! session-structured traces deterministically: each worker gets an arrival
//! time uniform over the horizon and an exponentially distributed session
//! length; tasks get posting times and lifetimes the same way. The result
//! is a time-sorted event list a simulation loop can replay against an
//! `IncrementalAssignment` (see the `day_simulation` example) or feed into
//! the streaming dispatch service (`mbta-service`).
//!
//! # Ordering contract
//!
//! Every trace returned by this module is **normalized**
//! ([`normalize_trace`]): events are sorted by `(time, event)` under
//! [`f64::total_cmp`], exact duplicates are removed, and timestamps are
//! then made *strictly* monotone (ties are bumped up by one ULP). Strict
//! monotonicity means downstream consumers never depend on how a sort
//! implementation breaks ties — replaying the same trace yields the same
//! batch boundaries on every platform.
//!
//! # Persistence
//!
//! [`TraceFile`] bundles a trace with the [`WorkloadSpec`] of the market
//! universe it runs against, in a line-oriented text format
//! ([`TraceFile::render`] / [`TraceFile::parse`]). A trace file is therefore
//! self-contained: `mbta serve --trace FILE` regenerates the universe from
//! the header and replays the events, bit-identically.

use crate::spec::{Profile, WorkloadSpec};
use mbta_util::SplitMix64;
use std::fmt;

/// One market event.
///
/// The derived `Ord` (variant order, then id) is part of the normalization
/// contract: it is the deterministic tie-break for events sharing a
/// timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Event {
    /// Worker `id` comes online.
    WorkerOn(u32),
    /// Worker `id` goes offline.
    WorkerOff(u32),
    /// Task `id` is posted.
    TaskPosted(u32),
    /// Task `id` expires (or is cancelled).
    TaskExpired(u32),
}

impl Event {
    /// The stable on-disk keyword for this event kind.
    pub fn keyword(&self) -> &'static str {
        match self {
            Event::WorkerOn(_) => "won",
            Event::WorkerOff(_) => "woff",
            Event::TaskPosted(_) => "tpost",
            Event::TaskExpired(_) => "texp",
        }
    }

    /// The entity id the event refers to.
    pub fn id(&self) -> u32 {
        match *self {
            Event::WorkerOn(id)
            | Event::WorkerOff(id)
            | Event::TaskPosted(id)
            | Event::TaskExpired(id) => id,
        }
    }
}

/// An event with its timestamp (abstract time units in `[0, horizon]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// When the event happens.
    pub time: f64,
    /// What happens.
    pub event: Event,
}

/// Parameters of a session trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Length of the simulated period (e.g. 24.0 for a day in hours).
    pub horizon: f64,
    /// Mean worker session length (exponential).
    pub mean_session: f64,
    /// Mean task lifetime (exponential).
    pub mean_task_lifetime: f64,
    /// Trace seed.
    pub seed: u64,
}

impl TraceSpec {
    /// Generates the normalized event list for `n_workers` workers and
    /// `n_tasks` tasks: one session per worker, one posting per task. The
    /// matching off/expired event is included only if it falls inside the
    /// horizon (otherwise the entity is still live at the end).
    pub fn generate(&self, n_workers: usize, n_tasks: usize) -> Vec<TimedEvent> {
        self.generate_repeated(n_workers, n_tasks, 1)
    }

    /// Like [`generate`](Self::generate), but every worker gets `repeats`
    /// independent sessions and every task is re-posted `repeats` times.
    /// This is how long high-churn streams are produced for the dispatch
    /// service: the event count scales as ≈ `2 · repeats · (workers +
    /// tasks)` without growing the market universe.
    ///
    /// Sessions of the same worker may overlap (arrivals are independent);
    /// consumers must treat activation events as idempotent, which both
    /// `IncrementalAssignment` and the dispatch service do.
    pub fn generate_repeated(
        &self,
        n_workers: usize,
        n_tasks: usize,
        repeats: u32,
    ) -> Vec<TimedEvent> {
        assert!(self.horizon > 0.0, "horizon must be positive");
        assert!(
            self.mean_session > 0.0 && self.mean_task_lifetime > 0.0,
            "mean durations must be positive"
        );
        assert!(repeats >= 1, "repeats must be >= 1");
        let root = SplitMix64::new(self.seed);
        let mut events = Vec::with_capacity(2 * repeats as usize * (n_workers + n_tasks));

        let mut wrng = root.derive("worker-sessions");
        for _ in 0..repeats {
            for w in 0..n_workers as u32 {
                let start = wrng.next_f64() * self.horizon;
                let dur = exponential(&mut wrng, self.mean_session);
                events.push(TimedEvent {
                    time: start,
                    event: Event::WorkerOn(w),
                });
                if start + dur < self.horizon {
                    events.push(TimedEvent {
                        time: start + dur,
                        event: Event::WorkerOff(w),
                    });
                }
            }
        }
        let mut trng = root.derive("task-lifetimes");
        for _ in 0..repeats {
            for t in 0..n_tasks as u32 {
                let posted = trng.next_f64() * self.horizon;
                let dur = exponential(&mut trng, self.mean_task_lifetime);
                events.push(TimedEvent {
                    time: posted,
                    event: Event::TaskPosted(t),
                });
                if posted + dur < self.horizon {
                    events.push(TimedEvent {
                        time: posted + dur,
                        event: Event::TaskExpired(t),
                    });
                }
            }
        }
        normalize_trace(&mut events);
        events
    }
}

/// The smallest `f64` strictly greater than `x` (finite `x` only).
fn strictly_after(x: f64) -> f64 {
    debug_assert!(x.is_finite());
    if x == 0.0 {
        // Covers -0.0 too: the smallest positive subnormal.
        return f64::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

/// Normalizes a trace in place: sorts by `(time, event)` with
/// [`f64::total_cmp`] (a *total* order — no platform- or data-dependent
/// tie-breaking, unlike `partial_cmp`-based sorts), removes exact
/// duplicates, and bumps remaining timestamp ties up by one ULP so the
/// sequence is strictly monotone.
///
/// Idempotent, and invariant under input permutation: any reordering of the
/// same multiset of events normalizes to the same byte-identical trace.
///
/// # Panics
/// Panics if any timestamp is non-finite (traces model wall-clock offsets;
/// NaN/±∞ have no meaningful position in a schedule).
pub fn normalize_trace(events: &mut Vec<TimedEvent>) {
    for e in events.iter() {
        assert!(e.time.is_finite(), "non-finite event time {}", e.time);
    }
    events.sort_by(|a, b| {
        a.time
            .total_cmp(&b.time)
            .then_with(|| a.event.cmp(&b.event))
    });
    events.dedup_by(|a, b| a.time.to_bits() == b.time.to_bits() && a.event == b.event);
    let mut time_bumps = 0u64;
    let mut prev: Option<f64> = None;
    for e in events.iter_mut() {
        if let Some(p) = prev {
            if e.time <= p {
                e.time = strictly_after(p);
                time_bumps += 1;
            }
        }
        prev = Some(e.time);
    }
    mbta_telemetry::counter_add("mbta_workload_trace_events_total", events.len() as u64);
    mbta_telemetry::counter_add("mbta_workload_trace_time_bumps_total", time_bumps);
}

/// Error from [`TraceFile::parse`], locating the problem both ways a
/// reader might look for it: by line number (for an editor) and by byte
/// offset of that line's start (for `dd`/`xxd` on a large or binary-mangled
/// file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the problem.
    pub line: usize,
    /// Byte offset of the offending line's first byte within the input
    /// (`0` for errors not tied to a file position, e.g. a missing spec
    /// header or an invalid in-memory event list).
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace line {} (byte offset {}): {}",
            self.line, self.offset, self.message
        )
    }
}

impl std::error::Error for TraceParseError {}

/// A self-contained persisted trace: the market universe spec plus the
/// normalized event stream that plays against it.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// The spec regenerating the market universe the events refer to.
    pub spec: WorkloadSpec,
    /// The normalized event stream.
    pub events: Vec<TimedEvent>,
}

impl TraceFile {
    /// Builds a trace file, normalizing the events and validating that
    /// every event id is inside the spec's universe.
    pub fn new(spec: WorkloadSpec, mut events: Vec<TimedEvent>) -> Result<Self, TraceParseError> {
        normalize_trace(&mut events);
        for (i, e) in events.iter().enumerate() {
            check_id_in_universe(&spec, e.event).map_err(|message| TraceParseError {
                line: i + 1,
                offset: 0, // in-memory events have no file position
                message,
            })?;
        }
        Ok(TraceFile { spec, events })
    }

    /// Renders the line-oriented text format. Timestamps use Rust's
    /// shortest round-tripping `f64` display, so
    /// `parse(render(t)) == t` bit-for-bit.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(32 * self.events.len() + 128);
        out.push_str("# mbta-trace v1\n");
        out.push_str(&format!(
            "spec profile={} workers={} tasks={} degree={} dims={} seed={}\n",
            self.spec.profile.name(),
            self.spec.n_workers,
            self.spec.n_tasks,
            self.spec.avg_worker_degree,
            self.spec.skill_dims,
            self.spec.seed,
        ));
        for e in &self.events {
            out.push_str(&format!(
                "{} {} {}\n",
                e.event.keyword(),
                e.event.id(),
                e.time
            ));
        }
        out
    }

    /// Parses the text format produced by [`render`](Self::render).
    /// Validates timestamps (finite), event kinds, and that ids fall inside
    /// the declared universe; the parsed trace is re-normalized, so a
    /// hand-edited file with out-of-order lines still replays
    /// deterministically.
    pub fn parse(text: &str) -> Result<TraceFile, TraceParseError> {
        let err = |line: usize, offset: usize, message: String| TraceParseError {
            line,
            offset,
            message,
        };
        let mut spec: Option<WorkloadSpec> = None;
        let mut events = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            // `raw` borrows from `text`, so the pointer difference is the
            // exact byte offset of this line's start — correct under both
            // `\n` and `\r\n` endings, where a running `len() + 1` is not.
            let at = raw.as_ptr() as usize - text.as_ptr() as usize;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let head = parts.next().expect("non-empty line has a first token");
            if head == "spec" {
                if spec.is_some() {
                    return Err(err(line_no, at, "duplicate spec line".into()));
                }
                spec = Some(parse_spec_line(parts, line_no, at)?);
                continue;
            }
            let kind = head;
            let id: u32 = parts
                .next()
                .ok_or_else(|| err(line_no, at, "missing event id".into()))?
                .parse()
                .map_err(|_| err(line_no, at, "bad event id".into()))?;
            let time: f64 = parts
                .next()
                .ok_or_else(|| err(line_no, at, "missing timestamp".into()))?
                .parse()
                .map_err(|_| err(line_no, at, "bad timestamp".into()))?;
            if !time.is_finite() {
                return Err(err(line_no, at, format!("non-finite timestamp {time}")));
            }
            if parts.next().is_some() {
                return Err(err(line_no, at, "trailing tokens".into()));
            }
            let event = match kind {
                "won" => Event::WorkerOn(id),
                "woff" => Event::WorkerOff(id),
                "tpost" => Event::TaskPosted(id),
                "texp" => Event::TaskExpired(id),
                other => return Err(err(line_no, at, format!("unknown event kind '{other}'"))),
            };
            events.push(TimedEvent { time, event });
        }
        let spec = spec.ok_or_else(|| err(0, 0, "missing spec header line".into()))?;
        TraceFile::new(spec, events)
    }
}

fn check_id_in_universe(spec: &WorkloadSpec, event: Event) -> Result<(), String> {
    let (limit, side) = match event {
        Event::WorkerOn(_) | Event::WorkerOff(_) => (spec.n_workers, "worker"),
        Event::TaskPosted(_) | Event::TaskExpired(_) => (spec.n_tasks, "task"),
    };
    if (event.id() as usize) < limit {
        Ok(())
    } else {
        Err(format!(
            "{side} id {} out of universe range 0..{limit}",
            event.id()
        ))
    }
}

fn parse_spec_line<'a>(
    parts: impl Iterator<Item = &'a str>,
    line_no: usize,
    offset: usize,
) -> Result<WorkloadSpec, TraceParseError> {
    let err = |message: String| TraceParseError {
        line: line_no,
        offset,
        message,
    };
    let mut profile = None;
    let mut workers = None;
    let mut tasks = None;
    let mut degree = None;
    let mut dims = None;
    let mut seed = None;
    for kv in parts {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| err(format!("malformed spec field '{kv}'")))?;
        match k {
            "profile" => {
                profile = Some(match v {
                    "uniform" => Profile::Uniform,
                    "zipfian" => Profile::Zipfian,
                    "microtask" => Profile::Microtask,
                    "freelance" => Profile::Freelance,
                    other => return Err(err(format!("unknown profile '{other}'"))),
                })
            }
            "workers" => workers = Some(v.parse().map_err(|_| err("bad workers".into()))?),
            "tasks" => tasks = Some(v.parse().map_err(|_| err("bad tasks".into()))?),
            "degree" => degree = Some(v.parse().map_err(|_| err("bad degree".into()))?),
            "dims" => dims = Some(v.parse().map_err(|_| err("bad dims".into()))?),
            "seed" => seed = Some(v.parse().map_err(|_| err("bad seed".into()))?),
            other => return Err(err(format!("unknown spec field '{other}'"))),
        }
    }
    Ok(WorkloadSpec {
        profile: profile.ok_or_else(|| err("spec missing profile".into()))?,
        n_workers: workers.ok_or_else(|| err("spec missing workers".into()))?,
        n_tasks: tasks.ok_or_else(|| err("spec missing tasks".into()))?,
        avg_worker_degree: degree.ok_or_else(|| err("spec missing degree".into()))?,
        skill_dims: dims.ok_or_else(|| err("spec missing dims".into()))?,
        seed: seed.ok_or_else(|| err("spec missing seed".into()))?,
    })
}

/// Exponential sample with the given mean (inverse CDF).
fn exponential(rng: &mut SplitMix64, mean: f64) -> f64 {
    let u = rng.next_f64().max(1e-12);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_util::FxHashMap;

    fn spec() -> TraceSpec {
        TraceSpec {
            horizon: 24.0,
            mean_session: 4.0,
            mean_task_lifetime: 6.0,
            seed: 11,
        }
    }

    #[test]
    fn events_are_strictly_sorted_and_in_horizon() {
        let evs = spec().generate(200, 100);
        assert!(evs.windows(2).all(|w| w[0].time < w[1].time), "ties left");
        assert!(evs.iter().all(|e| (0.0..24.0).contains(&e.time)));
    }

    #[test]
    fn every_entity_turns_on_once_and_off_at_most_once() {
        let evs = spec().generate(150, 80);
        let mut on: FxHashMap<u32, u32> = FxHashMap::default();
        let mut off: FxHashMap<u32, u32> = FxHashMap::default();
        for e in &evs {
            match e.event {
                Event::WorkerOn(w) => *on.entry(w).or_insert(0) += 1,
                Event::WorkerOff(w) => *off.entry(w).or_insert(0) += 1,
                _ => {}
            }
        }
        assert_eq!(on.len(), 150);
        assert!(on.values().all(|&c| c == 1));
        assert!(off.values().all(|&c| c == 1));
        // With mean session 4h over a 24h horizon most sessions end inside.
        assert!(off.len() > 100, "only {} offs", off.len());
    }

    #[test]
    fn repeated_sessions_scale_event_count() {
        let one = spec().generate_repeated(100, 80, 1);
        let four = spec().generate_repeated(100, 80, 4);
        assert!(
            four.len() > 3 * one.len(),
            "{} vs {}",
            four.len(),
            one.len()
        );
        assert!(four.windows(2).all(|w| w[0].time < w[1].time));
        // Each worker now has up to 4 on events.
        let mut on: FxHashMap<u32, u32> = FxHashMap::default();
        for e in &four {
            if let Event::WorkerOn(w) = e.event {
                *on.entry(w).or_insert(0) += 1;
            }
        }
        assert!(on.values().all(|&c| (1..=4).contains(&c)));
    }

    #[test]
    fn off_follows_on_for_each_worker() {
        let evs = spec().generate(100, 0);
        let mut on_time: FxHashMap<u32, f64> = FxHashMap::default();
        for e in &evs {
            match e.event {
                Event::WorkerOn(w) => {
                    on_time.insert(w, e.time);
                }
                Event::WorkerOff(w) => {
                    assert!(e.time >= on_time[&w], "off before on for {w}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = spec().generate(50, 50);
        let b = spec().generate(50, 50);
        assert_eq!(a, b);
        let mut other = spec();
        other.seed = 12;
        assert_ne!(a, other.generate(50, 50));
    }

    #[test]
    fn normalize_breaks_ties_strictly_and_deterministically() {
        // Regression test for cross-platform ordering determinism: exact
        // timestamp ties used to rely on sort-stability + insertion order,
        // so two differently-produced permutations of the same trace could
        // replay differently. normalize_trace must map ANY permutation of
        // the same events to one strictly-monotone sequence.
        let base = vec![
            TimedEvent {
                time: 1.0,
                event: Event::TaskPosted(3),
            },
            TimedEvent {
                time: 1.0,
                event: Event::WorkerOn(7),
            },
            TimedEvent {
                time: 1.0,
                event: Event::WorkerOn(2),
            },
            TimedEvent {
                time: 0.5,
                event: Event::WorkerOff(1),
            },
            TimedEvent {
                time: 1.0,
                event: Event::WorkerOn(2),
            }, // exact dup
            TimedEvent {
                time: 2.0,
                event: Event::TaskExpired(3),
            },
        ];
        let mut a = base.clone();
        normalize_trace(&mut a);
        // Dup removed, strictly increasing.
        assert_eq!(a.len(), 5);
        assert!(a.windows(2).all(|w| w[0].time < w[1].time));
        // Tie-break is (variant, id): WorkerOn(2) < WorkerOn(7) < TaskPosted(3).
        assert_eq!(a[1].event, Event::WorkerOn(2));
        assert_eq!(a[2].event, Event::WorkerOn(7));
        assert_eq!(a[3].event, Event::TaskPosted(3));
        // The bumped timestamps moved by one ULP, not a visible amount.
        assert!(a[2].time > 1.0 && a[2].time < 1.0 + 1e-9);

        // Any permutation normalizes to the identical byte sequence.
        let mut rng = SplitMix64::new(99);
        for _ in 0..20 {
            let mut p = base.clone();
            rng.shuffle(&mut p);
            normalize_trace(&mut p);
            let bits = |v: &[TimedEvent]| {
                v.iter()
                    .map(|e| (e.time.to_bits(), e.event))
                    .collect::<Vec<_>>()
            };
            assert_eq!(bits(&p), bits(&a));
        }

        // Idempotent.
        let mut again = a.clone();
        normalize_trace(&mut again);
        assert_eq!(again, a);
    }

    #[test]
    #[should_panic(expected = "non-finite event time")]
    fn normalize_rejects_nan_times() {
        let mut evs = vec![TimedEvent {
            time: f64::NAN,
            event: Event::WorkerOn(0),
        }];
        normalize_trace(&mut evs);
    }

    #[test]
    fn strictly_after_is_minimal_increment() {
        for x in [0.0, -0.0, 1.0, 24.0, 1e-300, -3.5] {
            let y = strictly_after(x);
            assert!(y > x, "{y} not after {x}");
            // Nothing fits between x and y.
            let mid = (x + y) / 2.0;
            assert!(mid <= x || mid >= y);
        }
    }

    #[test]
    fn trace_file_roundtrips_bit_identically() {
        let wspec = WorkloadSpec {
            profile: Profile::Zipfian,
            n_workers: 60,
            n_tasks: 40,
            avg_worker_degree: 5.5,
            skill_dims: 8,
            seed: 17,
        };
        let events = spec().generate_repeated(60, 40, 2);
        let tf = TraceFile::new(wspec, events).unwrap();
        let text = tf.render();
        let back = TraceFile::parse(&text).unwrap();
        assert_eq!(back.spec, tf.spec);
        let bits = |v: &[TimedEvent]| {
            v.iter()
                .map(|e| (e.time.to_bits(), e.event))
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&back.events), bits(&tf.events));
        // Render is a fixed point too (replay logs compare byte-equal).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn trace_file_rejects_bad_input() {
        let good =
            "# c\nspec profile=uniform workers=4 tasks=2 degree=2 dims=2 seed=1\nwon 0 0.5\n";
        assert!(TraceFile::parse(good).is_ok());
        // Missing spec.
        assert!(TraceFile::parse("won 0 0.5\n").is_err());
        // Out-of-universe id.
        let bad_id = "spec profile=uniform workers=4 tasks=2 degree=2 dims=2 seed=1\nwon 4 0.5\n";
        assert!(TraceFile::parse(bad_id).is_err());
        // Unknown kind, bad time, trailing garbage.
        for line in [
            "zap 0 0.5",
            "won 0 nan",
            "won 0 0.5 extra",
            "won x 0.5",
            "won 0",
        ] {
            let text =
                format!("spec profile=uniform workers=4 tasks=2 degree=2 dims=2 seed=1\n{line}\n");
            assert!(TraceFile::parse(&text).is_err(), "accepted: {line}");
        }
        // Duplicate or malformed spec lines.
        let dup = "spec profile=uniform workers=4 tasks=2 degree=2 dims=2 seed=1\n\
                   spec profile=uniform workers=4 tasks=2 degree=2 dims=2 seed=1\n";
        assert!(TraceFile::parse(dup).is_err());
        assert!(
            TraceFile::parse("spec profile=nope workers=1 tasks=1 degree=1 dims=1 seed=1\n")
                .is_err()
        );
        assert!(TraceFile::parse("spec workers=1 tasks=1 degree=1 dims=1 seed=1\n").is_err());
        assert!(TraceFile::parse(
            "spec profile=uniform workers=1 tasks=1 degree=1 dims=1 seed=1 bogus=2\n"
        )
        .is_err());
    }

    #[test]
    fn parse_error_reports_line_and_byte_offset() {
        // A corrupted line in the middle of an otherwise valid file: the
        // error must name both the 1-based line and the byte offset of
        // that line's start, so the bad bytes can be found with either an
        // editor (`:4`) or `xxd -s <offset>`.
        let header = "# mbta-trace v1\n";
        let spec_line = "spec profile=uniform workers=4 tasks=2 degree=2 dims=2 seed=1\n";
        let good = "won 0 0.5\n";
        let bad = "won 1 garbage\n";
        let text = format!("{header}{spec_line}{good}{bad}won 2 0.9\n");

        let e = TraceFile::parse(&text).unwrap_err();
        assert_eq!(e.line, 4);
        assert_eq!(e.offset, header.len() + spec_line.len() + good.len());
        assert_eq!(e.message, "bad timestamp");
        let shown = e.to_string();
        assert!(shown.contains("line 4"), "display: {shown}");
        assert!(
            shown.contains(&format!("byte offset {}", e.offset)),
            "display: {shown}"
        );

        // CRLF endings shift every line start by one extra byte; the
        // pointer-derived offset must track that exactly.
        let crlf = text.replace('\n', "\r\n");
        let e2 = TraceFile::parse(&crlf).unwrap_err();
        assert_eq!(e2.line, 4);
        assert_eq!(e2.offset, e.offset + 3, "three CRLF line ends precede");
    }

    #[test]
    fn mean_session_roughly_respected() {
        // Average measured session (among completed ones) within 25% of the
        // configured mean, over a long horizon so truncation bias is small.
        let long = TraceSpec {
            horizon: 1000.0,
            mean_session: 5.0,
            mean_task_lifetime: 5.0,
            seed: 3,
        };
        let evs = long.generate(2000, 0);
        let mut on_time: FxHashMap<u32, f64> = FxHashMap::default();
        let mut total = 0.0;
        let mut n = 0usize;
        for e in &evs {
            match e.event {
                Event::WorkerOn(w) => {
                    on_time.insert(w, e.time);
                }
                Event::WorkerOff(w) => {
                    total += e.time - on_time[&w];
                    n += 1;
                }
                _ => {}
            }
        }
        let mean = total / n as f64;
        assert!((3.75..6.25).contains(&mean), "mean session {mean}");
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        TraceSpec {
            horizon: 0.0,
            mean_session: 1.0,
            mean_task_lifetime: 1.0,
            seed: 0,
        }
        .generate(1, 1);
    }
}
