//! Distribution samplers over the deterministic `SplitMix64` stream.
//!
//! `rand_distr` is not on the dependency allowlist, and determinism across
//! toolchain updates matters more here than sampler sophistication, so the
//! three distributions the profiles need are implemented directly:
//! uniform ranges, Box–Muller normal, and table-inversion Zipf.

use mbta_util::SplitMix64;

/// Uniform sample in `[lo, hi)`.
#[inline]
pub fn uniform(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi);
    lo + (hi - lo) * rng.next_f64()
}

/// Standard normal via Box–Muller (one sample per call; the twin is
/// discarded — simplicity over throughput, generation is not a hot path).
pub fn normal(rng: &mut SplitMix64, mean: f64, stddev: f64) -> f64 {
    // Avoid ln(0): nudge u1 away from zero.
    let u1 = rng.next_f64().max(1e-12);
    let u2 = rng.next_f64();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + stddev * z
}

/// Log-normal: `exp(normal(μ, σ))`.
pub fn log_normal(rng: &mut SplitMix64, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Zipf sampler over ranks `0..n` with exponent `s`: rank `r` has weight
/// `(r+1)^-s`. Table inversion — O(n) setup, O(log n) per sample.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `n ≥ 1`, `s ≥ 0` (s = 0 degenerates to uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `0..n` (rank 0 is the most popular).
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        // First index with cdf >= u.
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

/// Samples a sparse vector in `[0,1]^d`: each dimension is active with
/// probability `density`; active dimensions get `uniform(lo, hi)`. At least
/// one dimension is always activated (a fully zero skill vector would make
/// the node structurally useless and is never what a profile wants).
pub fn sparse_unit_vector(
    rng: &mut SplitMix64,
    d: usize,
    density: f64,
    lo: f64,
    hi: f64,
) -> Vec<f64> {
    assert!(d >= 1, "need at least one dimension");
    let mut v = vec![0.0; d];
    let mut any = false;
    for slot in v.iter_mut() {
        if rng.next_bool(density) {
            *slot = uniform(rng, lo, hi);
            any = true;
        }
    }
    if !any {
        let i = rng.next_index(d);
        v[i] = uniform(rng, lo, hi);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            let x = uniform(&mut rng, 2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = SplitMix64::new(2);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(log_normal(&mut rng, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(100, 1.1);
        let mut rng = SplitMix64::new(4);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 is the single most frequent, and the head dominates the
        // tail (top-10 gets more than half the mass at s = 1.1, n = 100).
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[50]);
        let head: u32 = counts[..10].iter().sum();
        assert!(head > 50_000, "head mass {head}");
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(37, 0.8);
        let total: f64 = (0..37).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = SplitMix64::new(5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn sparse_vector_never_all_zero() {
        let mut rng = SplitMix64::new(6);
        for _ in 0..1000 {
            let v = sparse_unit_vector(&mut rng, 8, 0.05, 0.5, 1.0);
            assert!(v.iter().any(|&x| x > 0.0));
            assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn sparse_vector_density_controls_fill() {
        let mut rng = SplitMix64::new(7);
        let mut dense_active = 0usize;
        let mut sparse_active = 0usize;
        for _ in 0..500 {
            dense_active += sparse_unit_vector(&mut rng, 10, 0.9, 0.1, 1.0)
                .iter()
                .filter(|&&x| x > 0.0)
                .count();
            sparse_active += sparse_unit_vector(&mut rng, 10, 0.2, 0.1, 1.0)
                .iter()
                .filter(|&&x| x > 0.0)
                .count();
        }
        assert!(dense_active > 3 * sparse_active);
    }
}
