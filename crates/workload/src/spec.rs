//! Workload specifications and market generation.
//!
//! A [`WorkloadSpec`] fully determines a market: same spec + same seed ⇒
//! byte-identical instance. Specs are `serde`-serializable so an experiment
//! configuration can be recorded alongside its results.

use crate::dist::{log_normal, sparse_unit_vector, uniform, Zipf};
use mbta_market::{Market, SkillVector, Task, Worker};
use mbta_util::{FxHashSet, SplitMix64};
use serde::{Deserialize, Serialize};

/// Market profile — see the crate docs for the shape of each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Profile {
    /// i.i.d. uniform attributes, uniform task popularity.
    Uniform,
    /// Zipf task popularity (degree skew) and Zipf-ranked pay.
    Zipfian,
    /// AMT-like microtask market: cheap redundant tasks, broad skills,
    /// high-capacity workers.
    Microtask,
    /// Upwork-like freelance market: expensive one-shot tasks, specialist
    /// workers, heavy-tailed pay.
    Freelance,
}

impl Profile {
    /// All profiles, for dataset-statistics tables.
    pub fn all() -> [Profile; 4] {
        [
            Profile::Uniform,
            Profile::Zipfian,
            Profile::Microtask,
            Profile::Freelance,
        ]
    }

    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Profile::Uniform => "uniform",
            Profile::Zipfian => "zipfian",
            Profile::Microtask => "microtask",
            Profile::Freelance => "freelance",
        }
    }
}

/// A fully deterministic description of a market instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which market shape to generate.
    pub profile: Profile,
    /// Number of workers.
    pub n_workers: usize,
    /// Number of tasks.
    pub n_tasks: usize,
    /// Average eligibility degree per worker (capped by the complete graph).
    pub avg_worker_degree: f64,
    /// Skill/interest dimensionality.
    pub skill_dims: usize,
    /// Master seed; every attribute stream is derived from it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A reasonable default instance for a profile (used by examples).
    pub fn demo(profile: Profile) -> Self {
        Self {
            profile,
            n_workers: 1000,
            n_tasks: 500,
            avg_worker_degree: 8.0,
            skill_dims: 8,
            seed: 42,
        }
    }

    /// Generates the market. Deterministic in the spec.
    ///
    /// # Example
    /// ```
    /// use mbta_workload::{Profile, WorkloadSpec};
    ///
    /// let spec = WorkloadSpec {
    ///     profile: Profile::Freelance,
    ///     n_workers: 100,
    ///     n_tasks: 50,
    ///     avg_worker_degree: 4.0,
    ///     skill_dims: 8,
    ///     seed: 7,
    /// };
    /// let market = spec.generate();
    /// assert_eq!(market.n_workers(), 100);
    /// // Same spec, same market — bit for bit.
    /// assert_eq!(market.n_eligible_pairs(), spec.generate().n_eligible_pairs());
    /// ```
    pub fn generate(&self) -> Market {
        assert!(self.skill_dims >= 1, "need at least one skill dimension");
        let root = SplitMix64::new(self.seed);
        let workers = self.gen_workers(&mut root.derive("workers"));
        let tasks = self.gen_tasks(&mut root.derive("tasks"));
        let eligibility = self.gen_eligibility(&mut root.derive("edges"));
        Market::new(workers, tasks, eligibility).expect("generator produces consistent markets")
    }

    fn gen_workers(&self, rng: &mut SplitMix64) -> Vec<Worker> {
        let d = self.skill_dims;
        (0..self.n_workers)
            .map(|_| match self.profile {
                Profile::Uniform => Worker::new(
                    SkillVector::new(&sparse_unit_vector(rng, d, 0.8, 0.0, 1.0)),
                    uniform(rng, 0.5, 1.0),
                    1 + rng.next_below(3) as u32,
                    uniform(rng, 5.0, 15.0),
                    SkillVector::new(&sparse_unit_vector(rng, d, 0.8, 0.0, 1.0)),
                ),
                Profile::Zipfian => Worker::new(
                    SkillVector::new(&sparse_unit_vector(rng, d, 0.4, 0.2, 1.0)),
                    uniform(rng, 0.4, 1.0),
                    1 + rng.next_below(3) as u32,
                    log_normal(rng, 2.3, 0.5), // median ≈ 10
                    SkillVector::new(&sparse_unit_vector(rng, d, 0.4, 0.2, 1.0)),
                ),
                Profile::Microtask => Worker::new(
                    // Broad, shallow skills: almost everyone can do
                    // almost everything, reliability is the differentiator.
                    SkillVector::new(&sparse_unit_vector(rng, d, 0.9, 0.5, 1.0)),
                    uniform(rng, 0.3, 1.0),
                    5 + rng.next_below(16) as u32, // 5..20 microtasks
                    uniform(rng, 0.10, 0.30),
                    SkillVector::new(&sparse_unit_vector(rng, d, 0.9, 0.2, 1.0)),
                ),
                Profile::Freelance => Worker::new(
                    // Specialists: one or two strong dimensions.
                    SkillVector::new(&sparse_unit_vector(rng, d, 1.5 / d as f64, 0.7, 1.0)),
                    uniform(rng, 0.6, 1.0),
                    1,
                    log_normal(rng, 4.0, 0.8), // median ≈ 55
                    SkillVector::new(&sparse_unit_vector(rng, d, 2.0 / d as f64, 0.5, 1.0)),
                ),
            })
            .collect()
    }

    fn gen_tasks(&self, rng: &mut SplitMix64) -> Vec<Task> {
        let d = self.skill_dims;
        let pay_rank = Zipf::new(self.n_tasks.max(1), 1.0);
        (0..self.n_tasks)
            .map(|_| match self.profile {
                Profile::Uniform => Task::new(
                    SkillVector::new(&sparse_unit_vector(rng, d, 0.6, 0.0, 1.0)),
                    uniform(rng, 0.0, 1.0),
                    uniform(rng, 5.0, 15.0),
                    1 + rng.next_below(3) as u32,
                    SkillVector::new(&sparse_unit_vector(rng, d, 0.6, 0.0, 1.0)),
                ),
                Profile::Zipfian => {
                    // Pay follows a Zipf rank draw: a few hot, well-paid
                    // tasks and a long cheap tail.
                    let rank = pay_rank.sample(rng);
                    let pay = 40.0 / (1.0 + rank as f64).sqrt() + uniform(rng, 0.0, 2.0);
                    Task::new(
                        SkillVector::new(&sparse_unit_vector(rng, d, 0.4, 0.2, 1.0)),
                        uniform(rng, 0.0, 1.0),
                        pay,
                        1 + rng.next_below(3) as u32,
                        SkillVector::new(&sparse_unit_vector(rng, d, 0.4, 0.2, 1.0)),
                    )
                }
                Profile::Microtask => Task::new(
                    SkillVector::new(&sparse_unit_vector(rng, d, 0.7, 0.1, 0.6)),
                    uniform(rng, 0.0, 0.4),
                    uniform(rng, 0.05, 0.50),
                    if rng.next_bool(0.5) { 3 } else { 5 }, // redundancy
                    SkillVector::new(&sparse_unit_vector(rng, d, 0.7, 0.1, 0.8)),
                ),
                Profile::Freelance => Task::new(
                    SkillVector::new(&sparse_unit_vector(rng, d, 1.5 / d as f64, 0.6, 1.0)),
                    uniform(rng, 0.3, 1.0),
                    log_normal(rng, 4.5, 1.0), // heavy-tailed project budgets
                    1,
                    SkillVector::new(&sparse_unit_vector(rng, d, 2.0 / d as f64, 0.5, 1.0)),
                ),
            })
            .collect()
    }

    fn gen_eligibility(&self, rng: &mut SplitMix64) -> Vec<(u32, u32)> {
        if self.n_workers == 0 || self.n_tasks == 0 {
            return Vec::new();
        }
        let complete = self.n_workers as u64 * self.n_tasks as u64;
        let want = (((self.n_workers as f64) * self.avg_worker_degree) as u64).min(complete);

        // Task popularity: uniform for Uniform/Microtask, Zipf-skewed for
        // Zipfian/Freelance (hot tasks attract far more eligible workers).
        let popularity = match self.profile {
            Profile::Uniform | Profile::Microtask => None,
            Profile::Zipfian => Some(Zipf::new(self.n_tasks, 1.0)),
            Profile::Freelance => Some(Zipf::new(self.n_tasks, 0.7)),
        };

        let mut seen: FxHashSet<u64> = FxHashSet::default();
        seen.reserve(want as usize);
        let mut edges = Vec::with_capacity(want as usize);
        // Rejection sampling with an attempt cap: at skewed popularity the
        // hot tasks saturate, so duplicates grow; the cap bounds generation
        // time and the achieved degree is reported by the dataset table.
        let max_attempts = want.saturating_mul(20).max(1000);
        let mut attempts = 0u64;
        while (edges.len() as u64) < want && attempts < max_attempts {
            attempts += 1;
            let w = rng.next_below(self.n_workers as u64) as u32;
            let t = match &popularity {
                None => rng.next_below(self.n_tasks as u64) as u32,
                Some(z) => z.sample(rng) as u32,
            };
            let key = (u64::from(w) << 32) | u64::from(t);
            if seen.insert(key) {
                edges.push((w, t));
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::stats::GraphStats;
    use mbta_market::BenefitParams;

    fn small(profile: Profile) -> WorkloadSpec {
        WorkloadSpec {
            profile,
            n_workers: 200,
            n_tasks: 100,
            avg_worker_degree: 6.0,
            skill_dims: 6,
            seed: 7,
        }
    }

    #[test]
    fn all_profiles_generate_and_realize() {
        for profile in Profile::all() {
            let market = small(profile).generate();
            assert_eq!(market.n_workers(), 200);
            assert_eq!(market.n_tasks(), 100);
            let g = market.realize(&BenefitParams::default()).unwrap();
            assert!(g.n_edges() > 0, "{}", profile.name());
            // All benefits in range (realize would clamp, but the model
            // should produce in-range values directly).
            for e in g.edges() {
                assert!((0.0..=1.0).contains(&g.rb(e)));
                assert!((0.0..=1.0).contains(&g.wb(e)));
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = small(Profile::Zipfian).generate();
        let b = small(Profile::Zipfian).generate();
        let ga = a.realize(&BenefitParams::default()).unwrap();
        let gb = b.realize(&BenefitParams::default()).unwrap();
        assert_eq!(ga, gb);

        let mut other = small(Profile::Zipfian);
        other.seed = 8;
        let gc = other.generate().realize(&BenefitParams::default()).unwrap();
        assert_ne!(ga, gc);
    }

    #[test]
    fn uniform_profile_hits_target_degree() {
        let g = small(Profile::Uniform)
            .generate()
            .realize(&BenefitParams::default())
            .unwrap();
        let s = GraphStats::compute(&g);
        assert!(
            (s.worker_degree_mean - 6.0).abs() < 0.01,
            "{}",
            s.worker_degree_mean
        );
    }

    #[test]
    fn zipfian_profile_skews_task_degrees() {
        let spec = WorkloadSpec {
            n_workers: 2000,
            n_tasks: 500,
            avg_worker_degree: 8.0,
            ..small(Profile::Zipfian)
        };
        let g = spec.generate().realize(&BenefitParams::default()).unwrap();
        let s_zipf = GraphStats::compute(&g);
        let uni = WorkloadSpec {
            profile: Profile::Uniform,
            ..spec
        };
        let gu = uni.generate().realize(&BenefitParams::default()).unwrap();
        let s_uni = GraphStats::compute(&gu);
        assert!(
            s_zipf.task_degree_max > 2 * s_uni.task_degree_max,
            "zipf max {} vs uniform max {}",
            s_zipf.task_degree_max,
            s_uni.task_degree_max
        );
    }

    #[test]
    fn microtask_profile_shape() {
        let market = small(Profile::Microtask).generate();
        // High-capacity workers, redundant demands, low pay.
        assert!(market.workers().iter().all(|w| w.capacity >= 5));
        assert!(market
            .tasks()
            .iter()
            .all(|t| t.demand == 3 || t.demand == 5));
        assert!(market.tasks().iter().all(|t| t.pay <= 0.5));
    }

    #[test]
    fn freelance_profile_shape() {
        let market = small(Profile::Freelance).generate();
        assert!(market.workers().iter().all(|w| w.capacity == 1));
        assert!(market.tasks().iter().all(|t| t.demand == 1));
        // Heavy-tailed budgets: the max should dwarf the median.
        let mut pays: Vec<f64> = market.tasks().iter().map(|t| t.pay).collect();
        pays.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let median = pays[pays.len() / 2];
        let max = pays[pays.len() - 1];
        assert!(max > 5.0 * median, "max {max} vs median {median}");
    }

    #[test]
    fn serde_roundtrip() {
        // serde is wired via derives; round-trip through the compact debug
        // representation of serde_test-style manual check is overkill —
        // assert the derives exist by serializing to a string with the
        // `serde` "human readable" via serde's own to-token machinery is
        // unavailable without a format crate, so check `Clone`/`PartialEq`
        // semantics instead and that the spec is `Copy`-cheap.
        let a = small(Profile::Uniform);
        let b = a;
        assert_eq!(a, b);
    }

    #[test]
    fn empty_sides_ok() {
        let spec = WorkloadSpec {
            n_workers: 0,
            n_tasks: 10,
            ..small(Profile::Uniform)
        };
        let market = spec.generate();
        assert_eq!(market.n_eligible_pairs(), 0);
    }

    #[test]
    fn degree_cap_at_complete_graph() {
        let spec = WorkloadSpec {
            n_workers: 5,
            n_tasks: 4,
            avg_worker_degree: 100.0,
            ..small(Profile::Uniform)
        };
        let market = spec.generate();
        assert!(market.n_eligible_pairs() <= 20);
    }
}
