//! A fast, non-cryptographic hash function in the style of `rustc`'s FxHash.
//!
//! The workspace dependency allowlist does not include `rustc-hash`, so we
//! implement the same multiply-rotate construction here. It is *not* HashDoS
//! resistant; all keys in this workspace are internally generated integer
//! identifiers, so that is acceptable (and is the same trade-off `rustc`
//! itself makes).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiplicative constant (the golden-ratio constant used by FxHash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation applied between words; spreads low-entropy input bits.
const ROTATE: u32 = 5;

/// A fast, non-cryptographic [`Hasher`] for integer-keyed tables.
///
/// State is a single 64-bit word; each input word is combined with
/// `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time, then the tail. This path is rarely hit
        // (identifier keys use the fixed-width methods below) but must still
        // be correct for e.g. string keys in test helpers.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the length so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rem.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`] instances.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`HashMap`] keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Convenience: hash a single `u64` with [`FxHasher`].
///
/// Used for cheap seed derivation and debugging; not exposed on hot paths.
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_ne!(hash_u64(42), hash_u64(43));
    }

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
        m.remove(&1);
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn set_dedup() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn byte_stream_tail_disambiguation() {
        let mut a = FxHasher::default();
        a.write(b"ab");
        let mut b = FxHasher::default();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn spread_on_sequential_keys() {
        // Sequential integer keys should not collide in the low bits too
        // badly: check all 1024 keys land in >= 512 distinct 10-bit buckets.
        let mut buckets: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1024u64 {
            buckets.insert(hash_u64(i) & 0x3ff);
        }
        assert!(buckets.len() >= 512, "only {} buckets", buckets.len());
    }
}
