//! Fixed-point scaling between `f64` benefits and integer flow costs.
//!
//! The min-cost max-flow solver works on `i64` arc costs so that shortest
//! path comparisons are exact (no float accumulation drift across thousands
//! of augmentations). Benefits live in `[0, 1]`; we scale by `2^20` which
//! keeps every per-edge rounding error below `2^-20 ≈ 1e-6` while leaving
//! ~43 bits of headroom for path sums — enough for > 10^9 edges on a path,
//! far beyond any instance we build.

/// Scale factor applied to benefits when converting to integer costs.
pub const SCALE: i64 = 1 << 20;

/// Converts a benefit in `[0, 1]` (values outside are clamped) to an integer
/// *profit*. Panics on NaN — a NaN benefit is an upstream modeling bug.
#[inline]
pub fn benefit_to_profit(benefit: f64) -> i64 {
    assert!(!benefit.is_nan(), "NaN benefit");
    let clamped = benefit.clamp(0.0, 1.0);
    (clamped * SCALE as f64).round() as i64
}

/// Converts an integer profit (or cost) back to the benefit scale.
#[inline]
pub fn profit_to_benefit(profit: i64) -> f64 {
    profit as f64 / SCALE as f64
}

/// Maximum absolute error introduced by one `benefit_to_profit` round-trip.
pub const ROUND_TRIP_EPS: f64 = 0.5 / SCALE as f64;

/// Relative-epsilon comparison for objective values that crossed the
/// fixed-point boundary a bounded number of times.
///
/// `n_terms` is the number of summed per-edge benefits in the objective;
/// tolerance grows linearly with it.
#[inline]
pub fn objectives_close(a: f64, b: f64, n_terms: usize) -> bool {
    let tol = ROUND_TRIP_EPS * (n_terms.max(1) as f64) + 1e-9 * a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_bounded() {
        for i in 0..=1000 {
            let b = i as f64 / 1000.0;
            let back = profit_to_benefit(benefit_to_profit(b));
            assert!((back - b).abs() <= ROUND_TRIP_EPS, "b={b} back={back}");
        }
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(benefit_to_profit(-0.5), 0);
        assert_eq!(benefit_to_profit(1.5), SCALE);
        assert_eq!(benefit_to_profit(2.0), SCALE);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        benefit_to_profit(f64::NAN);
    }

    #[test]
    fn endpoints_exact() {
        assert_eq!(benefit_to_profit(0.0), 0);
        assert_eq!(benefit_to_profit(1.0), SCALE);
        assert_eq!(profit_to_benefit(SCALE), 1.0);
        assert_eq!(profit_to_benefit(0), 0.0);
    }

    #[test]
    fn objective_comparison_tolerates_rounding() {
        // Sum 10_000 benefits both ways; must compare equal.
        let benefits: Vec<f64> = (0..10_000).map(|i| (i % 997) as f64 / 996.0).collect();
        let float_sum: f64 = benefits.iter().sum();
        let int_sum: i64 = benefits.iter().map(|&b| benefit_to_profit(b)).sum();
        assert!(objectives_close(
            float_sum,
            profit_to_benefit(int_sum),
            benefits.len()
        ));
        // But a real discrepancy is caught.
        assert!(!objectives_close(
            float_sum,
            float_sum + 1.0,
            benefits.len()
        ));
    }
}
