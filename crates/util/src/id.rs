//! Typed `u32` identifier newtypes.
//!
//! Graph-heavy code indexes everything by dense integer ids. Raw `usize`
//! everywhere invites transposed-argument bugs (passing a worker index where
//! a task index is expected compiles fine and corrupts results silently).
//! [`define_id!`](crate::define_id) generates a zero-cost `u32` newtype with the conversions
//! the rest of the workspace needs.

/// Defines a `u32` newtype identifier.
///
/// The generated type is `Copy`, ordered, hashable, and convertible to and
/// from `usize` for slice indexing. Construction from `usize` asserts the
/// value fits in `u32` (debug builds) — markets beyond 4 billion nodes are
/// out of scope.
///
/// # Example
/// ```
/// mbta_util::define_id!(pub struct FooId, "identifier for Foo");
/// let f = FooId::new(7);
/// assert_eq!(f.index(), 7usize);
/// assert_eq!(FooId::from_index(7), f);
/// ```
#[macro_export]
macro_rules! define_id {
    (pub struct $name:ident, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw `u32`.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Creates an id from a `usize` index (asserts it fits in `u32`).
            #[inline]
            pub fn from_index(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize, "id overflow");
                Self(i as u32)
            }

            /// Returns the id as a `usize` suitable for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(v: $name) -> usize {
                v.index()
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    define_id!(pub struct TestId, "test identifier");

    #[test]
    fn roundtrip() {
        let id = TestId::new(5);
        assert_eq!(id.index(), 5);
        assert_eq!(id.raw(), 5);
        assert_eq!(TestId::from_index(5), id);
        assert_eq!(TestId::from(5u32), id);
        assert_eq!(usize::from(id), 5);
    }

    #[test]
    fn ordering_and_display() {
        assert!(TestId::new(1) < TestId::new(2));
        assert_eq!(format!("{}", TestId::new(3)), "TestId(3)");
    }
}
