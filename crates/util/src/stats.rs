//! Statistics accumulators for the experiment harness.
//!
//! Two shapes: [`OnlineStats`] (Welford mean/variance, O(1) memory, used for
//! timing loops) and [`Percentiles`] (stores samples, exact quantiles, used
//! for benefit-distribution reporting in the tables).

/// Streaming mean / variance / min / max accumulator (Welford's algorithm).
#[derive(Debug, Clone)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    // A derived Default would zero min/max, so the first push through a
    // default-constructed accumulator could never raise min above 0.
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if self.n == 1 {
            // Seed explicitly rather than folding into the sentinel bounds:
            // guards accumulators that reached n == 0 with non-sentinel
            // min/max (e.g. via struct update or a future reset).
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance with Bessel's correction (0 for fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Sample-retaining summary for exact percentile queries.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation. `NaN` observations are rejected with a panic —
    /// they indicate an upstream bug, not a data condition.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN pushed into Percentiles");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Exact p-quantile by linear interpolation, `p ∈ [0, 1]`.
    /// Returns `None` when empty.
    pub fn quantile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&p), "quantile p out of range: {p}");
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            self.sorted = true;
        }
        let n = self.samples.len();
        if n == 1 {
            return Some(self.samples[0]);
        }
        let rank = p * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// Median (0.5-quantile).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Mean of all observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum() / self.samples.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_mean_var_match_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance 4.0 → sample variance 4.0 * 8/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..40] {
            a.push(x);
        }
        for &x in &data[40..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before_mean = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before_mean);

        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert_eq!(e.mean(), before_mean);
    }

    #[test]
    fn default_matches_new() {
        let mut d = OnlineStats::default();
        d.push(5.0);
        assert_eq!(d.min(), 5.0, "derived Default would report 0.0 here");
        assert_eq!(d.max(), 5.0);
    }

    #[test]
    fn single_observation_survives_merge_with_empty() {
        let mut a = OnlineStats::default();
        a.merge(&OnlineStats::default());
        a.push(2.5);
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), 1);
        assert_eq!(a.min(), 2.5);
        assert_eq!(a.max(), 2.5);

        let mut b = OnlineStats::new();
        b.merge(&a);
        assert_eq!(b.min(), 2.5);
        assert_eq!(b.max(), 2.5);
    }

    #[test]
    fn percentiles_exact() {
        let mut p = Percentiles::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            p.push(x);
        }
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.quantile(1.0), Some(5.0));
        assert_eq!(p.median(), Some(3.0));
        assert_eq!(p.quantile(0.25), Some(2.0));
        assert_eq!(p.mean(), Some(3.0));
        assert_eq!(p.sum(), 15.0);
    }

    #[test]
    fn percentile_interpolates() {
        let mut p = Percentiles::new();
        p.push(0.0);
        p.push(10.0);
        assert_eq!(p.quantile(0.5), Some(5.0));
        assert_eq!(p.quantile(0.75), Some(7.5));
    }

    #[test]
    fn percentile_empty_and_single() {
        let mut p = Percentiles::new();
        assert_eq!(p.median(), None);
        assert_eq!(p.mean(), None);
        p.push(42.0);
        assert_eq!(p.quantile(0.99), Some(42.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn percentiles_reject_nan() {
        Percentiles::new().push(f64::NAN);
    }
}
