//! Aligned text tables and CSV emission for the experiment harness.
//!
//! The benchmark binary prints each reproduced table/figure as an aligned
//! monospace table (the "same rows/series the paper reports") and also
//! writes a CSV next to it so the series can be re-plotted.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table builder.
///
/// All cells are strings; numeric formatting is the caller's concern (the
/// harness uses fixed precision so diffs between runs are readable).
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column header.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Panics if the arity does not match the header —
    /// a mismatched row is always a harness bug.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned monospace string.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(line, "{:>w$}", h, w = widths[i]);
            if i + 1 < ncols {
                line.push_str("  ");
            }
        }
        let _ = writeln!(out, "{line}");
        let _ = writeln!(out, "{}", "-".repeat(line.len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:>w$}", cell, w = widths[i]);
                if i + 1 < ncols {
                    line.push_str("  ");
                }
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting where needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains([',', '"', '\n']) {
                    out.push('"');
                    out.push_str(&cell.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a float with `prec` decimals (harness-wide numeric style).
pub fn fnum(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a duration in adaptive units (ns/µs/ms/s).
pub fn fdur(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.1}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["algo", "value"]);
        t.row(vec!["greedy".into(), "1.50".into()]);
        t.row(vec!["exact".into(), "2.00".into()]);
        t
    }

    #[test]
    fn render_is_aligned() {
        let r = sample().render();
        assert!(r.contains("== demo =="));
        let lines: Vec<&str> = r.lines().collect();
        // header, separator, two rows (+ title line)
        assert_eq!(lines.len(), 5);
        // Right-aligned columns: both value cells end at the same offset.
        assert!(lines[3].ends_with("1.50"));
        assert!(lines[4].ends_with("2.00"));
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_roundtrip_simple() {
        let csv = sample().to_csv();
        assert_eq!(csv, "algo,value\ngreedy,1.50\nexact,2.00\n");
    }

    #[test]
    fn csv_quotes_special_chars() {
        let mut t = Table::new("q", &["a"]);
        t.row(vec!["x,y".into()]);
        t.row(vec!["he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        Table::new("bad", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join(format!("mbta_table_test_{}", std::process::id()));
        let path = dir.join("nested/out.csv");
        sample().write_csv(&path).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("algo,value"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duration_units() {
        assert_eq!(fdur(0.5e-9 * 3.0), "1.5ns");
        assert_eq!(fdur(2.5e-6), "2.5µs");
        assert_eq!(fdur(0.0125), "12.50ms");
        assert_eq!(fdur(3.25), "3.250s");
    }

    #[test]
    fn fnum_precision() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(1.0, 0), "1");
    }
}
