//! Deterministic pseudo-random number generation.
//!
//! Every randomized component in the workspace (workload generators, the
//! `Random` baseline, the Ranking online algorithm) takes an explicit `u64`
//! seed so experiments are exactly reproducible. This module provides
//! `SplitMix64` — small, fast, and with well-understood statistical quality —
//! plus seed-derivation helpers so one experiment seed can fan out into
//! independent per-component streams.
//!
//! Distribution sampling (Zipf, Box–Muller normal, exponential) is built
//! on this same stream in `mbta-workload::dist` — the workspace ended up
//! needing no external RNG crate at all, which makes cross-version
//! reproducibility a non-issue.

/// SplitMix64 generator (Steele, Lea & Flood; the JDK's seeding generator).
///
/// Passes BigCrush when used as a 64-bit generator; period 2^64.
///
/// # Example
/// ```
/// use mbta_util::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic in the seed
/// let mut worker_stream = a.derive("workers");
/// assert!(worker_stream.next_f64() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent-ish
    /// streams; seed 0 is fine (the increment breaks the fixed point).
    #[inline]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next uniform 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method — unbiased, no modulo.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= lo.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, len)`. `len` must be nonzero.
    #[inline]
    pub fn next_index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator for a named component.
    ///
    /// Mixing the label's bytes through the stream means
    /// `seed.derive("workers")` and `seed.derive("tasks")` do not collide
    /// even though they come from the same experiment seed.
    pub fn derive(&self, label: &str) -> SplitMix64 {
        let mut h = self.state ^ 0xd1b5_4a32_d192_ed03;
        for &b in label.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            h ^= h >> 29;
        }
        SplitMix64::new(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_is_roughly_uniform() {
        let mut r = SplitMix64::new(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; allow 10% slack.
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And it actually moved something.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn derive_streams_are_independent() {
        let root = SplitMix64::new(42);
        let mut a = root.derive("workers");
        let mut b = root.derive("tasks");
        let mut same = 0;
        for _ in 0..64 {
            if a.next_u64() == b.next_u64() {
                same += 1;
            }
        }
        assert_eq!(same, 0);
        // Deriving the same label twice gives the same stream.
        let mut c = root.derive("workers");
        let mut a2 = root.derive("workers");
        assert_eq!(c.next_u64(), a2.next_u64());
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = SplitMix64::new(11);
        let hits = (0..100_000).filter(|_| r.next_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }
}
