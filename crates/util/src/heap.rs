//! Indexed binary min-heap with `decrease-key`.
//!
//! Dijkstra with Johnson potentials (the inner loop of the min-cost-flow
//! solver) wants a priority queue where each node appears at most once and
//! its priority can be lowered in place. `std::collections::BinaryHeap`
//! forces the lazy-deletion pattern, which allocates O(E) entries; this heap
//! keeps O(V) storage and supports `push_or_decrease` in O(log n).
//!
//! Keys are dense `usize` node indices in `[0, capacity)`; priorities are any
//! `Ord` type (the flow solver uses `i64` reduced-cost distances).

/// Sentinel for "not currently in the heap" in the position table.
const ABSENT: u32 = u32::MAX;

/// An indexed binary min-heap over dense integer keys.
///
/// `P` is the priority type; the heap pops the smallest priority first, with
/// the key as a deterministic tie-breaker.
///
/// # Example
/// ```
/// use mbta_util::IndexedHeap;
/// let mut h: IndexedHeap<i64> = IndexedHeap::new(8);
/// h.push_or_decrease(3, 30);
/// h.push_or_decrease(5, 10);
/// h.push_or_decrease(3, 5); // decrease-key
/// assert_eq!(h.pop(), Some((3, 5)));
/// assert_eq!(h.pop(), Some((5, 10)));
/// ```
#[derive(Debug, Clone)]
pub struct IndexedHeap<P> {
    /// Binary heap of (priority, key), min at index 0.
    data: Vec<(P, u32)>,
    /// `pos[key]` = index of the key inside `data`, or `ABSENT`.
    pos: Vec<u32>,
}

impl<P: Ord + Copy> IndexedHeap<P> {
    /// Creates an empty heap able to hold keys in `[0, capacity)`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity < ABSENT as usize, "capacity too large");
        Self {
            data: Vec::with_capacity(capacity.min(1024)),
            pos: vec![ABSENT; capacity],
        }
    }

    /// Number of entries currently in the heap.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the heap has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether `key` is currently queued.
    #[inline]
    pub fn contains(&self, key: usize) -> bool {
        self.pos[key] != ABSENT
    }

    /// Current priority of `key`, if queued.
    pub fn priority(&self, key: usize) -> Option<P> {
        let p = self.pos[key];
        (p != ABSENT).then(|| self.data[p as usize].0)
    }

    /// Removes every entry while keeping the key capacity.
    pub fn clear(&mut self) {
        for &(_, k) in &self.data {
            self.pos[k as usize] = ABSENT;
        }
        self.data.clear();
    }

    /// Inserts `key` with `priority`, or lowers its priority if it is already
    /// queued with a larger one. Returns `true` if the heap changed.
    ///
    /// A `push_or_decrease` with a priority that is *not* smaller than the
    /// queued one is a no-op — exactly the semantics Dijkstra relaxation
    /// wants.
    pub fn push_or_decrease(&mut self, key: usize, priority: P) -> bool {
        match self.pos[key] {
            ABSENT => {
                let slot = self.data.len();
                self.data.push((priority, key as u32));
                self.pos[key] = slot as u32;
                self.sift_up(slot);
                true
            }
            slot => {
                let slot = slot as usize;
                if priority < self.data[slot].0 {
                    self.data[slot].0 = priority;
                    self.sift_up(slot);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Removes and returns the `(key, priority)` pair with minimal priority.
    pub fn pop(&mut self) -> Option<(usize, P)> {
        if self.data.is_empty() {
            return None;
        }
        let (prio, key) = self.data.swap_remove(0);
        self.pos[key as usize] = ABSENT;
        if !self.data.is_empty() {
            self.pos[self.data[0].1 as usize] = 0;
            self.sift_down(0);
        }
        Some((key as usize, prio))
    }

    #[inline]
    fn less(&self, a: usize, b: usize) -> bool {
        // Tie-break on key for deterministic pop order.
        self.data[a] < self.data[b]
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(i, parent) {
                self.swap_slots(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.data.len();
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut smallest = i;
            if l < n && self.less(l, smallest) {
                smallest = l;
            }
            if r < n && self.less(r, smallest) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap_slots(i, smallest);
            i = smallest;
        }
    }

    #[inline]
    fn swap_slots(&mut self, a: usize, b: usize) {
        self.data.swap(a, b);
        self.pos[self.data[a].1 as usize] = a as u32;
        self.pos[self.data[b].1 as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_priority_order() {
        let mut h = IndexedHeap::new(10);
        for (k, p) in [(3usize, 30i64), (1, 10), (4, 40), (2, 20), (0, 0)] {
            assert!(h.push_or_decrease(k, p));
        }
        let mut out = Vec::new();
        while let Some((k, _)) = h.pop() {
            out.push(k);
        }
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = IndexedHeap::new(4);
        h.push_or_decrease(0, 100i64);
        h.push_or_decrease(1, 50);
        h.push_or_decrease(2, 75);
        // Lower key 0 below everything.
        assert!(h.push_or_decrease(0, 1));
        assert_eq!(h.priority(0), Some(1));
        assert_eq!(h.pop(), Some((0, 1)));
    }

    #[test]
    fn increase_is_noop() {
        let mut h = IndexedHeap::new(2);
        h.push_or_decrease(0, 5i64);
        assert!(!h.push_or_decrease(0, 10));
        assert_eq!(h.priority(0), Some(5));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn clear_resets_positions() {
        let mut h = IndexedHeap::new(3);
        h.push_or_decrease(0, 1i64);
        h.push_or_decrease(1, 2);
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(0));
        // Keys are reusable after clear.
        h.push_or_decrease(0, 9);
        assert_eq!(h.pop(), Some((0, 9)));
    }

    #[test]
    fn equal_priorities_tiebreak_on_key() {
        let mut h = IndexedHeap::new(5);
        for k in [4usize, 2, 0, 3, 1] {
            h.push_or_decrease(k, 7i64);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop().map(|(k, _)| k)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn interleaved_push_pop_stays_consistent() {
        // Pseudo-random workload cross-checked against a sorted model.
        let mut h = IndexedHeap::new(64);
        let mut model: Vec<(i64, usize)> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..500 {
            let op = next() % 3;
            if op < 2 {
                let key = (next() % 64) as usize;
                let prio = (next() % 1000) as i64;
                if let Some(slot) = model.iter().position(|&(_, k)| k == key) {
                    if prio < model[slot].0 {
                        model[slot].0 = prio;
                        assert!(h.push_or_decrease(key, prio));
                    } else {
                        assert!(!h.push_or_decrease(key, prio));
                    }
                } else {
                    model.push((prio, key));
                    assert!(h.push_or_decrease(key, prio));
                }
            } else if !model.is_empty() {
                model.sort();
                let (p, k) = model.remove(0);
                assert_eq!(h.pop(), Some((k, p)));
            }
        }
        model.sort();
        for (p, k) in model {
            assert_eq!(h.pop(), Some((k, p)));
        }
        assert!(h.pop().is_none());
    }
}
