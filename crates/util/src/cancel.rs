//! Cooperative cancellation and deadline budgets for long-running solves.
//!
//! Exact solvers can take unbounded time on hostile instances; a serving
//! system needs to interrupt them and fall back to a cheaper algorithm.
//! The primitives here are deliberately cheap enough to consult from solver
//! inner loops:
//!
//! * [`CancelToken`] — a shared atomic flag another thread (or a test)
//!   flips to request early exit.
//! * [`Deadline`] — a wall-clock budget derived from [`Instant`].
//! * [`SolveCtl`] — the pair of them plus a check-interval counter, so the
//!   hot path pays one decrement per iteration and only touches the atomic
//!   / clock every `check_interval` iterations.
//!
//! Solvers accept a `&SolveCtl` and call [`SolveCtl::should_stop`] at the
//! top of each phase/augmentation/bid iteration; on `true` they return the
//! best *feasible* partial result they hold. The engine layer turns that
//! partial result into a graceful-degradation answer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared flag requesting that a solve stop at the next check point.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; all clones see it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Wall-clock budget for a solve.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// Deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// Deadline `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Self {
        Self::after(Duration::from_millis(ms))
    }

    /// Whether the budget is exhausted.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// How often (in iterations) a solver consults the token/clock.
///
/// Chosen so the amortized cost of `should_stop` is a counter decrement:
/// atomics and `Instant::now()` are only touched once per interval.
const DEFAULT_CHECK_INTERVAL: u32 = 1024;

/// Solver control block: optional cancellation token + optional deadline,
/// with an amortizing check counter.
///
/// Interior mutability (`Cell`) keeps the solver signatures simple: they
/// take `&SolveCtl` and can still count down.
#[derive(Debug, Clone, Default)]
pub struct SolveCtl {
    token: Option<CancelToken>,
    deadline: Option<Deadline>,
    check_interval: u32,
    countdown: std::cell::Cell<u32>,
}

impl SolveCtl {
    /// A control block that never stops a solve (the default for existing
    /// call sites).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Adds a cancellation token.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Adds a deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Overrides the amortization interval (mainly for tests; `1` checks
    /// on every call).
    pub fn with_check_interval(mut self, every: u32) -> Self {
        self.check_interval = every.max(1);
        self
    }

    /// Whether this control block can ever stop a solve.
    pub fn is_unlimited(&self) -> bool {
        self.token.is_none() && self.deadline.is_none()
    }

    /// Amortized stop check for solver inner loops.
    ///
    /// Returns `true` once cancellation was requested or the deadline
    /// passed. Cheap: most calls are a counter decrement.
    #[inline]
    pub fn should_stop(&self) -> bool {
        if self.is_unlimited() {
            return false;
        }
        let left = self.countdown.get();
        if left > 0 {
            self.countdown.set(left - 1);
            return false;
        }
        self.countdown.set(if self.check_interval == 0 {
            DEFAULT_CHECK_INTERVAL - 1
        } else {
            self.check_interval - 1
        });
        self.stop_requested()
    }

    /// Unamortized stop check (consults the atomic and the clock directly).
    /// Use at phase boundaries where the extra cost is irrelevant.
    pub fn stop_requested(&self) -> bool {
        if let Some(t) = &self.token {
            if t.is_cancelled() {
                return true;
            }
        }
        if let Some(d) = &self.deadline {
            if d.expired() {
                return true;
            }
        }
        false
    }
}

// Thread-safety contract, checked at compile time: budget primitives cross
// thread boundaries in the service's solve pool. `CancelToken` and
// `Deadline` are shared between the dispatcher and worker threads
// (`Send + Sync`); `SolveCtl` amortizes its checks through a non-atomic
// `Cell`, so a control block is owned by exactly one solving thread
// (`Send`, deliberately not `Sync`).
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<CancelToken>();
    assert_sync::<CancelToken>();
    assert_send::<Deadline>();
    assert_sync::<Deadline>();
    assert_send::<SolveCtl>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_stops() {
        let ctl = SolveCtl::unlimited();
        for _ in 0..10_000 {
            assert!(!ctl.should_stop());
        }
    }

    #[test]
    fn token_cancels_all_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
        let ctl = SolveCtl::unlimited()
            .with_token(clone)
            .with_check_interval(1);
        assert!(ctl.should_stop());
    }

    #[test]
    fn deadline_expires() {
        let d = Deadline::after(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        let ctl = SolveCtl::unlimited()
            .with_deadline(d)
            .with_check_interval(1);
        assert!(ctl.should_stop());
    }

    #[test]
    fn future_deadline_does_not_stop() {
        let ctl = SolveCtl::unlimited()
            .with_deadline(Deadline::after(Duration::from_secs(3600)))
            .with_check_interval(1);
        assert!(!ctl.should_stop());
        assert!(ctl.deadline.unwrap().remaining() > Duration::from_secs(3000));
    }

    #[test]
    fn amortization_delays_observation() {
        let t = CancelToken::new();
        let ctl = SolveCtl::unlimited()
            .with_token(t.clone())
            .with_check_interval(8);
        assert!(!ctl.should_stop()); // consumes the first real check
        t.cancel();
        let calls_until_seen = (0..100).position(|_| ctl.should_stop()).unwrap();
        assert!(calls_until_seen < 8, "seen after {calls_until_seen} calls");
    }
}
