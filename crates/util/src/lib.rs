//! `mbta-util`: dependency-free utility substrate for the `mbta` workspace.
//!
//! This crate provides the small, hot building blocks that the graph,
//! matching, and market layers share:
//!
//! * [`fxhash`] — a fast, non-cryptographic hasher (FxHash-style) plus
//!   `FxHashMap`/`FxHashSet` aliases. The standard SipHash is a measurable
//!   cost on integer keys in graph construction paths.
//! * [`heap`] — an indexed binary min-heap with `decrease-key`, the priority
//!   queue shape Dijkstra-with-potentials wants.
//! * [`rng`] — a tiny deterministic `SplitMix64` generator and seed-derivation
//!   helpers so every experiment is reproducible without pulling `rand` into
//!   every crate.
//! * [`stats`] — online mean/variance accumulators and exact percentile
//!   summaries for the experiment harness.
//! * [`fixed`] — fixed-point scaling between `f64` benefits in `[0,1]` and
//!   `i64` costs, so min-cost-flow runs on exact integers.
//! * [`table`] — aligned text tables and CSV emission for experiment output.
//! * [`id`] — the `define_id!` macro generating `u32` newtype identifiers.
//! * [`cancel`] — cooperative cancellation tokens and deadline budgets the
//!   solver inner loops consult so exact solves can be interrupted.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

#[macro_use]
pub mod id;

pub mod cancel;
pub mod fixed;
pub mod fxhash;
pub mod heap;
pub mod rng;
pub mod stats;
pub mod table;

pub use cancel::{CancelToken, Deadline, SolveCtl};
pub use fxhash::{FxHashMap, FxHashSet};
pub use heap::IndexedHeap;
pub use rng::SplitMix64;
pub use stats::{OnlineStats, Percentiles};
