//! Capacity-balanced label propagation over the worker–task graph.
//!
//! The heuristic is a bipartite specialization of weighted label
//! propagation: every node carries a shard label, and a sweep moves each
//! node to the shard holding the plurality (by *edge weight*) of its
//! neighbours' labels, subject to a per-shard balance bound measured in
//! capacity (workers) / demand (tasks). Alternating worker and task
//! sweeps monotonically reduce cut weight — a node only moves on a
//! strict gain — so the loop terminates; in practice it converges in a
//! handful of sweeps.
//!
//! Determinism is load-bearing (replay must be byte-identical): nodes
//! are visited in ascending id order, candidate shards in ascending
//! index order, and a move requires a *strictly* greater gain, so equal
//! gains keep the current label and ties among better shards resolve to
//! the lowest index.
//!
//! The warm start routes tasks by contiguous id range — the synthetic
//! generators encode region/skill adjacency in the ids, so range seeding
//! starts from real locality — then homes each worker greedily on the
//! shard holding the most incident edge weight (the "weighted greedy
//! seeding" half of the scheme; propagation refines both sides from
//! there).

use mbta_graph::BipartiteGraph;

/// Tuning knobs for [`partition`].
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Number of shards (≥ 1).
    pub n_shards: usize,
    /// Maximum alternating sweeps; the loop stops early once a full
    /// sweep moves nothing.
    pub max_sweeps: usize,
    /// Per-shard balance slack: a shard may hold at most
    /// `(1 + slack) / n_shards` of the total capacity (worker side) or
    /// demand (task side).
    pub balance_slack: f64,
}

impl PartitionConfig {
    /// Defaults tuned on the bench universes: 8 sweeps, 20% slack.
    pub fn new(n_shards: usize) -> Self {
        PartitionConfig {
            n_shards,
            max_sweeps: 8,
            balance_slack: 0.20,
        }
    }
}

/// A computed node → shard assignment plus its quality counters.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Universe worker id → shard.
    pub worker_shard: Vec<u32>,
    /// Universe task id → shard.
    pub task_shard: Vec<u32>,
    /// Total weight on cross-shard edges under this assignment.
    pub cut_weight: f64,
    /// Total edge weight of the universe.
    pub total_weight: f64,
    /// Alternating sweeps actually run (early exit on convergence).
    pub sweeps_run: usize,
    /// Node moves applied across all sweeps.
    pub moves: u64,
}

impl Partition {
    /// Fraction of total edge weight retained by intra-shard edges.
    pub fn retained_fraction(&self) -> f64 {
        if self.total_weight > 0.0 {
            1.0 - self.cut_weight / self.total_weight
        } else {
            1.0
        }
    }
}

/// Per-shard load ledger for one node side, enforcing the balance bound.
struct Balance {
    load: Vec<u64>,
    bound: u64,
}

impl Balance {
    fn new(n_shards: usize, total: u64, slack: f64) -> Balance {
        // `ceil` plus the slack keeps the bound attainable even when the
        // per-shard share is fractional; a single shard is unbounded.
        let share = (total as f64 / n_shards as f64) * (1.0 + slack);
        Balance {
            load: vec![0; n_shards],
            bound: if n_shards == 1 {
                u64::MAX
            } else {
                share.ceil() as u64
            },
        }
    }

    fn seed(&mut self, shard: usize, size: u64) {
        self.load[shard] += size;
    }

    /// Whether `size` fits on `to` without breaching the bound.
    fn fits(&self, to: usize, size: u64) -> bool {
        self.load[to] + size <= self.bound
    }

    fn transfer(&mut self, from: usize, to: usize, size: u64) {
        self.load[from] -= size;
        self.load[to] += size;
    }
}

/// Computes a min-cut-oriented shard assignment for the whole universe.
///
/// # Panics
/// Panics if `cfg.n_shards == 0` or the weight slice length mismatches.
pub fn partition(g: &BipartiteGraph, weights: &[f64], cfg: &PartitionConfig) -> Partition {
    assert!(cfg.n_shards >= 1, "need at least one shard");
    assert_eq!(weights.len(), g.n_edges(), "weight slice length mismatch");
    let k = cfg.n_shards;

    // Warm start: tasks by id range (locality-preserving on the
    // synthetic universes), workers homed on their heaviest task shard.
    let n_tasks = g.n_tasks().max(1);
    let mut task_shard: Vec<u32> = (0..g.n_tasks())
        .map(|t| ((t * k / n_tasks).min(k - 1)) as u32)
        .collect();
    let mut worker_shard = vec![0u32; g.n_workers()];
    let mut gain = vec![0.0f64; k];
    for w in g.workers() {
        gain.iter_mut().for_each(|v| *v = 0.0);
        for e in g.worker_edges(w) {
            gain[task_shard[g.task_of(e).index()] as usize] += weights[e.index()];
        }
        worker_shard[w.index()] = argmax_strict(&gain, 0) as u32;
    }

    let mut w_bal = Balance::new(k, g.total_capacity(), cfg.balance_slack);
    let mut t_bal = Balance::new(k, g.total_demand(), cfg.balance_slack);
    for w in g.workers() {
        w_bal.seed(worker_shard[w.index()] as usize, g.capacity(w) as u64);
    }
    for t in g.tasks() {
        t_bal.seed(task_shard[t.index()] as usize, g.demand(t) as u64);
    }

    let mut moves = 0u64;
    let mut sweeps_run = 0usize;
    for _ in 0..cfg.max_sweeps {
        sweeps_run += 1;
        let mut moved = 0u64;

        // Worker sweep: move each worker to the shard holding the most
        // incident weight, if that strictly beats its current shard and
        // the capacity bound admits it.
        for w in g.workers() {
            gain.iter_mut().for_each(|v| *v = 0.0);
            for e in g.worker_edges(w) {
                gain[task_shard[g.task_of(e).index()] as usize] += weights[e.index()];
            }
            let cur = worker_shard[w.index()] as usize;
            let best = argmax_strict(&gain, cur);
            if best != cur && w_bal.fits(best, g.capacity(w) as u64) {
                w_bal.transfer(cur, best, g.capacity(w) as u64);
                worker_shard[w.index()] = best as u32;
                moved += 1;
            }
        }

        // Task sweep: symmetric, against the worker labels.
        for t in g.tasks() {
            gain.iter_mut().for_each(|v| *v = 0.0);
            for e in g.task_edges(t) {
                gain[worker_shard[g.worker_of(e).index()] as usize] += weights[e.index()];
            }
            let cur = task_shard[t.index()] as usize;
            let best = argmax_strict(&gain, cur);
            if best != cur && t_bal.fits(best, g.demand(t) as u64) {
                t_bal.transfer(cur, best, g.demand(t) as u64);
                task_shard[t.index()] = best as u32;
                moved += 1;
            }
        }

        moves += moved;
        if moved == 0 {
            break;
        }
    }

    let total_weight: f64 = weights.iter().sum();
    let cut_weight: f64 = g
        .edges()
        .filter(|&e| worker_shard[g.worker_of(e).index()] != task_shard[g.task_of(e).index()])
        .map(|e| weights[e.index()])
        .sum();
    Partition {
        worker_shard,
        task_shard,
        cut_weight,
        total_weight,
        sweeps_run,
        moves,
    }
}

/// Index of the strictly-largest entry, preferring `cur` on ties with it
/// and the lowest index among equal challengers. Deterministic by
/// construction: ascending scan, strict `>`.
fn argmax_strict(gain: &[f64], cur: usize) -> usize {
    let mut best = cur;
    let mut best_gain = gain[cur];
    for (i, &v) in gain.iter().enumerate() {
        if v > best_gain {
            best = i;
            best_gain = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::{random_bipartite, RandomGraphSpec};

    fn universe(seed: u64) -> (BipartiteGraph, Vec<f64>) {
        let g = random_bipartite(
            &RandomGraphSpec {
                n_workers: 200,
                n_tasks: 150,
                avg_degree: 6.0,
                capacity: 2,
                demand: 2,
            },
            seed,
        );
        let w: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
        (g, w)
    }

    /// Cut weight under hash-free range routing (the warm start alone):
    /// what the partitioner must beat.
    fn warm_start_cut(g: &BipartiteGraph, w: &[f64], k: usize) -> f64 {
        let p = partition(
            g,
            w,
            &PartitionConfig {
                n_shards: k,
                max_sweeps: 0,
                balance_slack: 0.2,
            },
        );
        p.cut_weight
    }

    #[test]
    fn single_shard_has_no_cut() {
        let (g, w) = universe(3);
        let p = partition(&g, &w, &PartitionConfig::new(1));
        assert_eq!(p.cut_weight, 0.0);
        assert!((p.retained_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn propagation_strictly_improves_on_warm_start() {
        let (g, w) = universe(7);
        for k in [4, 8] {
            let base = warm_start_cut(&g, &w, k);
            let p = partition(&g, &w, &PartitionConfig::new(k));
            assert!(
                p.cut_weight < base,
                "k={k}: propagation did not improve the cut ({} vs {base})",
                p.cut_weight
            );
            assert!(p.moves > 0);
        }
    }

    #[test]
    fn balance_bounds_hold() {
        let (g, w) = universe(11);
        let cfg = PartitionConfig::new(8);
        let p = partition(&g, &w, &cfg);
        let bound = |total: u64| ((total as f64 / 8.0) * (1.0 + cfg.balance_slack)).ceil() as u64;
        let mut cap = [0u64; 8];
        for wk in g.workers() {
            cap[p.worker_shard[wk.index()] as usize] += g.capacity(wk) as u64;
        }
        let mut dem = [0u64; 8];
        for t in g.tasks() {
            dem[p.task_shard[t.index()] as usize] += g.demand(t) as u64;
        }
        // The warm start is balanced by construction of range routing, so
        // the bound holds for the final assignment too (moves only ever
        // target shards with headroom).
        for s in 0..8 {
            assert!(
                cap[s] <= bound(g.total_capacity()),
                "capacity bound broken at {s}"
            );
            assert!(
                dem[s] <= bound(g.total_demand()),
                "demand bound broken at {s}"
            );
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let (g, w) = universe(5);
        let a = partition(&g, &w, &PartitionConfig::new(8));
        let b = partition(&g, &w, &PartitionConfig::new(8));
        assert_eq!(a.worker_shard, b.worker_shard);
        assert_eq!(a.task_shard, b.task_shard);
        assert_eq!(a.cut_weight, b.cut_weight);
        assert_eq!(a.moves, b.moves);
    }

    #[test]
    fn empty_graph_partitions_trivially() {
        let g = mbta_graph::random::from_edges(&[], &[], &[]);
        let p = partition(&g, &[], &PartitionConfig::new(4));
        assert!(p.worker_shard.is_empty());
        assert!(p.task_shard.is_empty());
        assert_eq!(p.cut_weight, 0.0);
    }
}
