//! The boundary-rescue market: residual capacity vs cross-shard edges.
//!
//! After the per-shard solves of a batch merge, each worker/task may
//! have *residual* capacity (its universe capacity minus the load its
//! home shard assigned). Cross-shard edges — unassignable by the shard
//! solvers — whose endpoints both have residual capacity form a small
//! second-stage matching market: anything matched there is pure
//! recovered cut weight, and the union with the intra-shard assignments
//! stays feasible because the rescue instance's capacities *are* the
//! residuals.
//!
//! This module builds the residual instance spec ([`residual_candidates`])
//! and re-validates a proposed rescue assignment ([`validate_rescue`]).
//! The solve itself lives in the service (it owns the engine, the solve
//! pool, and the deadline policy); keeping the instance algebra here
//! makes it testable without a running service.

use mbta_graph::{BipartiteGraph, EdgeId, TaskId, WorkerId};

/// A residual boundary market, in universe ids.
#[derive(Debug, Default)]
pub struct RescueSpec {
    /// Workers with residual capacity incident to ≥ 1 candidate edge,
    /// with that residual as their capacity. Ascending id order.
    pub workers: Vec<(WorkerId, u32)>,
    /// Tasks with residual demand incident to ≥ 1 candidate edge.
    pub tasks: Vec<(TaskId, u32)>,
    /// Candidate cross edges (both endpoints present above).
    pub candidates: Vec<EdgeId>,
    /// Total weight of the candidate edges.
    pub candidate_weight: f64,
}

impl RescueSpec {
    /// Whether there is anything to solve.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// Collects the residual boundary market.
///
/// An edge is a candidate iff `is_cross(edge)` holds, both endpoints are
/// eligible (`worker_ok` / `task_ok` — the service passes liveness), and
/// both endpoints have positive residual. Node lists carry residuals as
/// capacities and are emitted in ascending id order, so the spec — and
/// every downstream solve over it — is deterministic.
pub fn residual_candidates(
    g: &BipartiteGraph,
    weights: &[f64],
    mut is_cross: impl FnMut(EdgeId) -> bool,
    mut worker_ok: impl FnMut(WorkerId) -> bool,
    mut task_ok: impl FnMut(TaskId) -> bool,
    w_residual: &[u32],
    t_residual: &[u32],
) -> RescueSpec {
    let mut w_in = vec![false; g.n_workers()];
    let mut t_in = vec![false; g.n_tasks()];
    let mut candidates = Vec::new();
    let mut candidate_weight = 0.0f64;
    for e in g.edges() {
        if !is_cross(e) {
            continue;
        }
        let (w, t) = (g.worker_of(e), g.task_of(e));
        if w_residual[w.index()] == 0 || t_residual[t.index()] == 0 {
            continue;
        }
        if !worker_ok(w) || !task_ok(t) {
            continue;
        }
        w_in[w.index()] = true;
        t_in[t.index()] = true;
        candidates.push(e);
        candidate_weight += weights[e.index()];
    }
    let workers = g
        .workers()
        .filter(|w| w_in[w.index()])
        .map(|w| (w, w_residual[w.index()]))
        .collect();
    let tasks = g
        .tasks()
        .filter(|t| t_in[t.index()])
        .map(|t| (t, t_residual[t.index()]))
        .collect();
    RescueSpec {
        workers,
        tasks,
        candidates,
        candidate_weight,
    }
}

/// Counts violations of a proposed rescue assignment: a chosen edge that
/// is not cross-shard, chosen twice, or endpoint load exceeding the
/// residual. Zero means the union (shards + rescue) is feasible.
pub fn validate_rescue(
    g: &BipartiteGraph,
    mut is_cross: impl FnMut(EdgeId) -> bool,
    w_residual: &[u32],
    t_residual: &[u32],
    chosen: &[EdgeId],
) -> usize {
    let mut violations = 0usize;
    let mut seen = vec![false; g.n_edges()];
    let mut w_load = vec![0u32; g.n_workers()];
    let mut t_load = vec![0u32; g.n_tasks()];
    for &e in chosen {
        if !is_cross(e) {
            violations += 1;
        }
        if std::mem::replace(&mut seen[e.index()], true) {
            violations += 1;
        }
        w_load[g.worker_of(e).index()] += 1;
        t_load[g.task_of(e).index()] += 1;
    }
    violations += g
        .workers()
        .filter(|&w| w_load[w.index()] > w_residual[w.index()])
        .count();
    violations += g
        .tasks()
        .filter(|&t| t_load[t.index()] > t_residual[t.index()])
        .count();
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::from_edges;

    /// Two workers, two tasks, cross edges marked by parity.
    fn tiny() -> (BipartiteGraph, Vec<f64>) {
        let g = from_edges(
            &[1, 2],
            &[1, 1],
            &[
                (0, 0, 0.9, 0.9),
                (0, 1, 0.8, 0.8),
                (1, 0, 0.7, 0.7),
                (1, 1, 0.6, 0.6),
            ],
        );
        let w = vec![0.9, 0.8, 0.7, 0.6];
        (g, w)
    }

    #[test]
    fn candidates_respect_residuals_and_crossness() {
        let (g, w) = tiny();
        // Only odd edges are cross; worker 0 has no residual.
        let spec = residual_candidates(
            &g,
            &w,
            |e| e.index() % 2 == 1,
            |_| true,
            |_| true,
            &[0, 2],
            &[1, 1],
        );
        // Edge 1 (w0) is blocked by zero residual; edge 3 (w1–t1) stays.
        assert_eq!(spec.candidates, vec![EdgeId::new(3)]);
        assert_eq!(spec.workers, vec![(WorkerId::new(1), 2)]);
        assert_eq!(spec.tasks, vec![(TaskId::new(1), 1)]);
        assert!((spec.candidate_weight - 0.6).abs() < 1e-12);
    }

    #[test]
    fn inactive_endpoints_are_excluded() {
        let (g, w) = tiny();
        let spec = residual_candidates(
            &g,
            &w,
            |_| true,
            |wk| wk.index() == 0,
            |_| true,
            &[1, 1],
            &[1, 1],
        );
        assert!(spec.candidates.iter().all(|&e| g.worker_of(e).index() == 0));
    }

    #[test]
    fn validator_counts_each_failure_mode() {
        let (g, _) = tiny();
        // Edge 0 is intra (not cross) and chosen twice (two not-cross
        // hits plus one duplicate), and worker 0's residual is 0: four
        // violations in all.
        let v = validate_rescue(
            &g,
            |e| e.index() != 0,
            &[0, 2],
            &[2, 2],
            &[EdgeId::new(0), EdgeId::new(0)],
        );
        assert_eq!(v, 4);
        // A clean rescue passes.
        let v = validate_rescue(&g, |_| true, &[1, 1], &[1, 1], &[EdgeId::new(3)]);
        assert_eq!(v, 0);
    }
}
