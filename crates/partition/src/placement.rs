//! Serialized shard placement: the node→shard maps, detached from the
//! plan that computed them.
//!
//! A multi-process cluster needs every process to agree on where each
//! worker and task lives, or two owners would both believe they hold a
//! worker's capacity. Min-cut placement is deterministic given identical
//! inputs, but "identical inputs" is exactly the kind of assumption that
//! rots across binaries and versions — so the router computes placement
//! *once*, exports it as a [`PlacementMap`] per tenant namespace, and
//! every shard owner imports the same file. The map is the agreement; the
//! algorithm that produced it no longer matters.
//!
//! The file format follows the repo's durability idioms: a magic header,
//! length-prefixed little-endian fields, and a checksum over the body so
//! a truncated or bit-rotted file is a typed error, never a silently
//! different placement. Decoding is total — arbitrary bytes come back as
//! `Ok` or [`PlacementError`], never a panic.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// File magic: `MBTAPLC` + format version `1`.
pub const PLACEMENT_MAGIC: &[u8; 8] = b"MBTAPLC1";

/// The node→shard assignment of one tenant namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementMap {
    /// Number of shards the maps index into.
    pub n_shards: u32,
    /// Tag of the routing that produced the maps (display only — the
    /// maps themselves are the placement): 0 hash, 1 range, 2 min-cut.
    pub routing_tag: u8,
    /// Universe task id → shard.
    pub task_shard: Vec<u32>,
    /// Universe worker id → shard.
    pub worker_shard: Vec<u32>,
}

impl PlacementMap {
    /// Checks internal consistency: at least one shard, every entry in
    /// range.
    pub fn validate(&self) -> Result<(), PlacementError> {
        if self.n_shards == 0 {
            return Err(PlacementError::NoShards);
        }
        let bad = |v: &[u32]| v.iter().any(|&s| s >= self.n_shards);
        if bad(&self.task_shard) || bad(&self.worker_shard) {
            return Err(PlacementError::ShardOutOfRange);
        }
        Ok(())
    }
}

/// Why a placement file failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// The magic header is missing or from another format version.
    BadMagic,
    /// The buffer ended before the declared content did.
    Truncated,
    /// The body checksum does not match.
    Corrupt,
    /// A declared length is implausibly large for the buffer.
    Oversize,
    /// A map declares zero shards.
    NoShards,
    /// A map entry points past its own shard count.
    ShardOutOfRange,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::BadMagic => write!(f, "not a placement file (bad magic)"),
            PlacementError::Truncated => write!(f, "placement file truncated"),
            PlacementError::Corrupt => write!(f, "placement checksum mismatch"),
            PlacementError::Oversize => {
                write!(f, "placement declares more entries than the file holds")
            }
            PlacementError::NoShards => write!(f, "placement declares zero shards"),
            PlacementError::ShardOutOfRange => {
                write!(f, "placement entry points past its shard count")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// 64-bit FNV-1a over the body bytes. Not cryptographic — it catches
/// truncation and bit rot, the same failure classes the WAL's CRC does.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encodes an ordered set of per-namespace maps (namespace `i` is entry
/// `i`) into the placement file format.
pub fn encode_placements(maps: &[PlacementMap]) -> Vec<u8> {
    let mut body = Vec::new();
    put_u32(&mut body, maps.len() as u32);
    for m in maps {
        put_u32(&mut body, m.n_shards);
        body.push(m.routing_tag);
        put_u32(&mut body, m.task_shard.len() as u32);
        for &s in &m.task_shard {
            put_u32(&mut body, s);
        }
        put_u32(&mut body, m.worker_shard.len() as u32);
        for &s in &m.worker_shard {
            put_u32(&mut body, s);
        }
    }
    let mut out = Vec::with_capacity(PLACEMENT_MAGIC.len() + 8 + body.len());
    out.extend_from_slice(PLACEMENT_MAGIC);
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PlacementError> {
        let end = self.pos.checked_add(n).ok_or(PlacementError::Oversize)?;
        if end > self.buf.len() {
            return Err(PlacementError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, PlacementError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PlacementError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// A length-prefixed u32 vector, with the count bounded by the bytes
    /// actually remaining so garbage lengths cannot drive allocation.
    fn u32_vec(&mut self) -> Result<Vec<u32>, PlacementError> {
        let count = self.u32()? as usize;
        if count > (self.buf.len() - self.pos) / 4 {
            return Err(PlacementError::Oversize);
        }
        (0..count).map(|_| self.u32()).collect()
    }
}

/// Decodes a placement file. Total: arbitrary bytes are `Ok` or a typed
/// error, and every returned map is [`PlacementMap::validate`]-clean.
pub fn decode_placements(bytes: &[u8]) -> Result<Vec<PlacementMap>, PlacementError> {
    if bytes.len() < PLACEMENT_MAGIC.len() + 8 {
        return Err(PlacementError::BadMagic);
    }
    if &bytes[..PLACEMENT_MAGIC.len()] != PLACEMENT_MAGIC {
        return Err(PlacementError::BadMagic);
    }
    let sum = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let body = &bytes[16..];
    if fnv1a(body) != sum {
        return Err(PlacementError::Corrupt);
    }
    let mut r = Reader { buf: body, pos: 0 };
    let count = r.u32()? as usize;
    let mut maps = Vec::new();
    for _ in 0..count {
        let n_shards = r.u32()?;
        let routing_tag = r.u8()?;
        let task_shard = r.u32_vec()?;
        let worker_shard = r.u32_vec()?;
        let m = PlacementMap {
            n_shards,
            routing_tag,
            task_shard,
            worker_shard,
        };
        m.validate()?;
        maps.push(m);
    }
    if r.pos != body.len() {
        // Trailing bytes mean the writer and reader disagree on the
        // format — refuse rather than silently ignore.
        return Err(PlacementError::Corrupt);
    }
    Ok(maps)
}

/// Writes maps to `path` (atomic enough for the single-writer router:
/// whole-file write, no partial appends).
pub fn save_placements(path: &Path, maps: &[PlacementMap]) -> io::Result<()> {
    fs::write(path, encode_placements(maps))
}

/// Reads maps back from `path`; decode failures surface as
/// `InvalidData`.
pub fn load_placements(path: &Path) -> io::Result<Vec<PlacementMap>> {
    let bytes = fs::read(path)?;
    decode_placements(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<PlacementMap> {
        vec![
            PlacementMap {
                n_shards: 4,
                routing_tag: 2,
                task_shard: vec![0, 1, 2, 3, 0, 1],
                worker_shard: vec![3, 2, 1, 0],
            },
            PlacementMap {
                n_shards: 2,
                routing_tag: 0,
                task_shard: vec![1, 0],
                worker_shard: vec![0, 0, 1],
            },
        ]
    }

    #[test]
    fn round_trips() {
        let maps = sample();
        let bytes = encode_placements(&maps);
        assert_eq!(decode_placements(&bytes).unwrap(), maps);
        // Empty set round-trips too.
        assert_eq!(
            decode_placements(&encode_placements(&[])).unwrap(),
            Vec::<PlacementMap>::new()
        );
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("mbta-placement-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cluster.placement");
        let maps = sample();
        save_placements(&path, &maps).unwrap();
        assert_eq!(load_placements(&path).unwrap(), maps);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn decode_is_total_on_damage() {
        let good = encode_placements(&sample());
        // Truncation at every boundary: typed error, never a panic.
        for cut in 0..good.len() {
            assert!(decode_placements(&good[..cut]).is_err(), "cut at {cut}");
        }
        // A flipped bit anywhere fails the checksum or the magic.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(decode_placements(&bad).is_err(), "flip at {i}");
        }
        // Trailing garbage is refused, not ignored.
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_placements(&padded).is_err());
    }

    #[test]
    fn validation_rejects_inconsistent_maps() {
        let mut m = sample().remove(0);
        m.task_shard[0] = m.n_shards;
        assert_eq!(m.validate(), Err(PlacementError::ShardOutOfRange));
        let zero = PlacementMap {
            n_shards: 0,
            routing_tag: 0,
            task_shard: vec![],
            worker_shard: vec![],
        };
        assert_eq!(zero.validate(), Err(PlacementError::NoShards));
        // And a hand-built file with an out-of-range entry fails decode
        // even though its checksum is intact.
        let bytes = encode_placements(&[m]);
        assert_eq!(
            decode_placements(&bytes),
            Err(PlacementError::ShardOutOfRange)
        );
    }
}
