//! Edge-cut-aware shard planning for the dispatch service.
//!
//! Node-disjoint sharding (see `mbta-service`'s `ShardPlan`) makes the
//! union of per-shard assignments feasible by construction, but every
//! eligibility edge that straddles two shards is unassignable — at eight
//! hash-routed shards roughly two-thirds of the market's mutual benefit
//! sits on such cross edges. This crate attacks that loss from three
//! sides, each usable on its own:
//!
//! 1. [`partitioner`] — a deterministic, capacity-balanced
//!    label-propagation heuristic that computes a task/worker → shard
//!    assignment minimizing *cut weight* (the weight on cross edges)
//!    subject to per-shard balance bounds. The service exposes it as
//!    `--routing min-cut`.
//! 2. [`rescue`] — the boundary-rescue market: after the per-shard solves
//!    merge, the cross edges whose endpoints still have residual
//!    capacity form a small second-stage matching instance whose
//!    solution recovers cut weight without touching intra-shard results.
//!    This module builds and validates that residual instance; the
//!    service owns the solve.
//! 3. [`drift`] — bookkeeping for drift-driven re-planning: an
//!    incremental cut tracker that watches benefit updates erode the
//!    current cut, and the migration diff between two plans.
//! 4. [`placement`] — the serialized node→shard maps a multi-process
//!    cluster shares: the router computes placement once, exports a
//!    checksummed [`placement::PlacementMap`] per tenant namespace, and
//!    every shard-owner process imports the identical file instead of
//!    re-deriving it.
//!
//! The crate deliberately depends only on `mbta-graph`: it computes node
//! assignments, residual specs, and diffs — never solves, journals, or
//! schedules. That keeps it reusable below the service layer (the CLI's
//! `plan-stats` subcommand calls the partitioner directly).

#![warn(missing_docs)]

pub mod drift;
pub mod partitioner;
pub mod placement;
pub mod rescue;

pub use drift::{migration_diff, CutTracker, MigrationStats};
pub use partitioner::{partition, Partition, PartitionConfig};
pub use placement::{
    decode_placements, encode_placements, load_placements, save_placements, PlacementError,
    PlacementMap,
};
pub use rescue::{residual_candidates, validate_rescue, RescueSpec};
