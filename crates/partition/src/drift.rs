//! Drift accounting for re-planning decisions.
//!
//! A shard plan is computed against the weights at plan time, but
//! benefit drift keeps moving weight between edges afterwards. When the
//! drift concentrates weight on *cross* edges, the plan's cut degrades
//! and a re-plan pays for itself. [`CutTracker`] maintains the live
//! intra/cross weight split incrementally — O(1) per benefit update —
//! so the service can test "has the cut degraded past the threshold?"
//! at every batch boundary without rescanning the edge set.
//!
//! [`migration_diff`] summarizes what a re-plan would physically move:
//! the workers and tasks whose shard changes between the old and new
//! assignments. The service journals those counts with its `PlanRecord`
//! so operators can see migration churn in the WAL.

/// Incremental live cut-weight tracker for one shard plan.
#[derive(Debug, Clone)]
pub struct CutTracker {
    intra: f64,
    cross: f64,
    baseline_cut: f64,
}

impl CutTracker {
    /// Starts tracking from the plan-time intra/cross weight split; the
    /// baseline cut fraction is frozen here.
    pub fn new(intra: f64, cross: f64) -> CutTracker {
        let t = CutTracker {
            intra,
            cross,
            baseline_cut: 0.0,
        };
        CutTracker {
            baseline_cut: t.cut_fraction(),
            ..t
        }
    }

    /// Applies one benefit update to the tracked totals.
    pub fn update(&mut self, is_cross: bool, old: f64, new: f64) {
        let side = if is_cross {
            &mut self.cross
        } else {
            &mut self.intra
        };
        // Clamp at zero: accumulated f64 rounding must never push a
        // total negative and flip the fraction's sign.
        *side = (*side + new - old).max(0.0);
    }

    /// Live fraction of total weight sitting on cross edges (0 when the
    /// market is empty).
    pub fn cut_fraction(&self) -> f64 {
        let total = self.intra + self.cross;
        if total > 0.0 {
            self.cross / total
        } else {
            0.0
        }
    }

    /// How much worse the live cut fraction is than at plan time
    /// (negative when drift *improved* the cut).
    pub fn degradation(&self) -> f64 {
        self.cut_fraction() - self.baseline_cut
    }

    /// Plan-time cut fraction.
    pub fn baseline(&self) -> f64 {
        self.baseline_cut
    }
}

/// What a re-plan moves between shards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Workers whose home shard changes.
    pub moved_workers: u32,
    /// Tasks whose shard changes.
    pub moved_tasks: u32,
}

/// Diffs two node → shard assignments.
///
/// # Panics
/// Panics if the old and new assignments disagree on universe size —
/// re-planning never adds or removes nodes.
pub fn migration_diff(
    old_workers: &[u32],
    new_workers: &[u32],
    old_tasks: &[u32],
    new_tasks: &[u32],
) -> MigrationStats {
    assert_eq!(old_workers.len(), new_workers.len(), "worker count changed");
    assert_eq!(old_tasks.len(), new_tasks.len(), "task count changed");
    let moved =
        |old: &[u32], new: &[u32]| old.iter().zip(new).filter(|(a, b)| a != b).count() as u32;
    MigrationStats {
        moved_workers: moved(old_workers, new_workers),
        moved_tasks: moved(old_tasks, new_tasks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_follows_weight_motion() {
        let mut t = CutTracker::new(8.0, 2.0);
        assert!((t.baseline() - 0.2).abs() < 1e-12);
        assert_eq!(t.degradation(), 0.0);
        // Move 3.0 of weight from an intra edge onto a cross edge.
        t.update(false, 4.0, 1.0);
        t.update(true, 0.5, 3.5);
        assert!((t.cut_fraction() - 0.5).abs() < 1e-12);
        assert!((t.degradation() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn improvement_reads_negative() {
        let mut t = CutTracker::new(5.0, 5.0);
        t.update(true, 4.0, 0.0);
        assert!(t.degradation() < 0.0);
    }

    #[test]
    fn empty_market_is_zero_cut() {
        let t = CutTracker::new(0.0, 0.0);
        assert_eq!(t.cut_fraction(), 0.0);
        assert_eq!(t.degradation(), 0.0);
    }

    #[test]
    fn migration_diff_counts_moves() {
        let m = migration_diff(&[0, 1, 2], &[0, 2, 2], &[1, 1], &[1, 0]);
        assert_eq!(
            m,
            MigrationStats {
                moved_workers: 1,
                moved_tasks: 1
            }
        );
    }
}
