//! Online mutual-benefit assignment: arrival orders and empirical
//! competitive ratios.
//!
//! Wraps the policy engine of `mbta-matching::online` with mutual-benefit
//! weights and the arrival-order models of experiment F9: random orders
//! (the random-order online model) and structured adversarial-ish orders
//! (best workers first / last) that stress the irrevocability of online
//! decisions.

use crate::algorithms::{solve, Algorithm};
use mbta_graph::{BipartiteGraph, WorkerId};
use mbta_market::benefit::edge_weights;
use mbta_market::Combiner;
use mbta_matching::mcmf::PathAlgo;
use mbta_matching::online::{online_assign, OnlinePolicy};
use mbta_matching::Matching;
use mbta_util::SplitMix64;

/// How workers arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOrder {
    /// Worker ids in increasing order (a fixed but arbitrary order).
    ById,
    /// Uniformly random permutation (the random-order model).
    Random {
        /// Permutation seed.
        seed: u64,
    },
    /// Workers with the heaviest best edge arrive first — the friendly
    /// order (greedy looks clairvoyant).
    BestFirst,
    /// Workers with the heaviest best edge arrive last — the unfriendly
    /// order (early arrivals burn demand that the best workers needed).
    BestLast,
}

/// Materializes the arrival sequence for a graph under the given order.
/// `weights` drives the Best* orders (ties break by worker id).
///
/// Non-finite weights are tolerated rather than fatal: a NaN edge weight is
/// ignored when computing a worker's best edge (`f64::max` propagates the
/// other operand), `+inf` best edges sort ahead of every finite value in
/// `BestFirst` (last in `BestLast`), and `-inf` cannot occur because the
/// fold starts at `0.0`. The sort itself uses [`f64::total_cmp`], which is
/// a total order, so poisoned inputs can never panic here.
pub fn make_arrival_order(
    g: &BipartiteGraph,
    weights: &[f64],
    order: ArrivalOrder,
) -> Vec<WorkerId> {
    let mut workers: Vec<WorkerId> = g.workers().collect();
    match order {
        ArrivalOrder::ById => {}
        ArrivalOrder::Random { seed } => {
            SplitMix64::new(seed).shuffle(&mut workers);
        }
        ArrivalOrder::BestFirst | ArrivalOrder::BestLast => {
            let best: Vec<f64> = workers
                .iter()
                .map(|&w| {
                    g.worker_edges(w)
                        .map(|e| weights[e.index()])
                        .fold(0.0f64, f64::max)
                })
                .collect();
            workers.sort_by(|&a, &b| best[b.index()].total_cmp(&best[a.index()]).then(a.cmp(&b)));
            if order == ArrivalOrder::BestLast {
                workers.reverse();
            }
        }
    }
    workers
}

/// Outcome of one online run, with its hindsight comparison.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// The online matching.
    pub matching: Matching,
    /// Total mutual benefit achieved online.
    pub online_value: f64,
    /// Total mutual benefit of the offline optimum on the same instance.
    pub offline_value: f64,
}

impl OnlineOutcome {
    /// Empirical competitive ratio `online / offline` (1.0 when the offline
    /// optimum is zero — nothing to lose).
    pub fn competitive_ratio(&self) -> f64 {
        if self.offline_value <= 0.0 {
            1.0
        } else {
            self.online_value / self.offline_value
        }
    }
}

/// Runs `policy` on the arrival sequence and compares against the offline
/// `ExactMB` optimum under the same combiner.
pub fn run_online(
    g: &BipartiteGraph,
    combiner: Combiner,
    order: ArrivalOrder,
    policy: OnlinePolicy,
) -> OnlineOutcome {
    let weights = edge_weights(g, combiner);
    let arrivals = make_arrival_order(g, &weights, order);
    let matching = online_assign(g, &weights, &arrivals, policy);
    debug_assert!(matching.validate(g).is_ok());
    let offline = solve(
        g,
        combiner,
        Algorithm::ExactMB {
            algo: PathAlgo::Dijkstra,
        },
    );
    OnlineOutcome {
        online_value: matching.total_weight(&weights),
        offline_value: offline.total_weight(&weights),
        matching,
    }
}

/// Batched online assignment: arrivals are buffered into groups of
/// `batch_size` and each batch is solved *exactly* (min-cost flow on the
/// batch-induced subproblem against remaining task demand).
///
/// This is the practical midpoint real platforms use: a little latency
/// (workers wait for their batch) buys back most of the benefit that
/// one-at-a-time irrevocability loses. `batch_size = 1` degenerates to a
/// per-worker exact choice (≈ greedy); `batch_size = n` is the offline
/// optimum with one extra constraint round.
pub fn run_batched(
    g: &BipartiteGraph,
    combiner: Combiner,
    order: ArrivalOrder,
    batch_size: usize,
) -> OnlineOutcome {
    assert!(batch_size >= 1, "batch size must be >= 1");
    let weights = edge_weights(g, combiner);
    let arrivals = make_arrival_order(g, &weights, order);

    let mut t_rem: Vec<u32> = g.demands().to_vec();
    let mut chosen: Vec<mbta_graph::EdgeId> = Vec::new();

    for batch in arrivals.chunks(batch_size) {
        // The batch-induced subproblem: batch workers (full capacity — a
        // worker arrives fresh) × every task, at *remaining* demand.
        let sub_workers: Vec<(WorkerId, u32)> = batch.iter().map(|&w| (w, g.capacity(w))).collect();
        let sub_tasks: Vec<(mbta_graph::TaskId, u32)> =
            g.tasks().map(|t| (t, t_rem[t.index()])).collect();
        let sub = mbta_graph::subgraph::induce(
            g,
            &mbta_graph::subgraph::SubgraphSpec {
                workers: &sub_workers,
                tasks: &sub_tasks,
            },
            |e| weights[e.index()] > 0.0,
        );
        let sub_weights = sub.project_weights(&weights);
        let (m, _) = mbta_matching::mcmf::max_weight_bmatching(
            &sub.graph,
            &sub_weights,
            mbta_matching::mcmf::FlowMode::FreeCardinality,
            PathAlgo::Dijkstra,
        );
        for &se in &m.edges {
            let orig = sub.parent_edge(se);
            t_rem[g.task_of(orig).index()] -= 1;
            chosen.push(orig);
        }
    }

    let matching = Matching::from_edges(chosen);
    debug_assert!(matching.validate(g).is_ok());
    let offline = solve(
        g,
        combiner,
        Algorithm::ExactMB {
            algo: PathAlgo::Dijkstra,
        },
    );
    OnlineOutcome {
        online_value: matching.total_weight(&weights),
        offline_value: offline.total_weight(&weights),
        matching,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::{from_edges, random_bipartite, RandomGraphSpec};

    fn instance(seed: u64) -> BipartiteGraph {
        random_bipartite(
            &RandomGraphSpec {
                n_workers: 50,
                n_tasks: 30,
                avg_degree: 5.0,
                capacity: 1,
                demand: 2,
            },
            seed,
        )
    }

    #[test]
    fn orders_are_permutations() {
        let g = instance(1);
        let w = edge_weights(&g, Combiner::balanced());
        for order in [
            ArrivalOrder::ById,
            ArrivalOrder::Random { seed: 3 },
            ArrivalOrder::BestFirst,
            ArrivalOrder::BestLast,
        ] {
            let seq = make_arrival_order(&g, &w, order);
            let mut ids: Vec<u32> = seq.iter().map(|w| w.raw()).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..g.n_workers() as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn best_first_and_best_last_are_reverses() {
        let g = instance(2);
        let w = edge_weights(&g, Combiner::balanced());
        let first = make_arrival_order(&g, &w, ArrivalOrder::BestFirst);
        let mut last = make_arrival_order(&g, &w, ArrivalOrder::BestLast);
        last.reverse();
        assert_eq!(first, last);
    }

    #[test]
    fn competitive_ratio_in_unit_range() {
        for seed in 0..5 {
            let g = instance(seed);
            for order in [ArrivalOrder::Random { seed: 7 }, ArrivalOrder::BestLast] {
                let out = run_online(&g, Combiner::balanced(), order, OnlinePolicy::Greedy);
                let r = out.competitive_ratio();
                assert!((0.0..=1.0 + 1e-9).contains(&r), "seed {seed}: ratio {r}");
            }
        }
    }

    #[test]
    fn greedy_online_is_half_competitive_in_practice() {
        // Not a theorem for every instance shape, but on random instances
        // the ½ bound holds comfortably; regression-guard it.
        for seed in 0..5 {
            let g = instance(seed + 10);
            let out = run_online(
                &g,
                Combiner::balanced(),
                ArrivalOrder::Random { seed: 11 },
                OnlinePolicy::Greedy,
            );
            assert!(
                out.competitive_ratio() >= 0.5,
                "seed {seed}: ratio {}",
                out.competitive_ratio()
            );
        }
    }

    #[test]
    fn friendly_order_beats_unfriendly_for_greedy() {
        // With the best workers first, greedy gets closer to hindsight.
        let mut friendly_total = 0.0;
        let mut unfriendly_total = 0.0;
        for seed in 0..8 {
            let g = instance(seed + 20);
            let f = run_online(
                &g,
                Combiner::balanced(),
                ArrivalOrder::BestFirst,
                OnlinePolicy::Greedy,
            );
            let u = run_online(
                &g,
                Combiner::balanced(),
                ArrivalOrder::BestLast,
                OnlinePolicy::Greedy,
            );
            friendly_total += f.competitive_ratio();
            unfriendly_total += u.competitive_ratio();
        }
        assert!(
            friendly_total > unfriendly_total,
            "friendly {friendly_total} vs unfriendly {unfriendly_total}"
        );
    }

    #[test]
    fn batched_feasible_and_bounded() {
        for seed in 0..5 {
            let g = instance(seed + 30);
            for batch in [1usize, 7, 50, 10_000] {
                let out = run_batched(
                    &g,
                    Combiner::balanced(),
                    ArrivalOrder::Random { seed: 3 },
                    batch,
                );
                out.matching.validate(&g).unwrap();
                let r = out.competitive_ratio();
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&r),
                    "seed {seed} batch {batch}: {r}"
                );
            }
        }
    }

    #[test]
    fn whole_market_batch_is_offline_optimal() {
        let g = instance(40);
        let out = run_batched(&g, Combiner::balanced(), ArrivalOrder::ById, g.n_workers());
        assert!(
            out.competitive_ratio() > 0.999,
            "single batch covering everyone must equal offline: {}",
            out.competitive_ratio()
        );
    }

    #[test]
    fn larger_batches_help_on_unfriendly_orders() {
        let mut small_total = 0.0;
        let mut large_total = 0.0;
        for seed in 0..6 {
            let g = instance(seed + 50);
            let small = run_batched(&g, Combiner::balanced(), ArrivalOrder::BestLast, 1);
            let large = run_batched(&g, Combiner::balanced(), ArrivalOrder::BestLast, 25);
            small_total += small.competitive_ratio();
            large_total += large.competitive_ratio();
        }
        assert!(
            large_total >= small_total,
            "batch 25 ({large_total}) should not lose to batch 1 ({small_total})"
        );
    }

    #[test]
    fn arrival_order_survives_poisoned_weights() {
        let g = from_edges(
            &[1, 1, 1],
            &[1, 1, 1],
            &[(0, 0, 0.9, 0.9), (1, 1, 0.5, 0.5), (2, 2, 0.7, 0.7)],
        );
        let w = vec![f64::NAN, f64::INFINITY, 0.7];
        for order in [ArrivalOrder::BestFirst, ArrivalOrder::BestLast] {
            let seq = make_arrival_order(&g, &w, order);
            let mut ids: Vec<u32> = seq.iter().map(|w| w.raw()).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2]);
        }
        // NaN is ignored by the max fold (worker 0's best is 0.0); +inf
        // sorts first under BestFirst.
        let seq = make_arrival_order(&g, &w, ArrivalOrder::BestFirst);
        assert_eq!(seq[0].raw(), 1);
        assert_eq!(seq[1].raw(), 2);
        assert_eq!(seq[2].raw(), 0);
    }

    #[test]
    fn arrival_orders_survive_the_fault_campaign() {
        // Every adversarial instance whose weight slice actually covers the
        // edge set must order workers without panicking — including the
        // NaN/±inf-poisoned and disconnected ones.
        let mut exercised = 0usize;
        for seed in 0..300 {
            let inst = mbta_workload::faults::adversarial_instance(seed);
            if inst.weights.len() != inst.graph.n_edges() {
                continue; // truncated-weights faults target the engine path
            }
            exercised += 1;
            for order in [
                ArrivalOrder::ById,
                ArrivalOrder::Random { seed },
                ArrivalOrder::BestFirst,
                ArrivalOrder::BestLast,
            ] {
                let seq = make_arrival_order(&inst.graph, &inst.weights, order);
                assert_eq!(seq.len(), inst.graph.n_workers(), "seed {seed}");
            }
        }
        assert!(exercised > 200, "campaign too small: {exercised}");
    }

    #[test]
    fn zero_value_instance_has_ratio_one() {
        let g = from_edges(&[1], &[1], &[(0, 0, 0.0, 0.0)]);
        let out = run_online(
            &g,
            Combiner::balanced(),
            ArrivalOrder::ById,
            OnlinePolicy::Greedy,
        );
        assert_eq!(out.competitive_ratio(), 1.0);
        assert_eq!(out.offline_value, 0.0);
    }
}
