//! The high-level facade: `Market` → realized graph → solve → evaluation.
//!
//! This is the one-call API a platform integrator uses (and what the
//! quickstart example demonstrates): give it your workers, tasks and
//! eligibility, pick a combiner and an algorithm, get back the assignment
//! with its audit metrics.

use crate::algorithms::{solve, Algorithm};
use crate::evaluate::Evaluation;
use mbta_graph::{BipartiteGraph, TaskId, WorkerId};
use mbta_market::{BenefitParams, Combiner, Market, MarketError};
use mbta_matching::Matching;
use std::time::{Duration, Instant};

/// The result of a full assignment run.
#[derive(Debug, Clone)]
pub struct AssignmentOutcome {
    /// The realized weighted graph (kept so callers can inspect benefits).
    pub graph: BipartiteGraph,
    /// The chosen assignment.
    pub matching: Matching,
    /// Metrics of the assignment under the requested combiner.
    pub evaluation: Evaluation,
    /// Wall-clock time of the solve step only (graph realization excluded).
    pub solve_time: Duration,
}

impl AssignmentOutcome {
    /// Iterates the assignment as `(worker, task)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (WorkerId, TaskId)> + '_ {
        self.matching
            .edges
            .iter()
            .map(|&e| (self.graph.worker_of(e), self.graph.task_of(e)))
    }
}

/// Realizes the market under `params`, solves with `algorithm` under
/// `combiner`, evaluates, and returns everything a caller could want.
pub fn assign(
    market: &Market,
    params: &BenefitParams,
    combiner: Combiner,
    algorithm: Algorithm,
) -> Result<AssignmentOutcome, MarketError> {
    let graph = market.realize(params)?;
    let start = Instant::now();
    let matching = solve(&graph, combiner, algorithm);
    let solve_time = start.elapsed();
    debug_assert!(matching.validate(&graph).is_ok());
    let evaluation = Evaluation::compute(&graph, &matching, combiner);
    Ok(AssignmentOutcome {
        graph,
        matching,
        evaluation,
        solve_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_market::{SkillVector, Task, Worker};
    use mbta_matching::mcmf::PathAlgo;

    fn demo_market() -> Market {
        let sv = |c: &[f64]| SkillVector::new(c);
        let workers = vec![
            Worker::new(sv(&[0.9, 0.1]), 0.95, 1, 10.0, sv(&[1.0, 0.0])),
            Worker::new(sv(&[0.1, 0.9]), 0.90, 1, 10.0, sv(&[0.0, 1.0])),
            Worker::new(sv(&[0.5, 0.5]), 0.50, 2, 8.0, sv(&[0.5, 0.5])),
        ];
        let tasks = vec![
            Task::new(sv(&[0.8, 0.0]), 0.3, 12.0, 1, sv(&[1.0, 0.0])),
            Task::new(sv(&[0.0, 0.8]), 0.3, 12.0, 1, sv(&[0.0, 1.0])),
            Task::new(sv(&[0.4, 0.4]), 0.5, 9.0, 2, sv(&[0.5, 0.5])),
        ];
        let mut elig = Vec::new();
        for w in 0..3u32 {
            for t in 0..3u32 {
                elig.push((w, t));
            }
        }
        Market::new(workers, tasks, elig).unwrap()
    }

    #[test]
    fn end_to_end_exact_assignment() {
        let market = demo_market();
        let out = assign(
            &market,
            &BenefitParams::default(),
            Combiner::balanced(),
            Algorithm::ExactMB {
                algo: PathAlgo::Dijkstra,
            },
        )
        .unwrap();
        out.matching.validate(&out.graph).unwrap();
        assert!(
            out.evaluation.cardinality >= 3,
            "specialists + generalist fit"
        );
        assert!(out.evaluation.total_mb > 0.0);
        // Specialist worker 0 should land on task 0 (its skill match);
        // the rest of the optimum depends on the benefit-model interplay
        // between the generalist's capacity 2 and task 2's demand 2, so we
        // only pin the unambiguous pair.
        let pairs: Vec<(u32, u32)> = out.pairs().map(|(w, t)| (w.raw(), t.raw())).collect();
        assert!(pairs.contains(&(0, 0)), "pairs: {pairs:?}");
    }

    #[test]
    fn all_algorithms_run_end_to_end() {
        let market = demo_market();
        for alg in Algorithm::comparison_set() {
            let out = assign(&market, &BenefitParams::default(), Combiner::Harmonic, alg).unwrap();
            out.matching.validate(&out.graph).unwrap();
        }
    }

    #[test]
    fn exact_weakly_dominates_on_each_combiner() {
        let market = demo_market();
        for combiner in [Combiner::balanced(), Combiner::Harmonic, Combiner::Min] {
            let exact = assign(
                &market,
                &BenefitParams::default(),
                combiner,
                Algorithm::ExactMB {
                    algo: PathAlgo::Dijkstra,
                },
            )
            .unwrap();
            let greedy = assign(
                &market,
                &BenefitParams::default(),
                combiner,
                Algorithm::GreedyMB,
            )
            .unwrap();
            assert!(exact.evaluation.total_mb >= greedy.evaluation.total_mb - 1e-9);
        }
    }

    #[test]
    fn empty_market_yields_empty_outcome() {
        let market = Market::new(vec![], vec![], vec![]).unwrap();
        let out = assign(
            &market,
            &BenefitParams::default(),
            Combiner::balanced(),
            Algorithm::GreedyMB,
        )
        .unwrap();
        assert!(out.matching.is_empty());
        assert_eq!(out.evaluation.total_mb, 0.0);
    }
}
