//! The offer loop: assign → offer → some decline → re-offer the slack.
//!
//! Couples the solver with the acceptance model of
//! [`mbta_market::acceptance`]: each round the platform computes an
//! assignment over the *remaining* market (capacity and demand not yet
//! filled by accepted offers, minus every already-declined worker–task
//! pair), offers it, and keeps what is accepted. Declines burn the pair —
//! a worker asked twice for the same task it refused would be a worse
//! platform, not a better optimizer.
//!
//! The loop ends when everything is filled, nothing new can be offered, or
//! the round budget runs out. Experiment F20 runs this under a
//! benefit-sensitive crowd and shows the paper's thesis operationally:
//! quality-only assignment burns its best workers' goodwill and completes
//! *less* work than mutual-benefit-aware assignment.

use crate::algorithms::{solve, Algorithm};
use mbta_graph::subgraph::{induce, SubgraphSpec};
use mbta_graph::{BipartiteGraph, EdgeId, TaskId, WorkerId};
use mbta_market::acceptance::{simulate_offers, AcceptanceModel};
use mbta_market::Combiner;
use mbta_matching::Matching;

/// Result of a full offer loop.
#[derive(Debug, Clone)]
pub struct OfferLoopResult {
    /// Everything accepted across all rounds (feasible in `g`).
    pub accepted: Matching,
    /// Rounds actually run.
    pub rounds: u32,
    /// Total offers made.
    pub offers_made: usize,
    /// Total offers declined.
    pub declined: usize,
}

impl OfferLoopResult {
    /// Overall acceptance rate (1.0 when nothing was offered).
    pub fn acceptance_rate(&self) -> f64 {
        if self.offers_made == 0 {
            1.0
        } else {
            self.accepted.len() as f64 / self.offers_made as f64
        }
    }
}

/// Runs up to `max_rounds` offer rounds on `g`.
pub fn run_offer_loop(
    g: &BipartiteGraph,
    combiner: Combiner,
    algorithm: Algorithm,
    model: &AcceptanceModel,
    max_rounds: u32,
    seed: u64,
) -> OfferLoopResult {
    let mut w_rem: Vec<u32> = g.capacities().to_vec();
    let mut t_rem: Vec<u32> = g.demands().to_vec();
    let mut burned = vec![false; g.n_edges()];
    let mut accepted_edges: Vec<EdgeId> = Vec::new();
    let mut offers_made = 0usize;
    let mut declined_total = 0usize;
    let mut rounds = 0u32;

    for round in 0..max_rounds {
        // Remaining sub-market.
        let sub_workers: Vec<(WorkerId, u32)> = g
            .workers()
            .map(|w| (w, w_rem[w.index()]))
            .filter(|&(_, c)| c > 0)
            .collect();
        let sub_tasks: Vec<(TaskId, u32)> = g
            .tasks()
            .map(|t| (t, t_rem[t.index()]))
            .filter(|&(_, d)| d > 0)
            .collect();
        if sub_workers.is_empty() || sub_tasks.is_empty() {
            break;
        }
        let sub = induce(
            g,
            &SubgraphSpec {
                workers: &sub_workers,
                tasks: &sub_tasks,
            },
            |e| !burned[e.index()],
        );
        if sub.graph.n_edges() == 0 {
            break;
        }
        let offer_sub = solve(&sub.graph, combiner, algorithm);
        if offer_sub.is_empty() {
            break;
        }
        rounds = round + 1;
        offers_made += offer_sub.len();

        // Roll acceptance on the subgraph (wb values are copied over), then
        // map outcomes back to parent ids.
        let outcome = simulate_offers(&sub.graph, &offer_sub, model, seed ^ u64::from(round));
        for &se in &outcome.accepted.edges {
            let e = sub.parent_edge(se);
            burned[e.index()] = true; // an accepted pair is also final
            w_rem[g.worker_of(e).index()] -= 1;
            t_rem[g.task_of(e).index()] -= 1;
            accepted_edges.push(e);
        }
        for &se in &outcome.declined {
            let e = sub.parent_edge(se);
            burned[e.index()] = true;
            declined_total += 1;
        }
    }

    let accepted = Matching::from_edges(accepted_edges);
    debug_assert!(accepted.validate(g).is_ok());
    OfferLoopResult {
        accepted,
        rounds,
        offers_made,
        declined: declined_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::{from_edges, random_bipartite, RandomGraphSpec};
    use mbta_market::benefit::edge_weights;
    use mbta_matching::mcmf::PathAlgo;

    fn instance(seed: u64) -> BipartiteGraph {
        random_bipartite(
            &RandomGraphSpec {
                n_workers: 80,
                n_tasks: 50,
                avg_degree: 6.0,
                capacity: 2,
                demand: 2,
            },
            seed,
        )
    }

    #[test]
    fn compliant_crowd_accepts_round_one() {
        let g = instance(1);
        let r = run_offer_loop(
            &g,
            Combiner::balanced(),
            Algorithm::GreedyMB,
            &AcceptanceModel::compliant(),
            5,
            7,
        );
        r.accepted.validate(&g).unwrap();
        assert!(r.acceptance_rate() > 0.85, "{}", r.acceptance_rate());
        assert!(r.rounds >= 1);
    }

    #[test]
    fn reoffers_recover_declined_demand() {
        // One task, demand 1, two eligible workers. If the first offer is
        // declined, round two must try the other worker.
        let g = from_edges(&[1, 1], &[1], &[(0, 0, 0.9, 0.9), (1, 0, 0.8, 0.9)]);
        // Find a seed where round one declines but round two accepts.
        let mut recovered = false;
        for seed in 0..64 {
            let r = run_offer_loop(
                &g,
                Combiner::balanced(),
                Algorithm::ExactMB {
                    algo: PathAlgo::Dijkstra,
                },
                &AcceptanceModel {
                    intercept: -1.0,
                    slope: 2.0,
                }, // ~73% at wb .9
                4,
                seed,
            );
            r.accepted.validate(&g).unwrap();
            if r.rounds >= 2 && r.accepted.len() == 1 {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "no seed produced a decline-then-recover trace");
    }

    #[test]
    fn burned_pairs_never_reoffered() {
        let g = instance(2);
        let r = run_offer_loop(
            &g,
            Combiner::balanced(),
            Algorithm::GreedyMB,
            &AcceptanceModel::benefit_sensitive(),
            10,
            3,
        );
        // offers = accepted + declined exactly (each pair offered at most
        // once).
        assert_eq!(r.offers_made, r.accepted.len() + r.declined);
        r.accepted.validate(&g).unwrap();
    }

    #[test]
    fn mutual_awareness_completes_more_work_than_quality_only() {
        // The paper's thesis, operationalized: under a benefit-sensitive
        // crowd, ExactMB's offers are accepted more often than
        // QualityOnly's, so more total *mutual benefit* actually completes.
        let mut mutual_total = 0.0;
        let mut quality_total = 0.0;
        for seed in 0..8 {
            let g = instance(seed + 10);
            let w = edge_weights(&g, Combiner::balanced());
            let model = AcceptanceModel::benefit_sensitive();
            let mutual = run_offer_loop(
                &g,
                Combiner::balanced(),
                Algorithm::ExactMB {
                    algo: PathAlgo::Dijkstra,
                },
                &model,
                3,
                99 + seed,
            );
            let quality = run_offer_loop(
                &g,
                Combiner::balanced(),
                Algorithm::QualityOnly,
                &model,
                3,
                99 + seed,
            );
            mutual_total += mutual.accepted.total_weight(&w);
            quality_total += quality.accepted.total_weight(&w);
        }
        assert!(
            mutual_total > quality_total,
            "mutual {mutual_total} vs quality-only {quality_total}"
        );
    }

    #[test]
    fn zero_rounds_is_empty() {
        let g = instance(3);
        let r = run_offer_loop(
            &g,
            Combiner::balanced(),
            Algorithm::GreedyMB,
            &AcceptanceModel::compliant(),
            0,
            1,
        );
        assert!(r.accepted.is_empty());
        assert_eq!(r.rounds, 0);
        assert_eq!(r.acceptance_rate(), 1.0);
    }
}
