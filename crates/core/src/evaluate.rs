//! The metric set every experiment reports.

use mbta_graph::BipartiteGraph;
use mbta_market::Combiner;
use mbta_matching::Matching;

/// Evaluation of an assignment under the mutual-benefit objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Number of assigned edges.
    pub cardinality: usize,
    /// Σ mutual benefit over assigned edges (under the given combiner).
    pub total_mb: f64,
    /// Σ requester benefit over assigned edges.
    pub total_rb: f64,
    /// Σ worker benefit over assigned edges.
    pub total_wb: f64,
    /// Smallest per-edge mutual benefit in the assignment (1.0 when empty —
    /// the neutral element of `min`).
    pub min_edge_mb: f64,
    /// Fraction of total task demand that was filled.
    pub demand_coverage: f64,
    /// Fraction of workers with at least one assigned task.
    pub worker_participation: f64,
    /// Jain fairness index of per-worker benefit among *participating*
    /// workers (1 = perfectly equal, → 1/n = one worker takes all).
    pub worker_fairness: f64,
    /// Jain fairness index of per-task quality among *served* tasks.
    pub task_fairness: f64,
}

/// Gini coefficient over non-negative values (0 = perfectly equal,
/// → 1 = one participant takes all). Returns 0.0 for empty or all-zero
/// inputs (vacuously equal).
pub fn gini_coefficient(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("values are finite"));
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    // G = (2 Σ i·x_(i) / (n Σ x)) − (n + 1)/n, ranks i = 1..n.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted / (n * total) - (n + 1.0) / n).max(0.0)
}

/// Jain's fairness index `(Σx)² / (n · Σx²)` over the given values.
/// Returns 1.0 for empty or all-zero inputs (vacuously fair).
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if sq == 0.0 {
        1.0
    } else {
        (sum * sum) / (values.len() as f64 * sq)
    }
}

impl Evaluation {
    /// Evaluates `m` on `g` under `combiner`.
    pub fn compute(g: &BipartiteGraph, m: &Matching, combiner: Combiner) -> Self {
        debug_assert!(m.validate(g).is_ok());
        let mut total_mb = 0.0;
        let mut total_rb = 0.0;
        let mut total_wb = 0.0;
        let mut min_edge_mb = 1.0f64;
        let mut worker_benefit = vec![0.0f64; g.n_workers()];
        let mut task_quality = vec![0.0f64; g.n_tasks()];
        let mut worker_hit = vec![false; g.n_workers()];
        let mut task_hit = vec![false; g.n_tasks()];

        for &e in &m.edges {
            let (rb, wb) = (g.rb(e), g.wb(e));
            let mb = combiner.combine(rb, wb);
            total_mb += mb;
            total_rb += rb;
            total_wb += wb;
            min_edge_mb = min_edge_mb.min(mb);
            let w = g.worker_of(e).index();
            let t = g.task_of(e).index();
            worker_benefit[w] += wb;
            task_quality[t] += rb;
            worker_hit[w] = true;
            task_hit[t] = true;
        }

        let participating: Vec<f64> = worker_benefit
            .iter()
            .zip(&worker_hit)
            .filter(|(_, &hit)| hit)
            .map(|(&b, _)| b)
            .collect();
        let served: Vec<f64> = task_quality
            .iter()
            .zip(&task_hit)
            .filter(|(_, &hit)| hit)
            .map(|(&q, _)| q)
            .collect();

        let total_demand = g.total_demand();
        Self {
            cardinality: m.len(),
            total_mb,
            total_rb,
            total_wb,
            min_edge_mb: if m.is_empty() { 1.0 } else { min_edge_mb },
            demand_coverage: if total_demand == 0 {
                1.0
            } else {
                m.len() as f64 / total_demand as f64
            },
            worker_participation: if g.n_workers() == 0 {
                1.0
            } else {
                worker_hit.iter().filter(|&&h| h).count() as f64 / g.n_workers() as f64
            },
            worker_fairness: jain_index(&participating),
            task_fairness: jain_index(&served),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::from_edges;
    use mbta_graph::EdgeId;

    fn two_edge_instance() -> BipartiteGraph {
        from_edges(
            &[1, 1, 1],
            &[2, 1],
            &[(0, 0, 0.8, 0.4), (1, 0, 0.6, 0.6), (2, 1, 0.2, 1.0)],
        )
    }

    #[test]
    fn totals_and_minima() {
        let g = two_edge_instance();
        let m = Matching::from_edges(vec![EdgeId::new(0), EdgeId::new(2)]);
        let ev = Evaluation::compute(&g, &m, Combiner::balanced());
        assert_eq!(ev.cardinality, 2);
        assert!((ev.total_rb - 1.0).abs() < 1e-12);
        assert!((ev.total_wb - 1.4).abs() < 1e-12);
        assert!((ev.total_mb - 1.2).abs() < 1e-12);
        assert!((ev.min_edge_mb - 0.6).abs() < 1e-12);
        // Demand: 3 total, 2 filled.
        assert!((ev.demand_coverage - 2.0 / 3.0).abs() < 1e-12);
        // Workers: 2 of 3 participate.
        assert!((ev.worker_participation - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matching_is_neutral() {
        let g = two_edge_instance();
        let ev = Evaluation::compute(&g, &Matching::empty(), Combiner::balanced());
        assert_eq!(ev.cardinality, 0);
        assert_eq!(ev.total_mb, 0.0);
        assert_eq!(ev.min_edge_mb, 1.0);
        assert_eq!(ev.demand_coverage, 0.0);
        assert_eq!(ev.worker_participation, 0.0);
        assert_eq!(ev.worker_fairness, 1.0);
    }

    #[test]
    fn gini_properties() {
        assert_eq!(gini_coefficient(&[]), 0.0);
        assert_eq!(gini_coefficient(&[0.0, 0.0]), 0.0);
        assert!(gini_coefficient(&[1.0, 1.0, 1.0]).abs() < 1e-12);
        // One takes all of n=4: G = (n-1)/n = 0.75.
        assert!((gini_coefficient(&[1.0, 0.0, 0.0, 0.0]) - 0.75).abs() < 1e-12);
        // More unequal -> larger G; order-invariant.
        assert!(gini_coefficient(&[0.9, 0.1]) > gini_coefficient(&[0.6, 0.4]));
        assert!(
            (gini_coefficient(&[3.0, 1.0, 2.0]) - gini_coefficient(&[1.0, 2.0, 3.0])).abs() < 1e-12
        );
    }

    #[test]
    fn jain_index_properties() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One worker takes all: index = 1/n.
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Monotone in equality.
        assert!(jain_index(&[0.5, 0.5]) > jain_index(&[0.9, 0.1]));
    }

    #[test]
    fn fairness_uses_participants_only() {
        let g = two_edge_instance();
        // Single assigned edge: the one participant is trivially fair.
        let m = Matching::from_edges(vec![EdgeId::new(0)]);
        let ev = Evaluation::compute(&g, &m, Combiner::balanced());
        assert_eq!(ev.worker_fairness, 1.0);
        assert_eq!(ev.task_fairness, 1.0);
    }

    #[test]
    fn combiner_changes_total_mb_only() {
        let g = two_edge_instance();
        let m = Matching::from_edges(vec![EdgeId::new(0), EdgeId::new(1)]);
        let lin = Evaluation::compute(&g, &m, Combiner::balanced());
        let min = Evaluation::compute(&g, &m, Combiner::Min);
        assert_eq!(lin.total_rb, min.total_rb);
        assert_eq!(lin.total_wb, min.total_wb);
        assert!(min.total_mb < lin.total_mb); // min ≤ mean, strict here
    }
}
