//! `mbta-core`: mutual-benefit-aware task assignment.
//!
//! The reproduction of the paper's primary contribution: assignment in a
//! bipartite labor market that is *mutually* beneficial — good for the
//! requesters (answer quality) **and** for the workers (pay and interest),
//! under the eligibility bipartition that real markets impose.
//!
//! The crate layers problem definitions and solvers over the
//! `mbta-matching` substrate:
//!
//! * [`algorithms`] — the algorithm portfolio the evaluation compares:
//!   `ExactMB` (min-cost-flow optimum), `GreedyMB`, `LocalSearch`, and the
//!   baselines `QualityOnly`, `WorkerOnly`, `Random`, `Cardinality`,
//!   `Stable`.
//! * [`evaluate`] — the metric set every experiment reports: total mutual /
//!   requester / worker benefit, cardinality, demand coverage, per-side
//!   minima and Jain fairness.
//! * [`maxmin`] — the egalitarian variant (MB-MaxMin): among
//!   maximum-cardinality assignments, maximize the minimum per-edge mutual
//!   benefit (bottleneck b-matching), solved exactly by threshold search.
//! * [`frontier`] — the λ-sweep Pareto frontier between requester-side and
//!   worker-side welfare, and the balance-constrained variant built on it.
//! * [`online`] — arrival orders and empirical competitive ratios for the
//!   online policies.
//! * [`engine`] — the fault-tolerant serving boundary: typed input
//!   validation, deadline/cancellation budgets, and the graceful-degradation
//!   fallback chain (greedy → local search → exact) with tiered quality.
//! * [`incremental`] — assignment maintenance under worker/task churn with
//!   greedy local repair (experiment F14).
//! * [`budget`] — MB-Budget: budget-constrained assignment via density
//!   greedy and Lagrangian relaxation (experiment F18).
//! * [`pipeline`] — the high-level facade: `Market` → realized graph →
//!   solve → evaluation, in one call.
//! * [`report`] — operator-facing audit reports: worker regrets and
//!   under-served tasks.
//! * [`offers`] — the offer/decline/re-offer loop under the acceptance
//!   model: the abstract's "willingness to participate" made operational
//!   (experiment F20).
//! * [`rotation`] — repeated rounds with load rotation: temporal fairness
//!   across the worker pool (experiment F22).
//! * [`warm`] — warm-started exact re-solves for long-lived shard states:
//!   carried node potentials + seeded flow over a fixed topology (the
//!   online drift-fallback engine).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod budget;
pub mod engine;
pub mod evaluate;
pub mod frontier;
pub mod incremental;
pub mod maxmin;
pub mod offers;
pub mod online;
pub mod pipeline;
pub mod report;
pub mod rotation;
pub mod warm;

pub use algorithms::{solve, Algorithm};
pub use engine::{solve_robust, EngineConfig, EngineError, EngineSolution, QualityTier};
pub use evaluate::Evaluation;
pub use pipeline::{assign, AssignmentOutcome};
