//! MB-Budget: budget-constrained mutual-benefit assignment.
//!
//! Requesters pay per assignment; a platform (or a requester cohort) with a
//! global budget `B` must choose the assignment maximizing total mutual
//! benefit subject to `Σ cost(e) ≤ B`. With the degree constraints this is
//! budgeted matching — NP-hard already on stars (knapsack embeds) — so the
//! exact solver gives way to:
//!
//! * [`greedy_budgeted`] — density greedy: take edges by `weight / cost`
//!   (free edges first) while capacity, demand and budget allow;
//! * [`lagrangian_budgeted`] — dualize the budget: binary-search the
//!   multiplier `μ` and solve the *unconstrained* problem with penalized
//!   weights `w_e − μ·c_e` exactly (min-cost flow) at each step, keeping
//!   the best feasible solution; a final greedy fill spends any leftover
//!   budget. The classic Lagrangian-relaxation heuristic: each inner solve
//!   is optimal for its penalized objective, so the search brackets the
//!   budget-feasible frontier from both sides.

use mbta_graph::{BipartiteGraph, EdgeId};
use mbta_matching::mcmf::{max_weight_bmatching, FlowMode, PathAlgo};
use mbta_matching::Matching;

/// Result of a budgeted solve.
#[derive(Debug, Clone)]
pub struct BudgetResult {
    /// The chosen assignment (budget-feasible).
    pub matching: Matching,
    /// Its total weight.
    pub total_weight: f64,
    /// Its total cost (`≤ budget`).
    pub total_cost: f64,
    /// The final Lagrange multiplier (0 for the greedy solver).
    pub mu: f64,
    /// Inner exact solves performed (1 + binary-search iterations).
    pub solves: u32,
}

fn validate_inputs(g: &BipartiteGraph, weights: &[f64], costs: &[f64], budget: f64) {
    assert_eq!(weights.len(), g.n_edges(), "weight slice length mismatch");
    assert_eq!(costs.len(), g.n_edges(), "cost slice length mismatch");
    assert!(
        budget >= 0.0 && budget.is_finite(),
        "budget must be finite and >= 0"
    );
    assert!(
        costs.iter().all(|c| c.is_finite() && *c >= 0.0),
        "costs must be finite and >= 0"
    );
}

/// Density greedy for budgeted matching: edges sorted by `weight / cost`
/// descending (cost-0 edges first, by weight), taken while degrees and
/// budget allow. Unaffordable edges are skipped, not a stopping point.
pub fn greedy_budgeted(
    g: &BipartiteGraph,
    weights: &[f64],
    costs: &[f64],
    budget: f64,
) -> BudgetResult {
    validate_inputs(g, weights, costs, budget);
    let mut order: Vec<u32> = (0..g.n_edges() as u32).collect();
    let density = |e: usize| -> f64 {
        if costs[e] == 0.0 {
            f64::INFINITY
        } else {
            weights[e] / costs[e]
        }
    };
    order.sort_unstable_by(|&a, &b| {
        let (da, db) = (density(a as usize), density(b as usize));
        db.partial_cmp(&da)
            .expect("densities are comparable")
            .then(
                weights[b as usize]
                    .partial_cmp(&weights[a as usize])
                    .expect("weights are finite"),
            )
            .then(a.cmp(&b))
    });

    let mut w_rem = g.capacities().to_vec();
    let mut t_rem = g.demands().to_vec();
    let mut spent = 0.0;
    let mut total = 0.0;
    let mut chosen = Vec::new();
    for eid in order {
        let e = EdgeId::new(eid);
        let i = e.index();
        if weights[i] <= 0.0 {
            continue;
        }
        let w = g.worker_of(e).index();
        let t = g.task_of(e).index();
        if w_rem[w] > 0 && t_rem[t] > 0 && spent + costs[i] <= budget + 1e-12 {
            w_rem[w] -= 1;
            t_rem[t] -= 1;
            spent += costs[i];
            total += weights[i];
            chosen.push(e);
        }
    }
    BudgetResult {
        matching: Matching::from_edges(chosen),
        total_weight: total,
        total_cost: spent,
        mu: 0.0,
        solves: 0,
    }
}

/// Lagrangian relaxation: binary search `μ ∈ [0, μ_max]`, solving the
/// penalized unconstrained problem exactly at each step; returns the best
/// budget-feasible candidate found, greedily topped up with leftover
/// budget. `iters` bounds the binary-search depth (20 is plenty: the
/// bracket shrinks geometrically).
pub fn lagrangian_budgeted(
    g: &BipartiteGraph,
    weights: &[f64],
    costs: &[f64],
    budget: f64,
    iters: u32,
) -> BudgetResult {
    validate_inputs(g, weights, costs, budget);

    let cost_of = |m: &Matching| -> f64 { m.edges.iter().map(|e| costs[e.index()]).sum() };
    let solve_mu = |mu: f64| -> Matching {
        // Penalized weights, clamped into [0,1]: negative-value edges are
        // never taken by the free-cardinality solver anyway, and the upper
        // clamp is vacuous (weights ≤ 1, penalty ≥ 0).
        let penalized: Vec<f64> = weights
            .iter()
            .zip(costs)
            .map(|(&w, &c)| (w - mu * c).max(0.0))
            .collect();
        max_weight_bmatching(g, &penalized, FlowMode::FreeCardinality, PathAlgo::Dijkstra).0
    };

    // μ = 0: unconstrained optimum. Feasible ⇒ done.
    let unconstrained = solve_mu(0.0);
    let mut solves = 1;
    if cost_of(&unconstrained) <= budget + 1e-12 {
        let total_cost = cost_of(&unconstrained);
        let total_weight = unconstrained.total_weight(weights);
        return BudgetResult {
            matching: unconstrained,
            total_weight,
            total_cost,
            mu: 0.0,
            solves,
        };
    }

    // Track the best feasible candidate seen (by true weight).
    let mut best: Option<(Matching, f64, f64, f64)> = None; // (m, weight, cost, mu)
    let consider = |m: Matching, mu: f64, best: &mut Option<(Matching, f64, f64, f64)>| {
        let c = cost_of(&m);
        if c <= budget + 1e-12 {
            let v = m.total_weight(weights);
            if best.as_ref().is_none_or(|(_, bv, _, _)| v > *bv) {
                *best = Some((m, v, c, mu));
            }
        }
    };

    // μ_max: every positive-cost edge penalized to zero value.
    let mu_max = weights
        .iter()
        .zip(costs)
        .filter(|(_, &c)| c > 0.0)
        .map(|(&w, &c)| w / c)
        .fold(0.0f64, f64::max)
        + 1.0;
    consider(solve_mu(mu_max), mu_max, &mut best);
    solves += 1;

    let (mut lo, mut hi) = (0.0f64, mu_max); // lo infeasible, hi feasible
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        let m = solve_mu(mid);
        solves += 1;
        if cost_of(&m) <= budget + 1e-12 {
            consider(m, mid, &mut best);
            hi = mid;
        } else {
            lo = mid;
        }
    }

    let (matching, _, _, mu) = best.expect("mu_max candidate is always feasible");
    // Greedy top-up with leftover budget (the Lagrangian point can leave
    // both budget and degrees slack).
    let mut w_rem = g.capacities().to_vec();
    let mut t_rem = g.demands().to_vec();
    let mut in_m = vec![false; g.n_edges()];
    let mut spent = 0.0;
    let mut total = 0.0;
    let mut edges = matching.edges.clone();
    for &e in &edges {
        in_m[e.index()] = true;
        w_rem[g.worker_of(e).index()] -= 1;
        t_rem[g.task_of(e).index()] -= 1;
        spent += costs[e.index()];
        total += weights[e.index()];
    }
    let mut order: Vec<u32> = (0..g.n_edges() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        weights[b as usize]
            .partial_cmp(&weights[a as usize])
            .expect("weights are finite")
            .then(a.cmp(&b))
    });
    for eid in order {
        let e = EdgeId::new(eid);
        let i = e.index();
        if in_m[i] || weights[i] <= 0.0 {
            continue;
        }
        let w = g.worker_of(e).index();
        let t = g.task_of(e).index();
        if w_rem[w] > 0 && t_rem[t] > 0 && spent + costs[i] <= budget + 1e-12 {
            w_rem[w] -= 1;
            t_rem[t] -= 1;
            spent += costs[i];
            total += weights[i];
            in_m[i] = true;
            edges.push(e);
        }
    }

    BudgetResult {
        matching: Matching::from_edges(edges),
        total_weight: total,
        total_cost: spent,
        mu,
        solves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::{from_edges, random_bipartite, RandomGraphSpec};
    use mbta_util::SplitMix64;

    fn setup(seed: u64) -> (BipartiteGraph, Vec<f64>, Vec<f64>) {
        let g = random_bipartite(
            &RandomGraphSpec {
                n_workers: 30,
                n_tasks: 20,
                avg_degree: 4.0,
                capacity: 2,
                demand: 2,
            },
            seed,
        );
        let weights: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
        let mut rng = SplitMix64::new(seed ^ 0xB0D6E7);
        let costs: Vec<f64> = g.edges().map(|_| rng.next_f64() * 10.0).collect();
        (g, weights, costs)
    }

    #[test]
    fn infinite_budget_matches_unconstrained_optimum() {
        let (g, w, c) = setup(1);
        let (opt, _) = max_weight_bmatching(&g, &w, FlowMode::FreeCardinality, PathAlgo::Dijkstra);
        let r = lagrangian_budgeted(&g, &w, &c, 1e12, 20);
        assert_eq!(r.solves, 1);
        assert!((r.total_weight - opt.total_weight(&w)).abs() < 1e-6);
        assert_eq!(r.mu, 0.0);
    }

    #[test]
    fn zero_budget_takes_only_free_edges() {
        let g = from_edges(&[1, 1], &[1, 1], &[(0, 0, 0.9, 0.9), (1, 1, 0.5, 0.5)]);
        let w: Vec<f64> = g.edges().map(|e| g.rb(e)).collect();
        let c = vec![5.0, 0.0];
        for r in [
            greedy_budgeted(&g, &w, &c, 0.0),
            lagrangian_budgeted(&g, &w, &c, 0.0, 20),
        ] {
            r.matching.validate(&g).unwrap();
            assert_eq!(r.matching.len(), 1);
            assert!((r.total_weight - 0.5).abs() < 1e-12);
            assert_eq!(r.total_cost, 0.0);
        }
    }

    #[test]
    fn budget_is_always_respected() {
        for seed in 0..10 {
            let (g, w, c) = setup(seed);
            for budget in [0.0, 3.0, 10.0, 30.0, 100.0] {
                let gr = greedy_budgeted(&g, &w, &c, budget);
                gr.matching.validate(&g).unwrap();
                assert!(
                    gr.total_cost <= budget + 1e-9,
                    "greedy seed {seed} b {budget}"
                );
                let la = lagrangian_budgeted(&g, &w, &c, budget, 20);
                la.matching.validate(&g).unwrap();
                assert!(
                    la.total_cost <= budget + 1e-9,
                    "lagr seed {seed} b {budget}"
                );
                // Both report consistent totals.
                assert!((gr.total_weight - gr.matching.total_weight(&w)).abs() < 1e-9);
                assert!((la.total_weight - la.matching.total_weight(&w)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn lagrangian_beats_or_matches_greedy_usually() {
        let mut lagr_wins = 0;
        let mut greedy_wins = 0;
        for seed in 0..20 {
            let (g, w, c) = setup(seed + 100);
            let budget = 15.0;
            let gr = greedy_budgeted(&g, &w, &c, budget);
            let la = lagrangian_budgeted(&g, &w, &c, budget, 20);
            if la.total_weight > gr.total_weight + 1e-9 {
                lagr_wins += 1;
            } else if gr.total_weight > la.total_weight + 1e-9 {
                greedy_wins += 1;
            }
        }
        assert!(
            lagr_wins > greedy_wins,
            "lagrangian {lagr_wins} vs greedy {greedy_wins}"
        );
    }

    #[test]
    fn beats_exhaustive_on_tiny_instances_within_tolerance() {
        // Brute-force budgeted optimum on tiny instances; the Lagrangian
        // heuristic is not exact for knapsack-hard cases, so allow a margin
        // but verify we're close and never above.
        for seed in 0..8 {
            let g = random_bipartite(
                &RandomGraphSpec {
                    n_workers: 4,
                    n_tasks: 4,
                    avg_degree: 3.0,
                    capacity: 1,
                    demand: 1,
                },
                seed,
            );
            let w: Vec<f64> = g.edges().map(|e| g.rb(e)).collect();
            let mut rng = SplitMix64::new(seed);
            let c: Vec<f64> = g.edges().map(|_| 1.0 + rng.next_f64() * 4.0).collect();
            let budget = 5.0;
            let best = brute_force(&g, &w, &c, budget);
            let la = lagrangian_budgeted(&g, &w, &c, budget, 30);
            assert!(
                la.total_weight <= best + 1e-9,
                "seed {seed}: above optimum?!"
            );
            assert!(
                la.total_weight >= 0.6 * best - 1e-9,
                "seed {seed}: lagrangian {} vs brute {best}",
                la.total_weight
            );
        }
    }

    fn brute_force(g: &BipartiteGraph, w: &[f64], c: &[f64], budget: f64) -> f64 {
        let m = g.n_edges();
        assert!(m <= 16);
        let mut best = 0.0f64;
        'mask: for mask in 0u32..(1 << m) {
            let mut w_load = vec![0u32; g.n_workers()];
            let mut t_load = vec![0u32; g.n_tasks()];
            let (mut total, mut cost) = (0.0, 0.0);
            for e in g.edges() {
                if mask & (1 << e.index()) != 0 {
                    let wi = g.worker_of(e).index();
                    let ti = g.task_of(e).index();
                    w_load[wi] += 1;
                    t_load[ti] += 1;
                    if w_load[wi] > g.capacity(g.worker_of(e))
                        || t_load[ti] > g.demand(g.task_of(e))
                    {
                        continue 'mask;
                    }
                    total += w[e.index()];
                    cost += c[e.index()];
                }
            }
            if cost <= budget + 1e-12 {
                best = best.max(total);
            }
        }
        best
    }

    #[test]
    fn monotone_in_budget() {
        let (g, w, c) = setup(3);
        let mut prev = -1.0;
        for budget in [0.0, 5.0, 10.0, 20.0, 40.0, 1e9] {
            let r = lagrangian_budgeted(&g, &w, &c, budget, 20);
            assert!(
                r.total_weight >= prev - 1e-9,
                "budget {budget}: {} < {prev}",
                r.total_weight
            );
            prev = r.total_weight;
        }
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn negative_budget_rejected() {
        let (g, w, c) = setup(4);
        greedy_budgeted(&g, &w, &c, -1.0);
    }
}
