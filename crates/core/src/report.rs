//! Operator-facing assignment reports.
//!
//! A production platform needs more than an objective value: operators ask
//! "who got nothing and why", "which tasks are under-served", and "what did
//! we leave on the table". [`AssignmentReport`] answers those from a graph
//! and a matching: per-side utilization, the largest *regrets* (the best
//! eligible edge a fully idle worker was not given), and under-served tasks
//! ranked by unmet demand.

use crate::evaluate::Evaluation;
use mbta_graph::{BipartiteGraph, TaskId, WorkerId};
use mbta_market::Combiner;
use mbta_matching::Matching;
use mbta_util::table::{fnum, Table};

/// A worker's regret: its best eligible edge weight minus what it received.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerRegret {
    /// The worker.
    pub worker: WorkerId,
    /// Its best eligible edge weight.
    pub best_edge: f64,
    /// Total weight of the edges it actually received.
    pub received: f64,
    /// `best_edge − received` if positive (idle or under-served), else 0.
    pub regret: f64,
}

/// An under-served task: demand it wanted vs workers it got.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnderServedTask {
    /// The task.
    pub task: TaskId,
    /// Declared demand.
    pub demand: u32,
    /// Assigned workers.
    pub assigned: u32,
    /// Eligible workers in the graph (an unmet demand with few eligible
    /// workers is a supply problem, not an assignment problem).
    pub eligible: usize,
}

/// The assembled report.
#[derive(Debug, Clone)]
pub struct AssignmentReport {
    /// The standard metric set.
    pub evaluation: Evaluation,
    /// Workers with positive regret, sorted worst-first.
    pub worker_regrets: Vec<WorkerRegret>,
    /// Tasks with unmet demand, sorted by shortfall.
    pub under_served: Vec<UnderServedTask>,
}

impl AssignmentReport {
    /// Builds the report for `m` on `g` under `combiner`.
    pub fn build(g: &BipartiteGraph, m: &Matching, combiner: Combiner) -> Self {
        let evaluation = Evaluation::compute(g, m, combiner);
        let mut in_matching = vec![false; g.n_edges()];
        for &e in &m.edges {
            in_matching[e.index()] = true;
        }
        let t_loads = m.task_loads(g);

        let mut worker_regrets: Vec<WorkerRegret> = g
            .workers()
            .filter_map(|w| {
                let mut best = 0.0f64;
                let mut received = 0.0f64;
                for e in g.worker_edges(w) {
                    let mb = combiner.combine(g.rb(e), g.wb(e));
                    best = best.max(mb);
                    if in_matching[e.index()] {
                        received += mb;
                    }
                }
                let regret = (best - received).max(0.0);
                (regret > 1e-12).then_some(WorkerRegret {
                    worker: w,
                    best_edge: best,
                    received,
                    regret,
                })
            })
            .collect();
        worker_regrets.sort_by(|a, b| {
            b.regret
                .partial_cmp(&a.regret)
                .expect("regrets are finite")
                .then(a.worker.cmp(&b.worker))
        });

        let mut under_served: Vec<UnderServedTask> = g
            .tasks()
            .filter_map(|t| {
                let assigned = t_loads[t.index()];
                (assigned < g.demand(t)).then_some(UnderServedTask {
                    task: t,
                    demand: g.demand(t),
                    assigned,
                    eligible: g.task_degree(t),
                })
            })
            .collect();
        under_served.sort_by_key(|u| std::cmp::Reverse(u.demand - u.assigned));

        Self {
            evaluation,
            worker_regrets,
            under_served,
        }
    }

    /// Renders the report as aligned text tables (top-`k` rows per list).
    pub fn render(&self, top_k: usize) -> String {
        let ev = &self.evaluation;
        let mut out = String::new();
        let mut summary = Table::new("assignment summary", &["metric", "value"]);
        for (k, v) in [
            ("pairs", ev.cardinality.to_string()),
            ("total mutual benefit", fnum(ev.total_mb, 3)),
            ("requester side", fnum(ev.total_rb, 3)),
            ("worker side", fnum(ev.total_wb, 3)),
            ("min edge benefit", fnum(ev.min_edge_mb, 4)),
            ("demand coverage", fnum(ev.demand_coverage, 3)),
            ("worker participation", fnum(ev.worker_participation, 3)),
        ] {
            summary.row(vec![k.to_string(), v]);
        }
        out.push_str(&summary.render());

        let mut regrets = Table::new(
            format!("top worker regrets ({} total)", self.worker_regrets.len()),
            &["worker", "best_edge", "received", "regret"],
        );
        for r in self.worker_regrets.iter().take(top_k) {
            regrets.row(vec![
                r.worker.raw().to_string(),
                fnum(r.best_edge, 3),
                fnum(r.received, 3),
                fnum(r.regret, 3),
            ]);
        }
        if !regrets.is_empty() {
            out.push('\n');
            out.push_str(&regrets.render());
        }

        let mut tasks = Table::new(
            format!("under-served tasks ({} total)", self.under_served.len()),
            &["task", "demand", "assigned", "eligible"],
        );
        for u in self.under_served.iter().take(top_k) {
            tasks.row(vec![
                u.task.raw().to_string(),
                u.demand.to_string(),
                u.assigned.to_string(),
                u.eligible.to_string(),
            ]);
        }
        if !tasks.is_empty() {
            out.push('\n');
            out.push_str(&tasks.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{solve, Algorithm};
    use mbta_graph::random::from_edges;
    use mbta_graph::EdgeId;

    fn instance() -> BipartiteGraph {
        // w0 gets its best edge; w1 is idle despite an eligible 0.8 edge
        // (t0 saturated); t1 demands 2 but only one worker is eligible.
        from_edges(
            &[1, 1, 1],
            &[1, 2],
            &[(0, 0, 0.9, 0.9), (1, 0, 0.8, 0.8), (2, 1, 0.6, 0.6)],
        )
    }

    #[test]
    fn regrets_and_underserved_identified() {
        let g = instance();
        let m = Matching::from_edges(vec![EdgeId::new(0), EdgeId::new(2)]);
        let r = AssignmentReport::build(&g, &m, Combiner::balanced());
        // w1 has regret 0.8; nobody else.
        assert_eq!(r.worker_regrets.len(), 1);
        assert_eq!(r.worker_regrets[0].worker, WorkerId::new(1));
        assert!((r.worker_regrets[0].regret - 0.8).abs() < 1e-12);
        // t1 under-served: demand 2, assigned 1, eligible 1.
        assert_eq!(r.under_served.len(), 1);
        assert_eq!(
            r.under_served[0],
            UnderServedTask {
                task: TaskId::new(1),
                demand: 2,
                assigned: 1,
                eligible: 1
            }
        );
    }

    #[test]
    fn exact_solution_minimizes_regret_mass() {
        let g = instance();
        let exact = solve(
            &g,
            Combiner::balanced(),
            Algorithm::ExactMB {
                algo: mbta_matching::mcmf::PathAlgo::Dijkstra,
            },
        );
        let r_exact = AssignmentReport::build(&g, &exact, Combiner::balanced());
        let random = solve(&g, Combiner::balanced(), Algorithm::Random { seed: 5 });
        let r_random = AssignmentReport::build(&g, &random, Combiner::balanced());
        let mass = |r: &AssignmentReport| r.worker_regrets.iter().map(|x| x.regret).sum::<f64>();
        assert!(mass(&r_exact) <= mass(&r_random) + 1e-9);
    }

    #[test]
    fn render_contains_sections() {
        let g = instance();
        let m = Matching::from_edges(vec![EdgeId::new(0)]);
        let text = AssignmentReport::build(&g, &m, Combiner::balanced()).render(5);
        assert!(text.contains("assignment summary"));
        assert!(text.contains("top worker regrets"));
        assert!(text.contains("under-served tasks"));
    }

    #[test]
    fn empty_matching_report() {
        let g = instance();
        let r = AssignmentReport::build(&g, &Matching::empty(), Combiner::balanced());
        assert_eq!(r.worker_regrets.len(), 3);
        assert_eq!(r.under_served.len(), 2);
        let _ = r.render(10);
    }
}
