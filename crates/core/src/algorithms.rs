//! The algorithm portfolio the evaluation compares.
//!
//! Every algorithm consumes the same realized graph and the same
//! mutual-benefit combiner, and returns a feasible [`Matching`] — the
//! *objective they optimize* is what differs:
//!
//! | Algorithm      | Optimizes                          | Complexity        |
//! |----------------|------------------------------------|-------------------|
//! | `ExactMB`      | Σ mb, exactly (min-cost flow)      | O(F · E log V)    |
//! | `GreedyMB`     | Σ mb, ½-approx                     | O(E log E)        |
//! | `LocalSearch`  | Σ mb, greedy + swap/split moves    | O(passes · E·deg) |
//! | `QualityOnly`  | Σ rb exactly (prior-work baseline) | O(F · E log V)    |
//! | `WorkerOnly`   | Σ wb exactly                       | O(F · E log V)    |
//! | `Random`       | nothing (random maximal feasible)  | O(E)              |
//! | `Cardinality`  | assignment count (max flow)        | O(E √V)           |
//! | `Stable`       | pairwise stability (not welfare)   | O(E log E)        |

use mbta_graph::{BipartiteGraph, EdgeId};
use mbta_market::benefit::edge_weights;
use mbta_market::Combiner;
use mbta_matching::dinic::max_cardinality_bmatching;
use mbta_matching::greedy::greedy_bmatching;
use mbta_matching::local_search::local_search;
use mbta_matching::mcmf::{max_weight_bmatching, FlowMode, PathAlgo};
use mbta_matching::stable::deferred_acceptance;
use mbta_matching::Matching;
use mbta_util::SplitMix64;

/// An assignment algorithm from the evaluation's comparison set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// Exact maximum of total mutual benefit via min-cost max-flow.
    ExactMB {
        /// Shortest-path strategy inside the flow solver.
        algo: PathAlgo,
    },
    /// Sort-and-scan greedy (½-approximation), the scalable heuristic.
    GreedyMB,
    /// Greedy followed by add/swap/split local search.
    LocalSearch {
        /// Maximum improvement passes.
        max_passes: u32,
    },
    /// Prior-work baseline: maximize requester benefit only (exactly), then
    /// be evaluated under the mutual objective.
    QualityOnly,
    /// Mirror baseline: maximize worker benefit only (exactly).
    WorkerOnly,
    /// Random maximal feasible assignment (uniform edge order).
    Random {
        /// Shuffle seed.
        seed: u64,
    },
    /// Maximum-cardinality assignment ignoring weights entirely.
    Cardinality,
    /// Worker-proposing deferred acceptance under (wb, rb) preferences.
    Stable,
}

impl Algorithm {
    /// Short display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::ExactMB {
                algo: PathAlgo::Dijkstra,
            } => "ExactMB",
            Algorithm::ExactMB {
                algo: PathAlgo::Spfa,
            } => "ExactMB-SPFA",
            Algorithm::GreedyMB => "GreedyMB",
            Algorithm::LocalSearch { .. } => "LocalSearch",
            Algorithm::QualityOnly => "QualityOnly",
            Algorithm::WorkerOnly => "WorkerOnly",
            Algorithm::Random { .. } => "Random",
            Algorithm::Cardinality => "Cardinality",
            Algorithm::Stable => "Stable",
        }
    }

    /// Whether this algorithm runs a full min-cost-flow solve (the exact
    /// solvers share the same super-linear scaling cliff, so experiment
    /// grids gate all of them together above a size cutoff).
    pub fn is_exact_flow(&self) -> bool {
        matches!(
            self,
            Algorithm::ExactMB { .. } | Algorithm::QualityOnly | Algorithm::WorkerOnly
        )
    }

    /// The default comparison set of the experiments (deterministic seeds).
    pub fn comparison_set() -> Vec<Algorithm> {
        vec![
            Algorithm::ExactMB {
                algo: PathAlgo::Dijkstra,
            },
            Algorithm::GreedyMB,
            Algorithm::LocalSearch { max_passes: 8 },
            Algorithm::QualityOnly,
            Algorithm::WorkerOnly,
            Algorithm::Random { seed: 0xD1CE },
            Algorithm::Cardinality,
            Algorithm::Stable,
        ]
    }
}

/// Solves the assignment problem on `g` under `combiner` with `algorithm`.
///
/// The returned matching is always feasible for `g`; its *quality* under the
/// mutual objective is what [`crate::evaluate`] measures.
///
/// # Example
/// ```
/// use mbta_core::algorithms::{solve, Algorithm};
/// use mbta_graph::random::from_edges;
/// use mbta_market::Combiner;
///
/// // Two workers, two tasks; the off-diagonal pairing wins in total.
/// let g = from_edges(
///     &[1, 1],
///     &[1, 1],
///     &[(0, 0, 0.9, 0.9), (0, 1, 0.8, 0.8), (1, 0, 0.7, 0.7)],
/// );
/// let m = solve(&g, Combiner::balanced(), Algorithm::GreedyMB);
/// assert!(m.validate(&g).is_ok());
/// ```
pub fn solve(g: &BipartiteGraph, combiner: Combiner, algorithm: Algorithm) -> Matching {
    match algorithm {
        Algorithm::ExactMB { algo } => {
            let w = edge_weights(g, combiner);
            max_weight_bmatching(g, &w, FlowMode::FreeCardinality, algo).0
        }
        Algorithm::GreedyMB => {
            let w = edge_weights(g, combiner);
            greedy_bmatching(g, &w, 0.0)
        }
        Algorithm::LocalSearch { max_passes } => {
            let w = edge_weights(g, combiner);
            let start = greedy_bmatching(g, &w, 0.0);
            local_search(g, &w, start, max_passes).0
        }
        Algorithm::QualityOnly => {
            let w: Vec<f64> = g.edges().map(|e| g.rb(e)).collect();
            max_weight_bmatching(g, &w, FlowMode::FreeCardinality, PathAlgo::Dijkstra).0
        }
        Algorithm::WorkerOnly => {
            let w: Vec<f64> = g.edges().map(|e| g.wb(e)).collect();
            max_weight_bmatching(g, &w, FlowMode::FreeCardinality, PathAlgo::Dijkstra).0
        }
        Algorithm::Random { seed } => random_maximal(g, seed),
        Algorithm::Cardinality => max_cardinality_bmatching(g),
        Algorithm::Stable => deferred_acceptance(g),
    }
}

/// Random maximal feasible assignment: shuffle the edge list, take whatever
/// fits. The "no assignment intelligence at all" reference point.
pub fn random_maximal(g: &BipartiteGraph, seed: u64) -> Matching {
    let mut rng = SplitMix64::new(seed);
    let mut order: Vec<u32> = (0..g.n_edges() as u32).collect();
    rng.shuffle(&mut order);
    let mut w_rem = g.capacities().to_vec();
    let mut t_rem = g.demands().to_vec();
    let mut chosen = Vec::new();
    for eid in order {
        let e = EdgeId::new(eid);
        let w = g.worker_of(e).index();
        let t = g.task_of(e).index();
        if w_rem[w] > 0 && t_rem[t] > 0 {
            w_rem[w] -= 1;
            t_rem[t] -= 1;
            chosen.push(e);
        }
    }
    Matching::from_edges(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::{random_bipartite, RandomGraphSpec};
    use mbta_market::benefit::edge_weights;

    fn instance(seed: u64) -> BipartiteGraph {
        random_bipartite(
            &RandomGraphSpec {
                n_workers: 60,
                n_tasks: 40,
                avg_degree: 6.0,
                capacity: 2,
                demand: 2,
            },
            seed,
        )
    }

    #[test]
    fn all_algorithms_produce_feasible_matchings() {
        let g = instance(1);
        for alg in Algorithm::comparison_set() {
            let m = solve(&g, Combiner::balanced(), alg);
            m.validate(&g)
                .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        }
    }

    #[test]
    fn exact_dominates_everything_on_the_mutual_objective() {
        for seed in 0..5 {
            let g = instance(seed);
            let combiner = Combiner::balanced();
            let w = edge_weights(&g, combiner);
            let exact = solve(
                &g,
                combiner,
                Algorithm::ExactMB {
                    algo: PathAlgo::Dijkstra,
                },
            );
            let best = exact.total_weight(&w);
            for alg in Algorithm::comparison_set() {
                let m = solve(&g, combiner, alg);
                assert!(
                    m.total_weight(&w) <= best + 1e-6,
                    "seed {seed}: {} beat ExactMB",
                    alg.name()
                );
            }
        }
    }

    #[test]
    fn quality_only_wins_on_rb_but_not_on_mb() {
        let g = instance(7);
        let rb: Vec<f64> = g.edges().map(|e| g.rb(e)).collect();
        let q = solve(&g, Combiner::balanced(), Algorithm::QualityOnly);
        let e = solve(
            &g,
            Combiner::balanced(),
            Algorithm::ExactMB {
                algo: PathAlgo::Dijkstra,
            },
        );
        // QualityOnly is by construction optimal for Σrb.
        assert!(q.total_weight(&rb) >= e.total_weight(&rb) - 1e-6);
    }

    #[test]
    fn local_search_at_least_matches_greedy() {
        for seed in 0..5 {
            let g = instance(seed + 20);
            let c = Combiner::Harmonic;
            let w = edge_weights(&g, c);
            let greedy = solve(&g, c, Algorithm::GreedyMB);
            let ls = solve(&g, c, Algorithm::LocalSearch { max_passes: 8 });
            assert!(
                ls.total_weight(&w) >= greedy.total_weight(&w) - 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn cardinality_maximizes_count() {
        let g = instance(3);
        let card = solve(&g, Combiner::balanced(), Algorithm::Cardinality);
        for alg in Algorithm::comparison_set() {
            let m = solve(&g, Combiner::balanced(), alg);
            assert!(
                m.len() <= card.len(),
                "{} exceeded max cardinality",
                alg.name()
            );
        }
    }

    #[test]
    fn random_is_deterministic_in_seed_and_maximal() {
        let g = instance(4);
        let a = random_maximal(&g, 9);
        let b = random_maximal(&g, 9);
        assert_eq!(a, b);
        // Maximality: no remaining edge fits.
        let w_load = a.worker_loads(&g);
        let t_load = a.task_loads(&g);
        let mut in_m = vec![false; g.n_edges()];
        for &e in &a.edges {
            in_m[e.index()] = true;
        }
        for e in g.edges() {
            if !in_m[e.index()] {
                let w = g.worker_of(e);
                let t = g.task_of(e);
                assert!(
                    w_load[w.index()] == g.capacity(w) || t_load[t.index()] == g.demand(t),
                    "edge {e} could still be added"
                );
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = Algorithm::comparison_set()
            .iter()
            .map(|a| a.name())
            .collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
