//! MB-MaxMin: the egalitarian variant (bottleneck b-matching).
//!
//! Among maximum-cardinality assignments, maximize the *minimum* per-edge
//! mutual benefit — no participant pair should be stuck with a miserable
//! match just to pad the total. This is the bottleneck assignment problem
//! generalized to b-matchings, and it is solvable exactly:
//!
//! 1. compute the unconstrained maximum cardinality `C*` (max flow);
//! 2. binary-search the largest threshold `τ` (over the sorted distinct
//!    edge weights) such that using only edges with `mb ≥ τ` still admits a
//!    matching of size `C*`;
//! 3. return that matching.
//!
//! Each feasibility probe is one unit-capacity max flow, so the exact
//! algorithm runs in `O(E·√V · log E)`. The greedy heuristic (just take
//! `GreedyMB` and report its min edge) is the comparison point in
//! experiment F8 — it is usually far from the egalitarian optimum because
//! maximizing the sum happily includes one terrible edge.

use mbta_graph::BipartiteGraph;
use mbta_market::benefit::edge_weights;
use mbta_market::Combiner;
use mbta_matching::dinic::{max_cardinality_masked, max_matching_masked};
use mbta_matching::Matching;

/// Result of the exact bottleneck solve.
#[derive(Debug, Clone)]
pub struct MaxMinResult {
    /// The bottleneck-optimal matching.
    pub matching: Matching,
    /// Its cardinality (equals the unconstrained maximum).
    pub cardinality: usize,
    /// The optimal bottleneck value: the largest `τ` such that a
    /// `C*`-matching exists using only edges with weight `≥ τ`.
    /// `1.0` when the graph admits no edges at all.
    pub bottleneck: f64,
    /// Feasibility probes performed (binary-search iterations).
    pub probes: u32,
}

/// Exact MB-MaxMin via threshold search over the sorted edge weights.
pub fn maxmin_bmatching(g: &BipartiteGraph, combiner: Combiner) -> MaxMinResult {
    let weights = edge_weights(g, combiner);
    maxmin_with_weights(g, &weights)
}

/// Exact bottleneck b-matching for explicit weights.
///
/// # Example
/// ```
/// use mbta_core::maxmin::maxmin_with_weights;
/// use mbta_graph::random::from_edges;
///
/// // Both perfect matchings exist; the bottleneck solver prefers the one
/// // whose worst edge is better (0.6 over 0.5), even though the other has
/// // the larger sum.
/// let g = from_edges(
///     &[1, 1],
///     &[1, 1],
///     &[(0, 0, 0.7, 0.7), (0, 1, 0.5, 0.5), (1, 0, 0.9, 0.9), (1, 1, 0.6, 0.6)],
/// );
/// let w: Vec<f64> = g.edges().map(|e| g.rb(e)).collect();
/// let r = maxmin_with_weights(&g, &w);
/// assert_eq!(r.cardinality, 2);
/// assert!((r.bottleneck - 0.6).abs() < 1e-12);
/// ```
pub fn maxmin_with_weights(g: &BipartiteGraph, weights: &[f64]) -> MaxMinResult {
    assert_eq!(weights.len(), g.n_edges(), "weight slice length mismatch");
    let m = g.n_edges();
    if m == 0 {
        return MaxMinResult {
            matching: Matching::empty(),
            cardinality: 0,
            bottleneck: 1.0,
            probes: 0,
        };
    }

    // Distinct weights ascending; candidate thresholds.
    let mut levels: Vec<f64> = weights.to_vec();
    levels.sort_unstable_by(|a, b| a.partial_cmp(b).expect("weights are finite"));
    levels.dedup();

    let all_mask = vec![true; m];
    let target = max_cardinality_masked(g, &all_mask);
    let mut probes = 1u32; // the unconstrained probe above
    if target == 0 {
        return MaxMinResult {
            matching: Matching::empty(),
            cardinality: 0,
            bottleneck: 1.0,
            probes,
        };
    }

    // Invariant: feasible(levels[lo]), and hi (if any) is the first known
    // infeasible index. levels[0] uses every edge ⇒ feasible.
    let mut lo = 0usize;
    let mut hi = levels.len(); // exclusive
                               // Binary search for the largest feasible threshold index.
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        let tau = levels[mid];
        let mask: Vec<bool> = weights.iter().map(|&w| w >= tau).collect();
        probes += 1;
        if max_cardinality_masked(g, &mask) == target {
            lo = mid;
        } else {
            hi = mid;
        }
    }

    let tau = levels[lo];
    let mask: Vec<bool> = weights.iter().map(|&w| w >= tau).collect();
    let matching = max_matching_masked(g, &mask);
    debug_assert_eq!(matching.len() as u64, target);
    MaxMinResult {
        cardinality: matching.len(),
        matching,
        bottleneck: tau,
        probes,
    }
}

/// Minimum edge weight of a matching (`1.0` when empty) — the quantity the
/// bottleneck objective maximizes; used to score heuristics in F8.
pub fn min_edge_weight(m: &Matching, weights: &[f64]) -> f64 {
    m.edges
        .iter()
        .map(|e| weights[e.index()])
        .fold(1.0f64, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::{from_edges, random_bipartite, RandomGraphSpec};
    use mbta_matching::greedy::greedy_bmatching;

    #[test]
    fn picks_the_bottleneck_optimal_matching() {
        // Two perfect matchings: diagonal (min .6) and anti-diagonal
        // (min .5). Sum prefers anti-diagonal (0.5 + 0.9 = 1.4 > 1.3);
        // bottleneck must prefer the diagonal.
        let g = from_edges(
            &[1, 1],
            &[1, 1],
            &[
                (0, 0, 0.7, 0.7),
                (0, 1, 0.5, 0.5),
                (1, 0, 0.9, 0.9),
                (1, 1, 0.6, 0.6),
            ],
        );
        let w: Vec<f64> = g.edges().map(|e| g.rb(e)).collect();
        let r = maxmin_with_weights(&g, &w);
        r.matching.validate(&g).unwrap();
        assert_eq!(r.cardinality, 2);
        assert!((r.bottleneck - 0.6).abs() < 1e-12);
        assert!((min_edge_weight(&r.matching, &w) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn cardinality_never_sacrificed() {
        // Dropping the bad edge would raise the min, but cardinality rules.
        let g = from_edges(&[1, 1], &[1, 1], &[(0, 0, 0.9, 0.9), (1, 1, 0.1, 0.1)]);
        let w: Vec<f64> = g.edges().map(|e| g.rb(e)).collect();
        let r = maxmin_with_weights(&g, &w);
        assert_eq!(r.cardinality, 2);
        assert!((r.bottleneck - 0.1).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_is_truly_optimal_randomized() {
        // Exhaustively verify against all thresholds on small instances.
        for seed in 0..10 {
            let g = random_bipartite(
                &RandomGraphSpec {
                    n_workers: 12,
                    n_tasks: 8,
                    avg_degree: 4.0,
                    capacity: 1,
                    demand: 2,
                },
                seed,
            );
            let w: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
            let r = maxmin_with_weights(&g, &w);
            r.matching.validate(&g).unwrap();
            // (a) achieves its claimed bottleneck;
            assert!(min_edge_weight(&r.matching, &w) >= r.bottleneck - 1e-12);
            // (b) no strictly higher distinct threshold stays feasible.
            let target = r.cardinality as u64;
            for &tau in w.iter() {
                if tau > r.bottleneck + 1e-12 {
                    let mask: Vec<bool> = w.iter().map(|&x| x >= tau).collect();
                    assert!(
                        mbta_matching::dinic::max_cardinality_masked(&g, &mask) < target,
                        "seed {seed}: threshold {tau} > {} still feasible",
                        r.bottleneck
                    );
                }
            }
        }
    }

    #[test]
    fn beats_greedy_on_the_bottleneck_metric() {
        let mut wins = 0;
        for seed in 0..10 {
            let g = random_bipartite(
                &RandomGraphSpec {
                    n_workers: 30,
                    n_tasks: 20,
                    avg_degree: 5.0,
                    capacity: 1,
                    demand: 1,
                },
                seed,
            );
            let w: Vec<f64> = g.edges().map(|e| g.wb(e)).collect();
            let r = maxmin_with_weights(&g, &w);
            let greedy = greedy_bmatching(&g, &w, -1.0);
            // Compare at equal cardinality only (greedy may be smaller).
            if greedy.len() == r.cardinality {
                let gm = min_edge_weight(&greedy, &w);
                assert!(r.bottleneck >= gm - 1e-12, "seed {seed}");
                if r.bottleneck > gm + 1e-9 {
                    wins += 1;
                }
            }
        }
        assert!(
            wins >= 2,
            "exact should strictly beat greedy sometimes, wins={wins}"
        );
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = from_edges(&[], &[], &[]);
        let r = maxmin_with_weights(&g, &[]);
        assert_eq!(r.cardinality, 0);
        assert_eq!(r.bottleneck, 1.0);

        let g = from_edges(&[1], &[1], &[]);
        let r = maxmin_bmatching(&g, Combiner::balanced());
        assert_eq!(r.cardinality, 0);
    }

    #[test]
    fn uniform_weights_trivial_search() {
        let g = from_edges(&[1, 1], &[1, 1], &[(0, 0, 0.5, 0.5), (1, 1, 0.5, 0.5)]);
        let w = vec![0.5; 2];
        let r = maxmin_with_weights(&g, &w);
        assert_eq!(r.cardinality, 2);
        assert!((r.bottleneck - 0.5).abs() < 1e-12);
        // One distinct level ⇒ only the unconstrained probe.
        assert_eq!(r.probes, 1);
    }
}
