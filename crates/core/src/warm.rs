//! Warm-started exact re-solves for long-lived shard states.
//!
//! The online dispatch path keeps an [`crate::incremental::IncrementalAssignment`]
//! per shard and occasionally needs an exact re-solve (the drift
//! fallback). Rebuilding the flow network from scratch there wastes the
//! one thing a long-lived shard has plenty of: prior state.
//! [`WarmSolver`] owns an [`mbta_matching::warm::WarmNet`] for the
//! shard's fixed topology and re-solves against drifting weights,
//! seeding each solve with the previous matching and carrying the node
//! potentials across calls. Telemetry
//! (`mbta_core_warm_solves_total` / `mbta_core_warm_hits_total` /
//! `mbta_core_warm_audited_cold_total`) records how often the warm
//! state survives.
//!
//! The returned matching is filtered to strictly positive weights
//! before it is handed back, so it can always be adopted by
//! [`crate::incremental::IncrementalAssignment::reseed`] (which rejects
//! edges on inactive endpoints; inactive endpoints read as weight 0
//! through [`crate::incremental::IncrementalAssignment::active_weights`]).

use mbta_graph::BipartiteGraph;
use mbta_matching::warm::{WarmNet, WarmStats};
use mbta_matching::Matching;
use mbta_util::SolveCtl;

/// Lifetime counters of one [`WarmSolver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmSolverStats {
    /// Exact re-solves performed.
    pub solves: u64,
    /// Solves that kept the seeded flow (pure warm or cycle-repaired).
    pub warm_hits: u64,
    /// Warm solves that the de-augmentation audit sent back to cold.
    pub audited_cold: u64,
    /// Total augmenting-path iterations across all solves.
    pub iterations: u64,
}

/// A reusable exact solver bound to one shard topology.
///
/// # Example
/// ```
/// use mbta_core::warm::WarmSolver;
/// use mbta_graph::random::from_edges;
/// use mbta_util::SolveCtl;
///
/// let g = from_edges(
///     &[1, 1],
///     &[1, 1],
///     &[(0, 0, 0.9, 0.9), (0, 1, 0.8, 0.8), (1, 0, 0.7, 0.7)],
/// );
/// let mut solver = WarmSolver::new(&g);
/// // First solve is cold; it picks the 0.8 + 0.7 pairing over the 0.9.
/// let m1 = solver.solve(&g, &[0.9, 0.8, 0.7], &SolveCtl::unlimited());
/// assert_eq!(m1.len(), 2);
/// // Drifted weights re-solve warm, seeded from the previous matching.
/// let m2 = solver.solve(&g, &[0.95, 0.79, 0.71], &SolveCtl::unlimited());
/// assert_eq!(m2.len(), 2);
/// assert!(solver.stats().warm_hits >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct WarmSolver {
    net: WarmNet,
    prev: Matching,
    stats: WarmSolverStats,
}

impl WarmSolver {
    /// Builds the solver for `g`'s topology (done once per shard per
    /// plan epoch; the graph must not change shape afterwards).
    pub fn new(g: &BipartiteGraph) -> WarmSolver {
        WarmSolver {
            net: WarmNet::new(g),
            prev: Matching::empty(),
            stats: WarmSolverStats::default(),
        }
    }

    /// Seeds the carried matching (e.g. the shard's current incremental
    /// assignment) without solving; the next [`WarmSolver::solve`] warm
    /// starts from it once potentials exist.
    pub fn seed(&mut self, m: Matching) {
        self.prev = m;
    }

    /// Discards all carried state; the next solve runs cold.
    pub fn invalidate(&mut self) {
        self.net.invalidate();
        self.prev = Matching::empty();
    }

    /// Exact free-cardinality maximum-weight matching under `weights`,
    /// warm-started when the carried state permits. The result is
    /// filtered to strictly positive weights (zero-weight edges encode
    /// inactive endpoints in the online path) and becomes the seed of
    /// the next call.
    pub fn solve(&mut self, g: &BipartiteGraph, weights: &[f64], ctl: &SolveCtl) -> Matching {
        let (m, stats) = self.net.solve(g, weights, &self.prev, ctl);
        self.record(&stats);
        let filtered = Matching::from_edges(
            m.edges
                .iter()
                .copied()
                .filter(|e| weights[e.index()] > 0.0)
                .collect(),
        );
        self.prev = filtered.clone();
        filtered
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WarmSolverStats {
        self.stats
    }

    fn record(&mut self, s: &WarmStats) {
        self.stats.solves += 1;
        self.stats.warm_hits += u64::from(s.warm);
        self.stats.audited_cold += u64::from(s.audited_cold);
        self.stats.iterations += s.iterations;
        mbta_telemetry::counter_add("mbta_core_warm_solves_total", 1);
        mbta_telemetry::counter_add("mbta_core_warm_hits_total", u64::from(s.warm));
        mbta_telemetry::counter_add(
            "mbta_core_warm_audited_cold_total",
            u64::from(s.audited_cold),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::{random_bipartite, RandomGraphSpec};
    use mbta_matching::mcmf::{max_weight_bmatching, FlowMode, PathAlgo};

    #[test]
    fn warm_solver_tracks_cold_objective_through_drift() {
        let g = random_bipartite(
            &RandomGraphSpec {
                n_workers: 60,
                n_tasks: 40,
                avg_degree: 6.0,
                capacity: 2,
                demand: 2,
            },
            11,
        );
        let mut w: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
        let mut solver = WarmSolver::new(&g);
        for round in 0..8u64 {
            let m = solver.solve(&g, &w, &SolveCtl::unlimited());
            m.validate(&g).unwrap();
            let (cold, _) =
                max_weight_bmatching(&g, &w, FlowMode::FreeCardinality, PathAlgo::Dijkstra);
            assert!(
                (m.total_weight(&w) - cold.total_weight(&w)).abs() < 1e-6,
                "round {round}: warm {} vs cold {}",
                m.total_weight(&w),
                cold.total_weight(&w)
            );
            // Deterministic small drift.
            for (i, wt) in w.iter_mut().enumerate() {
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(round);
                let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
                *wt = (*wt * (0.96 + 0.08 * unit)).clamp(0.0, 1.0);
            }
        }
        let s = solver.stats();
        assert_eq!(s.solves, 8);
        assert!(s.warm_hits >= 1, "no warm hit across 8 drift rounds: {s:?}");
    }

    #[test]
    fn zero_weight_edges_are_filtered_for_reseed() {
        use crate::incremental::IncrementalAssignment;
        use mbta_graph::random::from_edges;
        use mbta_graph::WorkerId;
        let g = from_edges(&[1, 1], &[1, 1], &[(0, 0, 0.9, 0.9), (1, 1, 0.5, 0.5)]);
        let mut inc = IncrementalAssignment::new(&g, vec![0.9, 0.5]);
        inc.deactivate_worker(WorkerId::new(1));
        // Active-subgraph weights zero out the deactivated worker's edge.
        let aw = inc.active_weights();
        assert_eq!(aw, vec![0.9, 0.0]);
        let mut solver = WarmSolver::new(&g);
        let m = solver.solve(&g, &aw, &SolveCtl::unlimited());
        // The filtered result must be adoptable despite the inactive node.
        inc.reseed(&m).unwrap();
        inc.check_invariants();
        assert_eq!(inc.len(), 1);
    }

    #[test]
    fn invalidate_forces_cold() {
        let g = random_bipartite(&RandomGraphSpec::default(), 3);
        let w: Vec<f64> = g.edges().map(|e| g.rb(e)).collect();
        let mut solver = WarmSolver::new(&g);
        solver.solve(&g, &w, &SolveCtl::unlimited());
        solver.invalidate();
        solver.solve(&g, &w, &SolveCtl::unlimited());
        assert_eq!(solver.stats().warm_hits, 0, "cold after invalidate");
    }
}
