//! The requester/worker welfare trade-off: λ-sweep Pareto frontier and the
//! balance-constrained variant (MB-Balance).
//!
//! Sweeping `λ` in `Linear(λ)` and solving each point exactly traces the
//! achievable `(Σrb, Σwb)` frontier — experiment F5's curve. The
//! balance-constrained problem "maximize total benefit subject to the
//! workers getting at least a `β` share" is then answered from the same
//! sweep: among frontier points satisfying the constraint, take the one
//! with the largest total. (This is the Lagrangian/scalarization approach;
//! it finds a point on the convex hull of the feasible region, which is the
//! standard practical treatment of such bi-criteria assignment problems.)

use crate::algorithms::{solve, Algorithm};
use mbta_graph::BipartiteGraph;
use mbta_market::Combiner;
use mbta_matching::mcmf::PathAlgo;
use mbta_matching::Matching;

/// One point on the λ-sweep frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Requester weight λ used for this point.
    pub lambda: f64,
    /// Σ requester benefit of the optimal matching at this λ.
    pub total_rb: f64,
    /// Σ worker benefit of the optimal matching at this λ.
    pub total_wb: f64,
    /// Assignment cardinality at this λ.
    pub cardinality: usize,
    /// The matching itself.
    pub matching: Matching,
}

impl FrontierPoint {
    /// Total two-sided welfare `Σrb + Σwb` of this point.
    pub fn total_welfare(&self) -> f64 {
        self.total_rb + self.total_wb
    }

    /// Worker share of the welfare, in `[0,1]` (0.5 when empty).
    pub fn worker_share(&self) -> f64 {
        let total = self.total_welfare();
        if total == 0.0 {
            0.5
        } else {
            self.total_wb / total
        }
    }
}

/// Solves `ExactMB` under `Linear(λ)` for each λ in `lambdas` and reports
/// the per-side welfare of each optimum.
pub fn lambda_sweep(g: &BipartiteGraph, lambdas: &[f64]) -> Vec<FrontierPoint> {
    lambdas
        .iter()
        .map(|&lambda| {
            assert!(
                (0.0..=1.0).contains(&lambda),
                "lambda out of range: {lambda}"
            );
            let m = solve(
                g,
                Combiner::Linear { lambda },
                Algorithm::ExactMB {
                    algo: PathAlgo::Dijkstra,
                },
            );
            let (mut rb, mut wb) = (0.0, 0.0);
            for &e in &m.edges {
                rb += g.rb(e);
                wb += g.wb(e);
            }
            FrontierPoint {
                lambda,
                total_rb: rb,
                total_wb: wb,
                cardinality: m.len(),
                matching: m,
            }
        })
        .collect()
}

/// The default λ grid of the evaluation: `0.0, 0.1, …, 1.0`.
pub fn default_lambda_grid() -> Vec<f64> {
    (0..=10).map(|i| f64::from(i) / 10.0).collect()
}

/// MB-Balance: maximize total welfare subject to the workers receiving at
/// least a `beta` share of it. Returns the best frontier point satisfying
/// the constraint, or `None` when no sweep point does.
pub fn balance_constrained(
    g: &BipartiteGraph,
    beta: f64,
    lambdas: &[f64],
) -> Option<FrontierPoint> {
    assert!((0.0..=1.0).contains(&beta), "beta out of range: {beta}");
    lambda_sweep(g, lambdas)
        .into_iter()
        .filter(|p| p.worker_share() >= beta - 1e-12)
        .max_by(|a, b| {
            a.total_welfare()
                .partial_cmp(&b.total_welfare())
                .expect("welfare is finite")
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::{from_edges, random_bipartite, RandomGraphSpec};

    fn instance(seed: u64) -> BipartiteGraph {
        random_bipartite(
            &RandomGraphSpec {
                n_workers: 40,
                n_tasks: 30,
                avg_degree: 5.0,
                capacity: 2,
                demand: 2,
            },
            seed,
        )
    }

    #[test]
    fn sweep_endpoints_are_the_single_sided_baselines() {
        let g = instance(1);
        let pts = lambda_sweep(&g, &[0.0, 1.0]);
        // λ = 1 maximizes rb: nothing on the sweep can beat its Σrb.
        // λ = 0 maximizes wb.
        assert!(pts[1].total_rb >= pts[0].total_rb - 1e-9);
        assert!(pts[0].total_wb >= pts[1].total_wb - 1e-9);
    }

    #[test]
    fn frontier_is_monotone_in_lambda() {
        let g = instance(2);
        let pts = lambda_sweep(&g, &default_lambda_grid());
        // As λ grows, the optimum trades worker benefit for requester
        // benefit: Σrb non-decreasing, Σwb non-increasing (up to epsilon —
        // exact scalarization optima are monotone along the hull).
        for w in pts.windows(2) {
            assert!(
                w[1].total_rb >= w[0].total_rb - 1e-6,
                "rb dropped at λ={}",
                w[1].lambda
            );
            assert!(
                w[1].total_wb <= w[0].total_wb + 1e-6,
                "wb rose at λ={}",
                w[1].lambda
            );
        }
    }

    #[test]
    fn balance_constraint_selects_feasible_best() {
        let g = instance(3);
        let grid = default_lambda_grid();
        // β = 0 is unconstrained: picks the welfare-maximal sweep point,
        // which is the λ = 0.5 scalarization (maximizes rb + wb directly).
        let free = balance_constrained(&g, 0.0, &grid).unwrap();
        let half = &lambda_sweep(&g, &[0.5])[0];
        assert!((free.total_welfare() - half.total_welfare()).abs() < 1e-6);

        // A strict worker-share floor can only lower total welfare.
        let strict = balance_constrained(&g, 0.55, &grid);
        if let Some(p) = strict {
            assert!(p.worker_share() >= 0.55 - 1e-9);
            assert!(p.total_welfare() <= free.total_welfare() + 1e-9);
        }
    }

    #[test]
    fn impossible_balance_returns_none() {
        // Worker benefit is 0 on every edge: a 90% worker share is
        // unachievable (share is 0 whenever anything is assigned).
        let g = from_edges(&[1], &[1], &[(0, 0, 0.9, 0.0)]);
        assert!(balance_constrained(&g, 0.9, &default_lambda_grid()).is_none());
    }

    #[test]
    fn empty_graph_sweep() {
        let g = from_edges(&[], &[], &[]);
        let pts = lambda_sweep(&g, &[0.0, 0.5, 1.0]);
        assert!(pts
            .iter()
            .all(|p| p.cardinality == 0 && p.total_welfare() == 0.0));
        assert_eq!(pts[0].worker_share(), 0.5);
    }

    #[test]
    #[should_panic(expected = "lambda out of range")]
    fn lambda_range_checked() {
        lambda_sweep(&instance(4), &[1.5]);
    }
}
