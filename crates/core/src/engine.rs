//! Fault-tolerant solver engine: validated inputs, deadline budgets, and a
//! graceful-degradation fallback chain.
//!
//! The experiment harness can afford to panic on a malformed instance; a
//! serving system cannot. [`solve_robust`] is the boundary where untrusted
//! inputs (poisoned weights, degenerate graphs) and unbounded solver
//! runtimes are turned into typed errors and tiered-quality answers:
//!
//! 1. **Validation** — every weight must be finite and non-negative, the
//!    weight slice must cover every edge, and the graph must have workers,
//!    tasks, and assignable capacity. Violations return [`EngineError`]
//!    instead of panicking deep inside a solver (`benefit_to_profit`
//!    asserts on NaN, sort comparators used to).
//! 2. **Budgets** — an optional wall-clock [`Deadline`] and an optional
//!    [`CancelToken`] are threaded into every solver inner loop via
//!    [`SolveCtl`], so even the exact min-cost-flow solve is interruptible.
//! 3. **Degradation** — the chain runs cheapest-first (greedy → local
//!    search → exact), so a feasible floor exists almost immediately and
//!    each stage can only improve on it. The result is tagged with the
//!    [`QualityTier`] actually achieved.
//!
//! # Tier semantics and monotonicity
//!
//! * [`QualityTier::Exact`] — the exact solver ran to completion; the
//!   matching maximizes total weight (up to fixed-point rounding).
//! * [`QualityTier::Approximate`] — local search converged (or exhausted
//!   its pass budget) without interruption; the matching is at least the
//!   greedy ½-approximation and usually much closer to optimal.
//! * [`QualityTier::Degraded`] — only the greedy floor (plus whatever
//!   prefix of local search fit in the budget) was achieved.
//!
//! Because every stage is deterministic and only ever *improves* the
//! incumbent (local search is monotone; an interrupted stage's output is a
//! prefix of the completed stage's trajectory), tiers are monotone in
//! value on a fixed instance: any `Degraded` answer ≤ the `Approximate`
//! answer ≤ the `Exact` answer (up to fixed-point rounding of the exact
//! objective). The returned matching always passes
//! [`Matching::validate`] — this is asserted before returning.

use mbta_graph::BipartiteGraph;
use mbta_matching::greedy::greedy_bmatching;
use mbta_matching::local_search::local_search_ctl;
use mbta_matching::mcmf::{max_weight_bmatching_ctl, FlowMode, PathAlgo};
use mbta_matching::Matching;
use mbta_util::{CancelToken, Deadline, SolveCtl};
use std::fmt;
use std::time::{Duration, Instant};

/// Why the engine refused to solve an instance.
///
/// These are *input* errors: the engine returns them instead of letting a
/// solver panic (or silently compute garbage) on malformed data. Budget
/// exhaustion is **not** an error — it degrades the [`QualityTier`].
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The weight slice does not cover every edge of the graph.
    WeightLenMismatch {
        /// Number of edges in the graph.
        expected: usize,
        /// Length of the supplied weight slice.
        got: usize,
    },
    /// A weight is NaN or ±infinity.
    NonFiniteWeight {
        /// The offending edge (raw id).
        edge: u32,
        /// The offending value.
        weight: f64,
    },
    /// A weight is negative (benefits live in `[0, 1]`; a negative weight
    /// is an upstream modeling bug, not a skippable edge).
    NegativeWeight {
        /// The offending edge (raw id).
        edge: u32,
        /// The offending value.
        weight: f64,
    },
    /// The graph has no workers or no tasks — there is no market to match.
    EmptyGraph {
        /// Worker count.
        workers: usize,
        /// Task count.
        tasks: usize,
    },
    /// No edge can ever be assigned: the eligibility graph has no edges,
    /// or every worker capacity / task demand is zero (the latter is
    /// impossible for `GraphBuilder`-built graphs, which reject zero
    /// capacities, but is kept as defense-in-depth for graphs arriving
    /// from other constructors such as deserialization).
    NoAssignableCapacity,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EngineError::WeightLenMismatch { expected, got } => {
                write!(f, "weight slice length {got} != edge count {expected}")
            }
            EngineError::NonFiniteWeight { edge, weight } => {
                write!(f, "edge {edge} has non-finite weight {weight}")
            }
            EngineError::NegativeWeight { edge, weight } => {
                write!(f, "edge {edge} has negative weight {weight}")
            }
            EngineError::EmptyGraph { workers, tasks } => {
                write!(f, "empty market: {workers} workers x {tasks} tasks")
            }
            EngineError::NoAssignableCapacity => {
                write!(f, "degenerate market: no assignable capacity on one side")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The quality level a budgeted solve actually achieved.
///
/// Ordered: `Degraded < Approximate < Exact`, matching the value ordering
/// of the answers on a fixed instance (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QualityTier {
    /// Only the greedy floor (possibly plus a partial local-search prefix)
    /// fit in the budget.
    Degraded,
    /// Local search completed; the exact solve did not.
    Approximate,
    /// The exact solver ran to completion.
    Exact,
}

impl QualityTier {
    /// Short display name for tables and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            QualityTier::Degraded => "degraded",
            QualityTier::Approximate => "approximate",
            QualityTier::Exact => "exact",
        }
    }
}

impl fmt::Display for QualityTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Engine configuration: budgets plus fallback-chain knobs.
///
/// Built fluently; the default is the full degradation chain with no
/// budget. A relative budget (`with_deadline_ms`) is the common case;
/// an absolute one (`with_deadline_at`) is how several solves share one
/// batch budget:
///
/// ```
/// use mbta_core::engine::EngineConfig;
/// use mbta_util::Deadline;
///
/// let batch_deadline = Deadline::after_ms(50);
/// let cfg = EngineConfig::new()
///     .with_deadline_ms(10)                // ignored in favor of...
///     .with_deadline_at(batch_deadline);   // ...the shared absolute deadline
/// assert!(cfg.deadline_at.is_some());
/// assert!(!cfg.exact_only);
/// ```
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Wall-clock budget in milliseconds (measured from the start of
    /// [`solve_robust`]). `None` = unbounded. Ignored when [`deadline_at`]
    /// is set.
    ///
    /// [`deadline_at`]: EngineConfig::deadline_at
    pub deadline_ms: Option<u64>,
    /// Absolute wall-clock deadline, taking precedence over `deadline_ms`.
    /// This is how a batch dispatcher shares one budget across several
    /// solves (sequentially or concurrently): every shard races the same
    /// clock instant, so budget a fast shard leaves unused is automatically
    /// available to the shards still running.
    pub deadline_at: Option<Deadline>,
    /// External cancellation (e.g. the caller's request was dropped).
    pub cancel: Option<CancelToken>,
    /// When `false`, skip the heuristic floor and run the exact solver
    /// only; an interrupted exact solve then returns its feasible partial
    /// flow tagged `Degraded`. Defaults to `true` (run the full chain).
    pub exact_only: bool,
    /// Local-search pass budget (the chain's middle stage).
    pub max_passes: u32,
    /// Shortest-path strategy inside the exact flow solver.
    pub algo: PathAlgo,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineConfig {
    /// The default chain: fallback enabled, 8 local-search passes,
    /// Dijkstra, no budgets.
    pub fn new() -> Self {
        EngineConfig {
            deadline_ms: None,
            deadline_at: None,
            cancel: None,
            exact_only: false,
            max_passes: 8,
            algo: PathAlgo::Dijkstra,
        }
    }

    /// Sets a wall-clock budget in milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets an absolute wall-clock deadline (shared-budget solves; takes
    /// precedence over [`with_deadline_ms`](Self::with_deadline_ms)).
    pub fn with_deadline_at(mut self, deadline: Deadline) -> Self {
        self.deadline_at = Some(deadline);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Disables the heuristic fallback chain (exact solver only).
    pub fn exact_only(mut self) -> Self {
        self.exact_only = true;
        self
    }
}

/// A tier-tagged solve result.
#[derive(Debug, Clone)]
pub struct EngineSolution {
    /// The best feasible matching found within the budget. Always passes
    /// [`Matching::validate`] against the input graph.
    pub matching: Matching,
    /// The quality level achieved.
    pub tier: QualityTier,
    /// Total weight of `matching` under the input weights.
    pub value: f64,
    /// Whether the exact stage ran to completion.
    pub exact_completed: bool,
    /// Whether the local-search stage ran to completion (vacuously `false`
    /// in `exact_only` mode, where the stage is skipped).
    pub local_search_completed: bool,
    /// Wall-clock time the solve consumed.
    pub elapsed: Duration,
}

/// Validates engine inputs, returning the first problem found.
///
/// Exposed so callers (CLI, fault harness) can pre-check instances without
/// paying for a solve.
pub fn validate_inputs(g: &BipartiteGraph, weights: &[f64]) -> Result<(), EngineError> {
    if g.n_workers() == 0 || g.n_tasks() == 0 {
        return Err(EngineError::EmptyGraph {
            workers: g.n_workers(),
            tasks: g.n_tasks(),
        });
    }
    if g.n_edges() == 0
        || g.capacities().iter().all(|&c| c == 0)
        || g.demands().iter().all(|&d| d == 0)
    {
        return Err(EngineError::NoAssignableCapacity);
    }
    if weights.len() != g.n_edges() {
        return Err(EngineError::WeightLenMismatch {
            expected: g.n_edges(),
            got: weights.len(),
        });
    }
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() {
            return Err(EngineError::NonFiniteWeight {
                edge: i as u32,
                weight: w,
            });
        }
        if w < 0.0 {
            return Err(EngineError::NegativeWeight {
                edge: i as u32,
                weight: w,
            });
        }
    }
    Ok(())
}

/// Solves `g` under `weights` with validation, budgets, and graceful
/// degradation. See the module docs for the contract.
///
/// # Example
/// ```
/// use mbta_core::engine::{solve_robust, EngineConfig, QualityTier};
/// use mbta_graph::random::from_edges;
///
/// let g = from_edges(&[1, 1], &[1, 1], &[(0, 0, 0.9, 0.9), (1, 1, 0.5, 0.5)]);
/// let w = vec![0.9, 0.5];
/// let sol = solve_robust(&g, &w, &EngineConfig::new()).unwrap();
/// assert_eq!(sol.tier, QualityTier::Exact);
/// assert!((sol.value - 1.4).abs() < 1e-6);
/// sol.matching.validate(&g).unwrap();
/// ```
pub fn solve_robust(
    g: &BipartiteGraph,
    weights: &[f64],
    config: &EngineConfig,
) -> Result<EngineSolution, EngineError> {
    let start = Instant::now();
    let solve_span = mbta_telemetry::span!("mbta_core_engine_solve");
    {
        let _validate = mbta_telemetry::span!("mbta_core_engine_validate");
        if let Err(e) = validate_inputs(g, weights) {
            mbta_telemetry::counter_add("mbta_core_engine_rejects_total", 1);
            return Err(e);
        }
    }

    let mut ctl = SolveCtl::unlimited();
    if let Some(at) = config.deadline_at {
        ctl = ctl.with_deadline(at);
    } else if let Some(ms) = config.deadline_ms {
        ctl = ctl.with_deadline(Deadline::after_ms(ms));
    }
    if let Some(token) = &config.cancel {
        ctl = ctl.with_token(token.clone());
    }

    let solution = if config.exact_only {
        solve_exact_only(g, weights, config, &ctl, start)
    } else {
        solve_chain(g, weights, config, &ctl, start)
    };
    debug_assert!(solution.matching.validate(g).is_ok());
    solve_span.attr("edges", g.n_edges() as u64);
    mbta_telemetry::counter_add(tier_counter(solution.tier), 1);
    Ok(solution)
}

/// Static counter name for each quality tier (static so the per-solve hot
/// path allocates nothing).
fn tier_counter(tier: QualityTier) -> &'static str {
    match tier {
        QualityTier::Degraded => "mbta_core_engine_tier_total{tier=\"degraded\"}",
        QualityTier::Approximate => "mbta_core_engine_tier_total{tier=\"approximate\"}",
        QualityTier::Exact => "mbta_core_engine_tier_total{tier=\"exact\"}",
    }
}

/// Exact solver only; an interrupted solve returns its feasible partial
/// flow (the augmenting-path prefix) tagged `Degraded`.
fn solve_exact_only(
    g: &BipartiteGraph,
    weights: &[f64],
    config: &EngineConfig,
    ctl: &SolveCtl,
    start: Instant,
) -> EngineSolution {
    let _exact = mbta_telemetry::span!("mbta_core_engine_exact");
    let (m, _, completed) =
        max_weight_bmatching_ctl(g, weights, FlowMode::FreeCardinality, config.algo, ctl);
    EngineSolution {
        value: m.total_weight(weights),
        tier: if completed {
            QualityTier::Exact
        } else {
            QualityTier::Degraded
        },
        exact_completed: completed,
        local_search_completed: false,
        elapsed: start.elapsed(),
        matching: m,
    }
}

/// The full degradation chain, cheapest stage first.
fn solve_chain(
    g: &BipartiteGraph,
    weights: &[f64],
    config: &EngineConfig,
    ctl: &SolveCtl,
    start: Instant,
) -> EngineSolution {
    // Stage 1: greedy floor. Not interruptible, but O(m log m) — on any
    // instance where the exact solve could time out, greedy is noise.
    let mut best = {
        let _greedy = mbta_telemetry::span!("mbta_core_engine_greedy");
        greedy_bmatching(g, weights, 0.0)
    };
    let mut tier = QualityTier::Degraded;
    let mut ls_completed = false;
    let mut exact_completed = false;

    // Stage 2: local search from the greedy floor. Monotone: the result is
    // never lighter than `best`, even when interrupted mid-pass.
    if !ctl.stop_requested() {
        let _ls = mbta_telemetry::span!("mbta_core_engine_local_search");
        let (improved, _, completed) = local_search_ctl(g, weights, best, config.max_passes, ctl);
        best = improved;
        ls_completed = completed;
        if completed {
            tier = QualityTier::Approximate;
        }
    }

    // Stage 3: exact min-cost flow. Only adopt an interrupted partial flow
    // if it actually beats the incumbent — the prefix of an exact solve can
    // be far worse than converged local search.
    if !ctl.stop_requested() {
        let _exact = mbta_telemetry::span!("mbta_core_engine_exact");
        let (exact, _, completed) =
            max_weight_bmatching_ctl(g, weights, FlowMode::FreeCardinality, config.algo, ctl);
        if completed {
            best = exact;
            tier = QualityTier::Exact;
            exact_completed = true;
        } else if exact.total_weight(weights) > best.total_weight(weights) {
            best = exact;
        }
    }

    EngineSolution {
        value: best.total_weight(weights),
        tier,
        exact_completed,
        local_search_completed: ls_completed,
        elapsed: start.elapsed(),
        matching: best,
    }
}

// Thread-safety contract, checked at compile time: the service's solve
// pool moves configs and solutions across worker threads, so these types
// must stay `Send` (and the config `Sync`, since one immutable config can
// be shared by several concurrent solves).
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<EngineConfig>();
    assert_sync::<EngineConfig>();
    assert_send::<EngineSolution>();
    assert_send::<EngineError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::{from_edges, random_bipartite, RandomGraphSpec};
    use mbta_matching::mcmf::max_weight_bmatching;
    use mbta_util::fixed::objectives_close;

    fn instance(seed: u64) -> (BipartiteGraph, Vec<f64>) {
        let g = random_bipartite(
            &RandomGraphSpec {
                n_workers: 40,
                n_tasks: 30,
                avg_degree: 5.0,
                capacity: 2,
                demand: 2,
            },
            seed,
        );
        let w: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
        (g, w)
    }

    #[test]
    fn unbounded_solve_is_exact() {
        for seed in 0..5 {
            let (g, w) = instance(seed);
            let sol = solve_robust(&g, &w, &EngineConfig::new()).unwrap();
            assert_eq!(sol.tier, QualityTier::Exact);
            assert!(sol.exact_completed);
            sol.matching.validate(&g).unwrap();
            let (opt, _) =
                max_weight_bmatching(&g, &w, FlowMode::FreeCardinality, PathAlgo::Dijkstra);
            assert!(objectives_close(
                sol.value,
                opt.total_weight(&w),
                g.n_edges()
            ));
        }
    }

    #[test]
    fn validation_catches_each_error_class() {
        let g = from_edges(&[1, 1], &[1, 1], &[(0, 0, 0.5, 0.5), (1, 1, 0.5, 0.5)]);
        let cfg = EngineConfig::new();

        let err = solve_robust(&g, &[0.5], &cfg).unwrap_err();
        assert!(matches!(
            err,
            EngineError::WeightLenMismatch {
                expected: 2,
                got: 1
            }
        ));

        let err = solve_robust(&g, &[f64::NAN, 0.5], &cfg).unwrap_err();
        assert!(matches!(err, EngineError::NonFiniteWeight { edge: 0, .. }));

        let err = solve_robust(&g, &[0.5, f64::INFINITY], &cfg).unwrap_err();
        assert!(matches!(err, EngineError::NonFiniteWeight { edge: 1, .. }));

        let err = solve_robust(&g, &[0.5, -0.1], &cfg).unwrap_err();
        assert!(matches!(err, EngineError::NegativeWeight { edge: 1, .. }));

        let empty = from_edges(&[], &[], &[]);
        let err = solve_robust(&empty, &[], &cfg).unwrap_err();
        assert!(matches!(err, EngineError::EmptyGraph { .. }));

        let dead = from_edges(&[1, 1], &[1], &[]);
        let err = solve_robust(&dead, &[], &cfg).unwrap_err();
        assert!(matches!(err, EngineError::NoAssignableCapacity));
    }

    #[test]
    fn pre_cancelled_solve_degrades_to_greedy_floor() {
        let (g, w) = instance(7);
        let token = CancelToken::new();
        token.cancel();
        let cfg = EngineConfig::new().with_cancel(token);
        let sol = solve_robust(&g, &w, &cfg).unwrap();
        assert_eq!(sol.tier, QualityTier::Degraded);
        assert!(!sol.exact_completed);
        sol.matching.validate(&g).unwrap();
        // The floor is exactly greedy.
        let floor = greedy_bmatching(&g, &w, 0.0);
        assert!((sol.value - floor.total_weight(&w)).abs() < 1e-12);
    }

    #[test]
    fn tiers_are_value_monotone_on_a_fixed_instance() {
        for seed in 0..5 {
            let (g, w) = instance(seed + 100);
            let exact = solve_robust(&g, &w, &EngineConfig::new()).unwrap();
            assert_eq!(exact.tier, QualityTier::Exact);

            let token = CancelToken::new();
            token.cancel();
            let degraded = solve_robust(&g, &w, &EngineConfig::new().with_cancel(token)).unwrap();
            assert_eq!(degraded.tier, QualityTier::Degraded);

            // Tier ordering is value ordering (fixed-point tolerance).
            let tol = 1e-6 * g.n_edges() as f64;
            assert!(degraded.value <= exact.value + tol, "seed {seed}");
            assert!(QualityTier::Degraded < QualityTier::Approximate);
            assert!(QualityTier::Approximate < QualityTier::Exact);
        }
    }

    #[test]
    fn absolute_deadline_takes_precedence_and_shares_budget() {
        let (g, w) = instance(9);
        // An already-expired absolute deadline wins over a generous
        // relative one: the solve degrades instead of running for 10 s.
        let past = Deadline::after_ms(0);
        std::thread::sleep(Duration::from_millis(1));
        let cfg = EngineConfig::new()
            .with_deadline_ms(10_000)
            .with_deadline_at(past);
        let sol = solve_robust(&g, &w, &cfg).unwrap();
        assert!(sol.tier <= QualityTier::Approximate, "tier {}", sol.tier);
        assert!(!sol.exact_completed);
        sol.matching.validate(&g).unwrap();

        // A far-future absolute deadline is as good as unbounded here.
        let cfg = EngineConfig::new().with_deadline_at(Deadline::after_ms(3_600_000));
        let sol = solve_robust(&g, &w, &cfg).unwrap();
        assert_eq!(sol.tier, QualityTier::Exact);
    }

    #[test]
    fn zero_deadline_still_returns_a_valid_answer() {
        let (g, w) = instance(3);
        let cfg = EngineConfig::new().with_deadline_ms(0);
        let sol = solve_robust(&g, &w, &cfg).unwrap();
        sol.matching.validate(&g).unwrap();
        assert!(sol.tier <= QualityTier::Approximate, "tier {}", sol.tier);
    }

    #[test]
    fn fault_campaign_never_panics_and_always_validates() {
        // The PR's acceptance bar: >= 1000 fuzzed adversarial instances
        // through the engine; every outcome is either a typed rejection or
        // a matching that validates. Deadlines come from a cancellation
        // flood so budget plumbing is stressed at the same time.
        use mbta_workload::faults::{adversarial_instance, cancellation_flood};
        let flood = cancellation_flood(1200, 0xF100D);
        let (mut solved, mut rejected) = (0usize, 0usize);
        for (seed, plan) in (0u64..1200).zip(flood) {
            let inst = adversarial_instance(seed);
            let mut cfg = EngineConfig::new().with_deadline_ms(plan.deadline_ms);
            if plan.pre_cancelled {
                let token = CancelToken::new();
                token.cancel();
                cfg = cfg.with_cancel(token);
            }
            match solve_robust(&inst.graph, &inst.weights, &cfg) {
                Ok(sol) => {
                    sol.matching
                        .validate(&inst.graph)
                        .unwrap_or_else(|e| panic!("seed {seed}: invalid matching: {e}"));
                    assert!(sol.value.is_finite(), "seed {seed}: value {}", sol.value);
                    solved += 1;
                }
                Err(_) => rejected += 1, // typed rejection IS graceful handling
            }
        }
        // The campaign must actually exercise both paths.
        assert!(solved >= 300, "only {solved} solved");
        assert!(rejected >= 200, "only {rejected} rejected");
    }

    #[test]
    fn deadline_is_honored_via_tier_fallback() {
        // A 50 ms budget on a large instance: the engine must come back
        // quickly (generous wall-clock slack for CI) with a valid answer,
        // degrading the tier rather than blowing the budget.
        let g = random_bipartite(
            &RandomGraphSpec {
                n_workers: 2000,
                n_tasks: 1500,
                avg_degree: 12.0,
                capacity: 2,
                demand: 2,
            },
            42,
        );
        let w: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
        let cfg = EngineConfig::new().with_deadline_ms(50);
        let start = Instant::now();
        let sol = solve_robust(&g, &w, &cfg).unwrap();
        let elapsed = start.elapsed();
        sol.matching.validate(&g).unwrap();
        // Generous: deadline 50 ms, allow 2 s of slack for slow CI — the
        // point is that it does not run the multi-second exact solve to
        // completion when the budget is blown.
        assert!(
            elapsed < Duration::from_secs(2),
            "engine ignored its deadline: {elapsed:?}"
        );
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_records_tiers_phases_and_rejects() {
        let tier_exact =
            mbta_telemetry::global().counter("mbta_core_engine_tier_total{tier=\"exact\"}");
        let rejects = mbta_telemetry::global().counter("mbta_core_engine_rejects_total");
        let solve_ms = mbta_telemetry::global().histogram("mbta_core_engine_solve_ms");
        let exact_ms = mbta_telemetry::global().histogram("mbta_core_engine_exact_ms");
        let (t0, r0, s0, e0) = (
            tier_exact.get(),
            rejects.get(),
            solve_ms.count(),
            exact_ms.count(),
        );

        let (g, w) = instance(11);
        solve_robust(&g, &w, &EngineConfig::new()).unwrap();
        solve_robust(&g, &[0.5], &EngineConfig::new()).unwrap_err();

        // `>=`: other tests in this binary solve concurrently and bump the
        // same process-wide counters.
        assert!(tier_exact.get() > t0);
        assert!(rejects.get() > r0);
        // Two solve spans opened; the rejected one still times the attempt.
        assert!(solve_ms.count() >= s0 + 2);
        assert!(exact_ms.count() > e0);
    }

    #[test]
    fn exact_only_mode_skips_heuristics() {
        let (g, w) = instance(4);
        let sol = solve_robust(&g, &w, &EngineConfig::new().exact_only()).unwrap();
        assert_eq!(sol.tier, QualityTier::Exact);
        assert!(!sol.local_search_completed);

        let token = CancelToken::new();
        token.cancel();
        let cfg = EngineConfig::new().exact_only().with_cancel(token);
        let sol = solve_robust(&g, &w, &cfg).unwrap();
        assert_eq!(sol.tier, QualityTier::Degraded);
        sol.matching.validate(&g).unwrap();
    }
}
