//! Repeated rounds with load rotation — temporal fairness.
//!
//! A one-shot optimal assignment is fine; *repeating* it every round is
//! not: the same best-matched workers get all the work, everyone else
//! churns out of the market. This module runs the round loop with a
//! rotation policy: before each round, a worker's edge weights are
//! discounted by its cumulative past benefit relative to the pool, so the
//! optimizer spends its flexibility (cf. F5's flat frontier) on spreading
//! participation.
//!
//! Discount **\[R\]**: `w'_e = w_e / (1 + strength · load_ratio(worker))`
//! where `load_ratio = cumulative_benefit / mean_cumulative_benefit` —
//! scale-free, so early rounds (everyone at zero) are undistorted and the
//! discount pressure grows exactly on the workers pulling ahead.

use crate::algorithms::{solve, Algorithm};
use crate::evaluate::gini_coefficient;
use mbta_graph::BipartiteGraph;
use mbta_market::benefit::edge_weights;
use mbta_market::Combiner;
use mbta_matching::mcmf::PathAlgo;
use mbta_matching::Matching;

/// How each round's weights relate to cumulative load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RotationPolicy {
    /// No rotation: re-solve the same instance every round.
    Myopic,
    /// Discount a worker's edges by its relative cumulative benefit.
    LoadDiscount {
        /// Discount strength `≥ 0`; 0 degenerates to `Myopic`.
        strength: f64,
    },
}

/// Result of a repeated-round run.
#[derive(Debug, Clone)]
pub struct RotationResult {
    /// Per-round matchings, in order.
    pub rounds: Vec<Matching>,
    /// Total *undiscounted* mutual benefit over all rounds.
    pub total_welfare: f64,
    /// Per-worker cumulative worker benefit after the last round.
    pub cumulative_wb: Vec<f64>,
    /// Gini coefficient of `cumulative_wb` (all workers, including idle).
    pub cumulative_gini: f64,
    /// Number of workers assigned at least once across all rounds.
    pub workers_ever_used: usize,
}

/// Runs `rounds` assignment rounds on the same market under `policy`.
///
/// Each round solves `ExactMB` on the (possibly discounted) weights and
/// scores the result with the *true* weights — the discount is a steering
/// wheel, not a change of objective.
pub fn repeated_rounds(
    g: &BipartiteGraph,
    combiner: Combiner,
    policy: RotationPolicy,
    rounds: u32,
) -> RotationResult {
    if let RotationPolicy::LoadDiscount { strength } = policy {
        assert!(
            strength >= 0.0 && strength.is_finite(),
            "strength must be >= 0"
        );
    }
    let true_weights = edge_weights(g, combiner);
    let mut cumulative_wb = vec![0.0f64; g.n_workers()];
    let mut ever_used = vec![false; g.n_workers()];
    let mut total_welfare = 0.0;
    let mut out_rounds = Vec::with_capacity(rounds as usize);

    for _ in 0..rounds {
        let effective: Vec<f64> = match policy {
            RotationPolicy::Myopic => true_weights.clone(),
            RotationPolicy::LoadDiscount { strength } => {
                let mean = cumulative_wb.iter().sum::<f64>() / g.n_workers().max(1) as f64;
                if mean <= 0.0 {
                    true_weights.clone()
                } else {
                    g.edges()
                        .map(|e| {
                            let ratio = cumulative_wb[g.worker_of(e).index()] / mean;
                            true_weights[e.index()] / (1.0 + strength * ratio)
                        })
                        .collect()
                }
            }
        };
        // Solve on effective weights; account with true weights.
        let m = {
            // `solve` recomputes weights from the combiner, so go directly
            // to the substrate for the discounted round.
            mbta_matching::mcmf::max_weight_bmatching(
                g,
                &effective,
                mbta_matching::mcmf::FlowMode::FreeCardinality,
                PathAlgo::Dijkstra,
            )
            .0
        };
        for &e in &m.edges {
            total_welfare += true_weights[e.index()];
            let w = g.worker_of(e).index();
            cumulative_wb[w] += g.wb(e);
            ever_used[w] = true;
        }
        out_rounds.push(m);
    }

    RotationResult {
        rounds: out_rounds,
        total_welfare,
        cumulative_gini: gini_coefficient(&cumulative_wb),
        workers_ever_used: ever_used.iter().filter(|&&u| u).count(),
        cumulative_wb,
    }
}

/// Convenience: the myopic baseline is literally "solve once, repeat".
pub fn myopic_reference(g: &BipartiteGraph, combiner: Combiner, rounds: u32) -> RotationResult {
    let _ = solve(
        g,
        combiner,
        Algorithm::ExactMB {
            algo: PathAlgo::Dijkstra,
        },
    );
    repeated_rounds(g, combiner, RotationPolicy::Myopic, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::{from_edges, random_bipartite, RandomGraphSpec};

    fn scarce_instance(seed: u64) -> BipartiteGraph {
        // Many workers, few tasks: rotation has room to act.
        random_bipartite(
            &RandomGraphSpec {
                n_workers: 60,
                n_tasks: 10,
                avg_degree: 6.0,
                capacity: 1,
                demand: 1,
            },
            seed,
        )
    }

    #[test]
    fn myopic_repeats_the_same_matching() {
        let g = scarce_instance(1);
        let r = repeated_rounds(&g, Combiner::balanced(), RotationPolicy::Myopic, 4);
        assert_eq!(r.rounds.len(), 4);
        let mut first = r.rounds[0].clone();
        first.canonicalize();
        for m in &r.rounds[1..] {
            let mut m = m.clone();
            m.canonicalize();
            assert_eq!(m, first);
        }
        // Welfare is 4× the single-round optimum.
        assert!(
            (r.total_welfare / 4.0
                - r.rounds[0].total_weight(&mbta_market::benefit::edge_weights(
                    &g,
                    Combiner::balanced()
                )))
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn rotation_spreads_participation() {
        let g = scarce_instance(2);
        let myopic = repeated_rounds(&g, Combiner::balanced(), RotationPolicy::Myopic, 6);
        let rotated = repeated_rounds(
            &g,
            Combiner::balanced(),
            RotationPolicy::LoadDiscount { strength: 1.0 },
            6,
        );
        assert!(rotated.workers_ever_used >= myopic.workers_ever_used);
        assert!(rotated.cumulative_gini <= myopic.cumulative_gini + 1e-9);
        // And rotation never beats the myopic welfare (it solves a
        // distorted objective).
        assert!(rotated.total_welfare <= myopic.total_welfare + 1e-9);
        // All matchings feasible.
        for m in rotated.rounds.iter().chain(myopic.rounds.iter()) {
            m.validate(&g).unwrap();
        }
    }

    #[test]
    fn strength_zero_equals_myopic() {
        let g = scarce_instance(3);
        let a = repeated_rounds(&g, Combiner::balanced(), RotationPolicy::Myopic, 3);
        let b = repeated_rounds(
            &g,
            Combiner::balanced(),
            RotationPolicy::LoadDiscount { strength: 0.0 },
            3,
        );
        assert!((a.total_welfare - b.total_welfare).abs() < 1e-9);
        assert_eq!(a.workers_ever_used, b.workers_ever_used);
    }

    #[test]
    fn first_round_is_undistorted() {
        // Round 1 under rotation equals the true optimum (cumulative loads
        // are all zero).
        let g = from_edges(&[1, 1], &[1], &[(0, 0, 0.9, 0.9), (1, 0, 0.5, 0.5)]);
        let r = repeated_rounds(
            &g,
            Combiner::balanced(),
            RotationPolicy::LoadDiscount { strength: 5.0 },
            2,
        );
        let w = mbta_market::benefit::edge_weights(&g, Combiner::balanced());
        assert!((r.rounds[0].total_weight(&w) - 0.9).abs() < 1e-9);
        // Round 2 rotates to the other worker under a strong discount.
        assert!((r.rounds[1].total_weight(&w) - 0.5).abs() < 1e-9);
        assert_eq!(r.workers_ever_used, 2);
    }

    #[test]
    fn zero_rounds() {
        let g = scarce_instance(4);
        let r = repeated_rounds(&g, Combiner::balanced(), RotationPolicy::Myopic, 0);
        assert!(r.rounds.is_empty());
        assert_eq!(r.total_welfare, 0.0);
        assert_eq!(r.cumulative_gini, 0.0);
    }

    #[test]
    fn myopic_reference_matches() {
        let g = scarce_instance(5);
        let a = myopic_reference(&g, Combiner::balanced(), 2);
        let b = repeated_rounds(&g, Combiner::balanced(), RotationPolicy::Myopic, 2);
        assert!((a.total_welfare - b.total_welfare).abs() < 1e-9);
    }
}
