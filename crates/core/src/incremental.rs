//! Incremental assignment maintenance under market churn.
//!
//! Real platforms never solve one static instance: workers log off, tasks
//! get cancelled, new ones appear. Re-running the exact solver on every
//! event is wasteful — the optimal response to one departure touches only a
//! small neighbourhood. [`IncrementalAssignment`] maintains a feasible
//! assignment under activate/deactivate events with greedy local repair:
//!
//! * **deactivate worker/task** — its assigned edges are dropped, and every
//!   affected counterpart greedily refills its freed capacity from active,
//!   unassigned neighbours;
//! * **activate worker/task** — the node greedily takes its best available
//!   edges.
//!
//! Repair is O(deg · log deg) per event. Experiment F14 measures the
//! quality gap between this and a from-scratch re-solve across a churn
//! trace (the gap stays small because greedy repair is itself locally
//! ½-optimal, and churn rarely moves the global structure).

use mbta_graph::{BipartiteGraph, EdgeId, TaskId, WorkerId};
use mbta_matching::{Infeasibility, Matching};
use std::fmt;

/// Why a seed matching was rejected by
/// [`IncrementalAssignment::from_matching`].
#[derive(Debug, Clone, PartialEq)]
pub enum SeedRejection {
    /// The weight slice does not cover every edge of the graph.
    WeightLenMismatch {
        /// Number of edges in the graph.
        expected: usize,
        /// Length of the supplied weight slice.
        got: usize,
    },
    /// The seed matching violates graph feasibility.
    Infeasible(Infeasibility),
    /// A seeded edge carries a non-finite weight, which would poison the
    /// maintained running total.
    NonFiniteWeight {
        /// The offending edge (raw id).
        edge: u32,
        /// Its weight.
        weight: f64,
    },
    /// A seeded edge touches a node that is currently inactive (only
    /// possible through [`IncrementalAssignment::reseed`], which keeps the
    /// activity flags of the running state).
    InactiveEndpoint {
        /// The offending edge (raw id).
        edge: u32,
    },
}

impl fmt::Display for SeedRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SeedRejection::WeightLenMismatch { expected, got } => {
                write!(f, "weight slice length {got} != edge count {expected}")
            }
            SeedRejection::Infeasible(ref e) => write!(f, "infeasible seed matching: {e}"),
            SeedRejection::NonFiniteWeight { edge, weight } => {
                write!(f, "seeded edge {edge} has non-finite weight {weight}")
            }
            SeedRejection::InactiveEndpoint { edge } => {
                write!(f, "seeded edge {edge} touches an inactive node")
            }
        }
    }
}

impl std::error::Error for SeedRejection {}

impl From<Infeasibility> for SeedRejection {
    fn from(e: Infeasibility) -> Self {
        SeedRejection::Infeasible(e)
    }
}

/// A feasible assignment maintained under node activation churn.
#[derive(Debug, Clone)]
pub struct IncrementalAssignment<'g> {
    g: &'g BipartiteGraph,
    weights: Vec<f64>,
    in_matching: Vec<bool>,
    w_load: Vec<u32>,
    t_load: Vec<u32>,
    worker_active: Vec<bool>,
    task_active: Vec<bool>,
    total: f64,
    /// When `true`, every insert/remove is appended to `log` so an online
    /// caller can journal per-event assignment deltas. Off by default:
    /// batch users never pay for the bookkeeping.
    log_enabled: bool,
    log: Vec<(EdgeId, bool)>,
}

impl<'g> IncrementalAssignment<'g> {
    /// Starts with every node active and a greedy initial assignment.
    pub fn new(g: &'g BipartiteGraph, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), g.n_edges(), "weight slice length mismatch");
        let initial = mbta_matching::greedy::greedy_bmatching(g, &weights, 0.0);
        // Greedy only takes finite-weight edges and is always feasible.
        Self::from_matching(g, weights, &initial).expect("greedy seed is always accepted")
    }

    /// Starts from an existing matching (all nodes active), after checking
    /// that the seed is actually usable: the weight slice must cover every
    /// edge, the matching must be feasible for `g`, and every seeded edge
    /// must carry a finite weight (a NaN/±inf seed would silently poison
    /// the maintained running total). Formerly these were `debug_assert!`s,
    /// which made release builds accept corrupt seeds; churn traces replay
    /// against this state for thousands of events, so reject loudly instead.
    pub fn from_matching(
        g: &'g BipartiteGraph,
        weights: Vec<f64>,
        m: &Matching,
    ) -> Result<Self, SeedRejection> {
        if weights.len() != g.n_edges() {
            return Err(SeedRejection::WeightLenMismatch {
                expected: g.n_edges(),
                got: weights.len(),
            });
        }
        m.validate(g)?;
        for &e in &m.edges {
            if !weights[e.index()].is_finite() {
                return Err(SeedRejection::NonFiniteWeight {
                    edge: e.raw(),
                    weight: weights[e.index()],
                });
            }
        }
        let mut s = Self {
            g,
            weights,
            in_matching: vec![false; g.n_edges()],
            w_load: vec![0; g.n_workers()],
            t_load: vec![0; g.n_tasks()],
            worker_active: vec![true; g.n_workers()],
            task_active: vec![true; g.n_tasks()],
            total: 0.0,
            log_enabled: false,
            log: Vec::new(),
        };
        for &e in &m.edges {
            s.insert(e);
        }
        Ok(s)
    }

    /// Current total weight of the maintained assignment.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Number of assigned edges.
    pub fn len(&self) -> usize {
        self.in_matching.iter().filter(|&&b| b).count()
    }

    /// Whether nothing is assigned.
    pub fn is_empty(&self) -> bool {
        !self.in_matching.iter().any(|&b| b)
    }

    /// Whether a worker is currently active.
    pub fn worker_active(&self, w: WorkerId) -> bool {
        self.worker_active[w.index()]
    }

    /// Whether a task is currently active.
    pub fn task_active(&self, t: TaskId) -> bool {
        self.task_active[t.index()]
    }

    /// Snapshot of the current assignment.
    pub fn matching(&self) -> Matching {
        Matching::from_edges(
            (0..self.g.n_edges() as u32)
                .map(EdgeId::new)
                .filter(|e| self.in_matching[e.index()])
                .collect(),
        )
    }

    fn insert(&mut self, e: EdgeId) {
        debug_assert!(!self.in_matching[e.index()]);
        self.in_matching[e.index()] = true;
        self.w_load[self.g.worker_of(e).index()] += 1;
        self.t_load[self.g.task_of(e).index()] += 1;
        self.total += self.weights[e.index()];
        if self.log_enabled {
            self.log.push((e, true));
        }
    }

    fn remove(&mut self, e: EdgeId) {
        debug_assert!(self.in_matching[e.index()]);
        self.in_matching[e.index()] = false;
        self.w_load[self.g.worker_of(e).index()] -= 1;
        self.t_load[self.g.task_of(e).index()] -= 1;
        self.total -= self.weights[e.index()];
        if self.log_enabled {
            self.log.push((e, false));
        }
    }

    /// Whether edge `e` could be added right now. Non-finite weights are
    /// never addable: repair must not poison the running total.
    fn addable(&self, e: EdgeId) -> bool {
        let w = self.g.worker_of(e);
        let t = self.g.task_of(e);
        !self.in_matching[e.index()]
            && self.weights[e.index()] > 0.0
            && self.weights[e.index()].is_finite()
            && self.worker_active[w.index()]
            && self.task_active[t.index()]
            && self.w_load[w.index()] < self.g.capacity(w)
            && self.t_load[t.index()] < self.g.demand(t)
    }

    /// Greedily fills a task's remaining demand from its best addable edges.
    fn repair_task(&mut self, t: TaskId) {
        if !self.task_active[t.index()] {
            return;
        }
        let mut candidates: Vec<EdgeId> =
            self.g.task_edges(t).filter(|&e| self.addable(e)).collect();
        candidates.sort_unstable_by(|&a, &b| {
            self.weights[b.index()]
                .total_cmp(&self.weights[a.index()])
                .then(a.cmp(&b))
        });
        for e in candidates {
            if self.t_load[t.index()] >= self.g.demand(t) {
                break;
            }
            if self.addable(e) {
                self.insert(e);
            }
        }
    }

    /// Greedily fills a worker's remaining capacity.
    fn repair_worker(&mut self, w: WorkerId) {
        if !self.worker_active[w.index()] {
            return;
        }
        let mut candidates: Vec<EdgeId> = self
            .g
            .worker_edges(w)
            .filter(|&e| self.addable(e))
            .collect();
        candidates.sort_unstable_by(|&a, &b| {
            self.weights[b.index()]
                .total_cmp(&self.weights[a.index()])
                .then(a.cmp(&b))
        });
        for e in candidates {
            if self.w_load[w.index()] >= self.g.capacity(w) {
                break;
            }
            if self.addable(e) {
                self.insert(e);
            }
        }
    }

    /// Deactivates a worker (logs off): drops its assignments and repairs
    /// the tasks it was serving. Returns the number of dropped edges.
    /// Idempotent.
    pub fn deactivate_worker(&mut self, w: WorkerId) -> usize {
        if !self.worker_active[w.index()] {
            return 0;
        }
        self.worker_active[w.index()] = false;
        let dropped: Vec<EdgeId> = self
            .g
            .worker_edges(w)
            .filter(|&e| self.in_matching[e.index()])
            .collect();
        for &e in &dropped {
            self.remove(e);
        }
        for &e in &dropped {
            self.repair_task(self.g.task_of(e));
        }
        dropped.len()
    }

    /// Deactivates a task (cancelled): drops its assignments and repairs
    /// the workers that were serving it. Returns dropped edge count.
    pub fn deactivate_task(&mut self, t: TaskId) -> usize {
        if !self.task_active[t.index()] {
            return 0;
        }
        self.task_active[t.index()] = false;
        let dropped: Vec<EdgeId> = self
            .g
            .task_edges(t)
            .filter(|&e| self.in_matching[e.index()])
            .collect();
        for &e in &dropped {
            self.remove(e);
        }
        for &e in &dropped {
            self.repair_worker(self.g.worker_of(e));
        }
        dropped.len()
    }

    /// Re-activates a worker (logs back in) and greedily assigns it.
    /// Idempotent.
    pub fn activate_worker(&mut self, w: WorkerId) {
        if !self.worker_active[w.index()] {
            self.worker_active[w.index()] = true;
            self.repair_worker(w);
        }
    }

    /// Re-activates a task and greedily fills its demand.
    pub fn activate_task(&mut self, t: TaskId) {
        if !self.task_active[t.index()] {
            self.task_active[t.index()] = true;
            self.repair_task(t);
        }
    }

    /// Replaces the maintained matching with `m`, *keeping* the current
    /// activity flags. This is how a batch-level re-solve is adopted by a
    /// long-running maintainer (the dispatch service solves the active
    /// sub-market with the robust engine, then reseeds): greedy repair
    /// resumes from the better matching on the next churn event.
    ///
    /// `m` must be feasible for the graph, touch only active nodes, and
    /// carry finite weights; otherwise the state is left unchanged and the
    /// rejection is returned.
    pub fn reseed(&mut self, m: &Matching) -> Result<(), SeedRejection> {
        m.validate(self.g)?;
        for &e in &m.edges {
            if !self.weights[e.index()].is_finite() {
                return Err(SeedRejection::NonFiniteWeight {
                    edge: e.raw(),
                    weight: self.weights[e.index()],
                });
            }
            if !self.worker_active[self.g.worker_of(e).index()]
                || !self.task_active[self.g.task_of(e).index()]
            {
                return Err(SeedRejection::InactiveEndpoint { edge: e.raw() });
            }
        }
        let current: Vec<EdgeId> = (0..self.g.n_edges() as u32)
            .map(EdgeId::new)
            .filter(|e| self.in_matching[e.index()])
            .collect();
        for e in current {
            self.remove(e);
        }
        for &e in &m.edges {
            self.insert(e);
        }
        Ok(())
    }

    /// Updates the weight of one edge (a benefit update flowing through the
    /// market event stream). If the edge is currently assigned, the running
    /// total is adjusted; a non-finite update on an assigned edge evicts it
    /// (while the old finite weight is still in place, so the total stays
    /// clean) and greedily repairs both endpoints.
    pub fn set_weight(&mut self, e: EdgeId, w: f64) {
        let i = e.index();
        if self.in_matching[i] {
            if w.is_finite() {
                let old = self.weights[i];
                self.weights[i] = w;
                self.total += w - old;
            } else {
                self.remove(e);
                self.weights[i] = w;
                self.repair_worker(self.g.worker_of(e));
                self.repair_task(self.g.task_of(e));
            }
        } else {
            self.weights[i] = w;
        }
    }

    /// The active-subgraph weights for re-solve comparisons: inactive
    /// endpoints get weight 0 so a from-scratch solver sees the same market
    /// state (zero-weight edges are never taken in free-cardinality mode).
    pub fn active_weights(&self) -> Vec<f64> {
        self.g
            .edges()
            .map(|e| {
                if self.worker_active[self.g.worker_of(e).index()]
                    && self.task_active[self.g.task_of(e).index()]
                {
                    self.weights[e.index()]
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Turns on assignment-delta logging: every subsequent edge insert
    /// and remove (from repair, reseed, eviction — any funnel) is
    /// recorded so an online caller can journal per-event decisions.
    /// Existing batch users never enable this and pay nothing.
    ///
    /// # Example
    /// ```
    /// use mbta_core::incremental::IncrementalAssignment;
    /// use mbta_graph::random::from_edges;
    /// use mbta_graph::WorkerId;
    ///
    /// let g = from_edges(&[1, 1], &[1], &[(0, 0, 0.9, 0.9), (1, 0, 0.5, 0.5)]);
    /// let weights: Vec<f64> = g.edges().map(|e| g.rb(e)).collect();
    /// let mut inc = IncrementalAssignment::new(&g, weights);
    /// inc.enable_log();
    /// inc.drain_log(); // discard the churn that predates our interest
    /// inc.deactivate_worker(WorkerId::new(0));
    /// // The departure dropped edge 0 and repair picked up edge 1.
    /// let flips = inc.drain_log();
    /// assert_eq!(flips.len(), 2);
    /// assert!(!flips[0].1 && flips[1].1);
    /// ```
    pub fn enable_log(&mut self) {
        self.log_enabled = true;
    }

    /// Takes the accumulated `(edge, assigned)` flip log, leaving it
    /// empty. An edge may appear multiple times (evicted then re-added
    /// within one event); fold by flip parity to get net decisions.
    pub fn drain_log(&mut self) -> Vec<(EdgeId, bool)> {
        std::mem::take(&mut self.log)
    }

    /// Appends the accumulated flip log to `out` and clears it. The
    /// allocation-free counterpart of [`Self::drain_log`]: both the
    /// internal log buffer and the caller's pooled `out` keep their
    /// capacity across events.
    pub fn drain_log_into(&mut self, out: &mut Vec<(EdgeId, bool)>) {
        out.extend_from_slice(&self.log);
        self.log.clear();
    }

    /// Whether edge `e` is currently assigned.
    pub fn edge_assigned(&self, e: EdgeId) -> bool {
        self.in_matching[e.index()]
    }

    /// The live weight of edge `e`.
    pub fn weight_of(&self, e: EdgeId) -> f64 {
        self.weights[e.index()]
    }

    /// Current assigned load of a worker.
    pub fn worker_load(&self, w: WorkerId) -> u32 {
        self.w_load[w.index()]
    }

    /// Current assigned load of a task.
    pub fn task_load(&self, t: TaskId) -> u32 {
        self.t_load[t.index()]
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g BipartiteGraph {
        self.g
    }

    /// Assigns edge `e` if it is addable right now (unassigned, positive
    /// finite weight, both endpoints active with spare capacity).
    /// Returns whether the edge was taken.
    pub fn try_assign(&mut self, e: EdgeId) -> bool {
        let ok = self.addable(e);
        if ok {
            self.insert(e);
        }
        ok
    }

    /// Unassigns edge `e` if it is currently assigned (an online
    /// exchange evicting a weaker edge). Returns whether a removal
    /// happened. The freed capacity is *not* repaired — the caller
    /// decides what replaces it.
    pub fn unassign(&mut self, e: EdgeId) -> bool {
        let ok = self.in_matching[e.index()];
        if ok {
            self.remove(e);
        }
        ok
    }

    /// Greedily fills a worker's spare capacity from its best addable
    /// edges (public entry to the repair pass, for online callers).
    pub fn fill_worker(&mut self, w: WorkerId) {
        self.repair_worker(w);
    }

    /// Greedily fills a task's remaining demand (public entry to the
    /// repair pass, for online callers).
    pub fn fill_task(&mut self, t: TaskId) {
        self.repair_task(t);
    }

    /// Debug validation: feasibility, activity and total consistency.
    pub fn check_invariants(&self) {
        let m = self.matching();
        m.validate(self.g).expect("maintained matching feasible");
        for &e in &m.edges {
            assert!(self.worker_active[self.g.worker_of(e).index()]);
            assert!(self.task_active[self.g.task_of(e).index()]);
        }
        let recomputed = m.total_weight(&self.weights);
        assert!(
            (recomputed - self.total).abs() < 1e-6,
            "total drift: cached {} vs recomputed {recomputed}",
            self.total
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::{from_edges, random_bipartite, RandomGraphSpec};
    use mbta_matching::mcmf::{max_weight_bmatching, FlowMode, PathAlgo};
    use mbta_util::SplitMix64;

    #[test]
    fn departure_triggers_repair() {
        // w0 holds t0; when w0 leaves, w1 (previously beaten) takes over.
        let g = from_edges(&[1, 1], &[1], &[(0, 0, 0.9, 0.9), (1, 0, 0.5, 0.5)]);
        let w: Vec<f64> = g.edges().map(|e| g.rb(e)).collect();
        let mut inc = IncrementalAssignment::new(&g, w);
        assert!((inc.total_weight() - 0.9).abs() < 1e-12);
        let dropped = inc.deactivate_worker(WorkerId::new(0));
        assert_eq!(dropped, 1);
        inc.check_invariants();
        assert!((inc.total_weight() - 0.5).abs() < 1e-12);
        // Re-activation takes the better edge back... w1 still holds t0,
        // and t0's demand is saturated, so w0 stays idle (greedy repair
        // does not evict).
        inc.activate_worker(WorkerId::new(0));
        inc.check_invariants();
        assert!((inc.total_weight() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn task_cancellation_frees_worker_for_other_tasks() {
        // w0 (cap 1) serves t0 (0.8); t1 (0.6) is left unserved. When t0 is
        // cancelled, w0 must move to t1.
        let g = from_edges(&[1], &[1, 1], &[(0, 0, 0.8, 0.8), (0, 1, 0.6, 0.6)]);
        let w: Vec<f64> = g.edges().map(|e| g.rb(e)).collect();
        let mut inc = IncrementalAssignment::new(&g, w);
        assert!((inc.total_weight() - 0.8).abs() < 1e-12);
        inc.deactivate_task(TaskId::new(0));
        inc.check_invariants();
        assert!((inc.total_weight() - 0.6).abs() < 1e-12);
        // Reactivate: t0's demand refills from the only active worker...
        // which is busy on t1 at capacity, so nothing changes.
        inc.activate_task(TaskId::new(0));
        assert!((inc.total_weight() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn deactivation_is_idempotent() {
        let g = from_edges(&[1], &[1], &[(0, 0, 0.5, 0.5)]);
        let w = vec![0.5];
        let mut inc = IncrementalAssignment::new(&g, w);
        assert_eq!(inc.deactivate_worker(WorkerId::new(0)), 1);
        assert_eq!(inc.deactivate_worker(WorkerId::new(0)), 0);
        inc.activate_worker(WorkerId::new(0));
        inc.activate_worker(WorkerId::new(0));
        inc.check_invariants();
        assert_eq!(inc.len(), 1);
    }

    #[test]
    fn churn_preserves_feasibility_and_tracks_resolve() {
        let g = random_bipartite(
            &RandomGraphSpec {
                n_workers: 80,
                n_tasks: 50,
                avg_degree: 6.0,
                capacity: 2,
                demand: 2,
            },
            3,
        );
        let weights: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
        let mut inc = IncrementalAssignment::new(&g, weights.clone());
        let mut rng = SplitMix64::new(7);
        let mut inactive_w: Vec<u32> = Vec::new();
        let mut inactive_t: Vec<u32> = Vec::new();
        for step in 0..200 {
            match rng.next_below(4) {
                0 => {
                    let w = rng.next_index(g.n_workers()) as u32;
                    inc.deactivate_worker(WorkerId::new(w));
                    inactive_w.push(w); // activation is idempotent, dups fine
                }
                1 => {
                    if let Some(w) = inactive_w.pop() {
                        inc.activate_worker(WorkerId::new(w));
                    }
                }
                2 => {
                    let t = rng.next_index(g.n_tasks()) as u32;
                    inc.deactivate_task(TaskId::new(t));
                    inactive_t.push(t);
                }
                _ => {
                    if let Some(t) = inactive_t.pop() {
                        inc.activate_task(TaskId::new(t));
                    }
                }
            }
            inc.check_invariants();
            if step % 50 == 49 {
                // Compare against an exact re-solve on the active subgraph:
                // incremental stays within the greedy ½ bound.
                let aw = inc.active_weights();
                let (opt, _) =
                    max_weight_bmatching(&g, &aw, FlowMode::FreeCardinality, PathAlgo::Dijkstra);
                let ov = opt.total_weight(&aw);
                assert!(inc.total_weight() <= ov + 1e-6, "step {step}");
                assert!(
                    inc.total_weight() >= 0.4 * ov - 1e-9,
                    "step {step}: incremental {} vs opt {ov}",
                    inc.total_weight()
                );
            }
        }
    }

    #[test]
    fn from_matching_accepts_exact_start() {
        let g = random_bipartite(&RandomGraphSpec::default(), 5);
        let weights: Vec<f64> = g.edges().map(|e| g.rb(e)).collect();
        let (opt, _) =
            max_weight_bmatching(&g, &weights, FlowMode::FreeCardinality, PathAlgo::Dijkstra);
        let expected = opt.total_weight(&weights);
        let inc = IncrementalAssignment::from_matching(&g, weights, &opt).unwrap();
        assert!((inc.total_weight() - expected).abs() < 1e-9);
        inc.check_invariants();
    }

    #[test]
    fn from_matching_rejects_bad_seeds() {
        let g = from_edges(&[1, 1], &[1, 1], &[(0, 0, 0.5, 0.5), (1, 1, 0.5, 0.5)]);

        // Short weight slice.
        let err =
            IncrementalAssignment::from_matching(&g, vec![0.5], &Matching::empty()).unwrap_err();
        assert!(matches!(
            err,
            SeedRejection::WeightLenMismatch {
                expected: 2,
                got: 1
            }
        ));

        // Infeasible seed: the same edge twice overloads both endpoints.
        let dup = Matching::from_edges(vec![EdgeId::new(0), EdgeId::new(0)]);
        let err = IncrementalAssignment::from_matching(&g, vec![0.5, 0.5], &dup).unwrap_err();
        assert!(matches!(err, SeedRejection::Infeasible(_)), "{err}");

        // Seeded edge with a NaN weight.
        let seed = Matching::from_edges(vec![EdgeId::new(0)]);
        let err = IncrementalAssignment::from_matching(&g, vec![f64::NAN, 0.5], &seed).unwrap_err();
        assert!(
            matches!(err, SeedRejection::NonFiniteWeight { edge: 0, .. }),
            "{err}"
        );

        // NaN weight on an *unmatched* edge is fine — repair just never
        // takes that edge.
        let ok = IncrementalAssignment::from_matching(&g, vec![0.5, f64::NAN], &seed).unwrap();
        ok.check_invariants();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn dropout_storms_keep_invariants() {
        use mbta_workload::faults::{dropout_storm, ChurnEvent};
        for seed in 0..10 {
            let g = random_bipartite(
                &RandomGraphSpec {
                    n_workers: 60,
                    n_tasks: 40,
                    avg_degree: 5.0,
                    capacity: 2,
                    demand: 2,
                },
                seed,
            );
            let weights: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
            let mut inc = IncrementalAssignment::new(&g, weights);
            // A storm drops 70% of each side nearly at once, then half of
            // the dropped nodes come back; every intermediate state must
            // stay feasible and consistent.
            for ev in dropout_storm(g.n_workers(), g.n_tasks(), 0.7, seed ^ 0xABCD) {
                match ev {
                    ChurnEvent::DeactivateWorker(w) => {
                        inc.deactivate_worker(WorkerId::new(w));
                    }
                    ChurnEvent::ActivateWorker(w) => inc.activate_worker(WorkerId::new(w)),
                    ChurnEvent::DeactivateTask(t) => {
                        inc.deactivate_task(TaskId::new(t));
                    }
                    ChurnEvent::ActivateTask(t) => inc.activate_task(TaskId::new(t)),
                }
                inc.check_invariants();
            }
        }
    }

    #[test]
    fn interleaved_add_remove_of_same_worker_within_one_batch() {
        // The dispatch service batches events, and a batch routinely holds
        // BOTH lifecycle edges of the same worker (short session entirely
        // inside one micro-batch): on,off — or even on,off,on,off. Every
        // interleaving must keep invariants and land in the state implied
        // by the LAST event, independent of what happened in between.
        let g = random_bipartite(
            &RandomGraphSpec {
                n_workers: 30,
                n_tasks: 20,
                avg_degree: 5.0,
                capacity: 2,
                demand: 2,
            },
            13,
        );
        let weights: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();

        // Reference: deactivate w once.
        let w = WorkerId::new(4);
        let mut reference = IncrementalAssignment::new(&g, weights.clone());
        reference.deactivate_worker(w);

        // Same batch with a flap in the middle: off,on,off must agree with
        // a single off, because the intermediate on..off pair must not leak
        // state (greedy repair is deterministic in the surrounding state).
        let mut flappy = IncrementalAssignment::new(&g, weights.clone());
        flappy.deactivate_worker(w);
        flappy.activate_worker(w);
        flappy.check_invariants();
        flappy.deactivate_worker(w);
        flappy.check_invariants();
        assert!(!flappy.worker_active(w));
        assert_eq!(
            flappy.matching().edges,
            reference.matching().edges,
            "flap within a batch changed the final state"
        );

        // And an on-terminated interleaving ends active with its capacity
        // greedily refilled.
        let mut ending_on = IncrementalAssignment::new(&g, weights.clone());
        for _ in 0..3 {
            ending_on.deactivate_worker(w);
            ending_on.activate_worker(w);
        }
        ending_on.check_invariants();
        assert!(ending_on.worker_active(w));

        // Same property on the task side.
        let t = TaskId::new(7);
        let mut task_ref = IncrementalAssignment::new(&g, weights.clone());
        task_ref.deactivate_task(t);
        let mut task_flappy = IncrementalAssignment::new(&g, weights);
        task_flappy.deactivate_task(t);
        task_flappy.activate_task(t);
        task_flappy.deactivate_task(t);
        task_flappy.check_invariants();
        assert_eq!(task_flappy.matching().edges, task_ref.matching().edges);
    }

    #[test]
    fn interleaved_same_id_churn_storm_keeps_invariants() {
        // Hammer ONE worker and ONE task with a dense flip sequence while
        // background churn rearranges everything around them.
        let g = random_bipartite(
            &RandomGraphSpec {
                n_workers: 40,
                n_tasks: 30,
                avg_degree: 6.0,
                capacity: 2,
                demand: 2,
            },
            29,
        );
        let weights: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
        let mut inc = IncrementalAssignment::new(&g, weights);
        let hot_w = WorkerId::new(0);
        let hot_t = TaskId::new(0);
        let mut rng = SplitMix64::new(77);
        for step in 0..300 {
            match rng.next_below(6) {
                0 => {
                    inc.deactivate_worker(hot_w);
                }
                1 => inc.activate_worker(hot_w),
                2 => {
                    inc.deactivate_task(hot_t);
                }
                3 => inc.activate_task(hot_t),
                4 => {
                    let w = rng.next_index(g.n_workers()) as u32;
                    inc.deactivate_worker(WorkerId::new(w));
                }
                _ => {
                    let w = rng.next_index(g.n_workers()) as u32;
                    inc.activate_worker(WorkerId::new(w));
                }
            }
            inc.check_invariants();
            let _ = step;
        }
    }

    #[test]
    fn reseed_adopts_better_matching_and_keeps_activity() {
        let g = random_bipartite(
            &RandomGraphSpec {
                n_workers: 50,
                n_tasks: 40,
                avg_degree: 6.0,
                capacity: 2,
                demand: 2,
            },
            8,
        );
        let weights: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
        let mut inc = IncrementalAssignment::new(&g, weights.clone());
        // Deactivate a slice of the market, then re-solve the active part
        // exactly and adopt it.
        for w in 0..10 {
            inc.deactivate_worker(WorkerId::new(w));
        }
        for t in 0..5 {
            inc.deactivate_task(TaskId::new(t));
        }
        let before = inc.total_weight();
        let aw = inc.active_weights();
        let (opt, _) = max_weight_bmatching(&g, &aw, FlowMode::FreeCardinality, PathAlgo::Dijkstra);
        inc.reseed(&opt).unwrap();
        inc.check_invariants();
        assert!(
            !inc.worker_active(WorkerId::new(3)),
            "reseed flipped activity"
        );
        assert!(inc.total_weight() >= before - 1e-9, "reseed lost value");

        // Churn keeps working after a reseed.
        inc.deactivate_worker(WorkerId::new(20));
        inc.activate_worker(WorkerId::new(3));
        inc.check_invariants();
    }

    #[test]
    fn reseed_rejects_inactive_endpoints_and_leaves_state_intact() {
        let g = from_edges(&[1, 1], &[1, 1], &[(0, 0, 0.9, 0.9), (1, 1, 0.5, 0.5)]);
        let weights = vec![0.9, 0.5];
        let mut inc = IncrementalAssignment::new(&g, weights);
        inc.deactivate_worker(WorkerId::new(1));
        let before = inc.matching().edges;
        // Edge 1 touches the deactivated worker 1.
        let bad = Matching::from_edges(vec![EdgeId::new(1)]);
        let err = inc.reseed(&bad).unwrap_err();
        assert!(
            matches!(err, SeedRejection::InactiveEndpoint { edge: 1 }),
            "{err}"
        );
        inc.check_invariants();
        assert_eq!(inc.matching().edges, before, "failed reseed mutated state");
        // Infeasible seeds are rejected through the same gate.
        let dup = Matching::from_edges(vec![EdgeId::new(0), EdgeId::new(0)]);
        assert!(matches!(
            inc.reseed(&dup).unwrap_err(),
            SeedRejection::Infeasible(_)
        ));
    }

    #[test]
    fn set_weight_tracks_total_and_evicts_poison() {
        let g = from_edges(&[1], &[1, 1], &[(0, 0, 0.8, 0.8), (0, 1, 0.6, 0.6)]);
        let weights: Vec<f64> = g.edges().map(|e| g.rb(e)).collect();
        let mut inc = IncrementalAssignment::new(&g, weights);
        assert!((inc.total_weight() - 0.8).abs() < 1e-12);

        // Benefit update on the assigned edge: total follows.
        inc.set_weight(EdgeId::new(0), 0.3);
        inc.check_invariants();
        assert!((inc.total_weight() - 0.3).abs() < 1e-12);

        // Poisoning the assigned edge evicts it; repair moves the worker to
        // the remaining finite edge.
        inc.set_weight(EdgeId::new(0), f64::NAN);
        inc.check_invariants();
        assert!((inc.total_weight() - 0.6).abs() < 1e-12);
        assert_eq!(inc.len(), 1);

        // Updates on unassigned edges just store.
        inc.set_weight(EdgeId::new(0), 0.9);
        inc.check_invariants();
        // ...and the now-healthy edge is picked up at the next repair
        // opportunity for its endpoints.
        inc.deactivate_task(TaskId::new(1));
        inc.check_invariants();
        assert!((inc.total_weight() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = from_edges(&[], &[], &[]);
        let inc = IncrementalAssignment::new(&g, vec![]);
        assert!(inc.is_empty());
        assert_eq!(inc.total_weight(), 0.0);
    }
}
