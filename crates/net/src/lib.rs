//! `mbta-net`: the dispatch service's network front door, on nothing but
//! `std::net`.
//!
//! The paper's dispatch loop assumes events simply arrive; a deployed
//! labor market gets them from untrusted, bursty TCP clients. This crate
//! turns that stream into the clean `Arrival` sequence the service
//! already consumes:
//!
//! * [`wire`] — the protocol: the store's CRC frame layout around tagged
//!   request/reply payloads, with a 1 MiB frame cap and a *total*
//!   decoder (arbitrary bytes → message or typed error, never a panic —
//!   property-tested like the WAL).
//! * [`server`] — [`server::NetIngress`]: an accept loop plus
//!   per-connection threads feeding one bounded queue, with per-
//!   connection read timeouts, error replies that keep the connection
//!   alive when only the payload was bad, and **admission control**:
//!   a saturated queue bounces the whole batch with `RETRY_AFTER`
//!   instead of blocking, so overload never stalls the accept loop.
//!   Also [`server::StatusServer`], the read-only endpoint followers
//!   serve while tailing the primary's WAL.
//! * [`client`] — [`client::Client`] and [`client::send_events`]: the
//!   producer side, whose capped exponential backoff
//!   ([`mbta_service::DeferBackoff`]) plus the server's all-or-nothing
//!   admission give exactly-once delivery of accepted events under
//!   retry, with no dedup state.
//!
//! Telemetry: `mbta_net_conns_total`, `mbta_net_frames_total`,
//! `mbta_net_accepted_total`, `mbta_net_retry_after_total`,
//! `mbta_net_malformed_total`, `mbta_net_bytes_total` (all no-ops when
//! the `telemetry` feature is off).
//!
//! See DESIGN.md §12 for the wire format, the admission-control policy,
//! and the heartbeat/promotion protocol this crate underpins.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{send_events, Client, ClientError, SendSummary};
pub use server::{NetConfig, NetIngress, NetStats, StatusServer};
pub use wire::{
    decode_reply, decode_request, encode_reply, encode_request, read_message, write_message,
    ErrCode, FrameError, Reply, Request, Role, ShardReportInfo, StatusInfo, WireError,
    MAX_BATCH_EVENTS, MAX_NET_FRAME,
};
