//! The sending side: a framed-TCP client with a RETRY-AFTER-aware
//! backoff loop.
//!
//! The retry loop leans on the server's all-or-nothing admission: a
//! `RETRY_AFTER` reply means *zero* events of the batch were admitted,
//! so resending the identical batch is safe and every accepted event is
//! delivered exactly once — no sequence numbers, no dedup state. The
//! wait before each resend is the larger of the server's hint and the
//! client's own [`DeferBackoff`] schedule, so a fleet of producers that
//! saturated the ingress together spreads back out instead of
//! stampeding in lockstep.

use crate::wire::{
    decode_reply, encode_request, read_message, write_message, FrameError, Reply, Request,
    WireError,
};
use mbta_service::{Arrival, DeferBackoff};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::{Duration, Instant};

/// Why a client operation failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The reply frame was damaged or the connection closed mid-reply.
    Frame(FrameError),
    /// The reply payload did not decode.
    Wire(WireError),
    /// The server rejected the request (an `ERR` reply).
    Rejected {
        /// Wire error code byte.
        code: u8,
        /// Server-provided detail.
        msg: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "bad reply frame: {e}"),
            ClientError::Wire(e) => write!(f, "bad reply payload: {e}"),
            ClientError::Rejected { code, msg } => write!(f, "rejected (code {code}): {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        ClientError::Frame(e)
    }
}

/// A connected ingress client (one request in flight at a time).
pub struct Client {
    stream: TcpStream,
    reader: TcpStream,
}

impl Client {
    /// Connects to `addr` with a connect + read timeout.
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<Client> {
        let mut last_err = None;
        for sock_addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sock_addr, timeout) {
                Ok(stream) => return Client::from_stream(stream, timeout),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved")))
    }

    /// Keeps trying to connect until `total_wait` elapses — covers the
    /// race where the client starts before the server has bound.
    pub fn connect_retry(addr: &str, total_wait: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + total_wait;
        let mut pause = Duration::from_millis(25);
        loop {
            match Client::connect(addr, Duration::from_secs(2)) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() + pause >= deadline {
                        return Err(e);
                    }
                    thread::sleep(pause);
                    pause = (pause * 2).min(Duration::from_millis(500));
                }
            }
        }
    }

    fn from_stream(stream: TcpStream, timeout: Duration) -> io::Result<Client> {
        stream.set_read_timeout(Some(timeout.max(Duration::from_secs(5))))?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(Client { stream, reader })
    }

    /// The peer address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Sends one request and reads its reply.
    pub fn request(&mut self, req: &Request) -> Result<Reply, ClientError> {
        write_message(&mut self.stream, &encode_request(req))?;
        let payload = read_message(&mut self.reader)?;
        decode_reply(&payload).map_err(ClientError::Wire)
    }
}

/// Outcome of [`send_events`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendSummary {
    /// Events the server acknowledged as admitted.
    pub sent: u64,
    /// `EVENT_BATCH` requests that were accepted.
    pub batches: u64,
    /// Bounced attempts retried after a RETRY-AFTER wait.
    pub retries: u64,
}

/// Streams `events` in batches of `batch` under tenant namespace `ns`,
/// retrying each bounced batch under `backoff` until admitted. Returns
/// once every event is acknowledged; an `ERR` reply or transport failure
/// aborts with the error (nothing after the failed batch was sent).
pub fn send_events(
    client: &mut Client,
    ns: u32,
    events: &[Arrival],
    batch: usize,
    backoff: &mut DeferBackoff,
) -> Result<SendSummary, ClientError> {
    let mut summary = SendSummary::default();
    for chunk in events.chunks(batch.max(1)) {
        loop {
            let req = Request::EventBatch {
                ns,
                events: chunk.to_vec(),
            };
            match client.request(&req)? {
                Reply::Ok { accepted } => {
                    summary.sent += accepted as u64;
                    summary.batches += 1;
                    backoff.reset();
                    break;
                }
                Reply::RetryAfter { hint_ms } => {
                    summary.retries += 1;
                    let own = backoff.next_delay();
                    thread::sleep(own.max(Duration::from_millis(hint_ms as u64)));
                }
                Reply::Err { code, msg } => {
                    return Err(ClientError::Rejected {
                        code: code.as_u8(),
                        msg,
                    })
                }
                Reply::Status(_) | Reply::ShardReport(_) => {
                    return Err(ClientError::Wire(WireError::BadReplyTag(
                        crate::wire::TAG_STATUS,
                    )))
                }
            }
        }
    }
    Ok(summary)
}
