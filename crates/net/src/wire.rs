//! The wire protocol: framing and payload codecs for the TCP ingress.
//!
//! Every message in either direction is one CRC frame (the store's
//! `[len u32 LE | crc32 u32 LE | payload]` layout, see
//! `mbta_store::frame`) with a payload that starts with a one-byte tag:
//!
//! ```text
//! requests                         replies
//! 0x01 EVENT_BATCH                 0x81 OK          u32 accepted
//!      u32 ns, u32 count,          0x82 RETRY_AFTER u32 hint_ms
//!      count × event               0x83 ERR         u8 code, u16 len, msg
//! 0x02 FIN                         0x84 STATUS      u8 role, u64 watermark,
//! 0x03 QUERY_STATUS                                 u64 assignments,
//! 0x04 QUERY_REPORT                                 f64 total_weight
//!                                  0x85 SHARD_REPORT
//!                                       u32 shard, u32 n_shards,
//!                                       u8 poisoned, u32 namespaces,
//!                                       u64 events, u64 foreign,
//!                                       u64 decisions, u64 assignments,
//!                                       f64 total_weight
//!
//! event: u8 kind, f64 time, then
//!   kind 1..=5 (join/leave/post/cancel/complete): u32 id
//!   kind 6 (benefit update):                      u32 edge, f64 weight
//! ```
//!
//! `ns` is the tenant/namespace id: independent markets multiplexed over
//! one cluster. A single-tenant `serve` endpoint treats every batch as
//! namespace 0; the router and shard workers demultiplex by it.
//!
//! The network reuses the store's framing so one set of acceptance rules
//! governs both the journal and the socket — but with a much smaller
//! payload cap ([`MAX_NET_FRAME`]): a WAL segment legitimately holds
//! megabytes, a single request never does, and the cap is checked before
//! any allocation so a hostile length header cannot balloon memory.
//!
//! Decoding is *total*: any byte string yields either a message or a
//! typed [`WireError`] — never a panic, never an allocation driven by
//! unvalidated input. The adversarial-input property test in
//! `tests/properties.rs` holds the decoder to that.

use mbta_service::{Arrival, ServiceEvent};
use std::fmt;
use std::io::{self, Read, Write};

/// Payload cap for one network frame (1 MiB). Above any legitimate
/// request (a maximal [`MAX_BATCH_EVENTS`] batch encodes to ~800 KiB),
/// far below the store's 256 MiB journal cap.
pub const MAX_NET_FRAME: usize = 1 << 20;

/// Events allowed in one `EVENT_BATCH` request.
pub const MAX_BATCH_EVENTS: usize = 32_768;

/// Request tag: a batch of service events.
pub const TAG_EVENT_BATCH: u8 = 0x01;
/// Request tag: end of stream — the client is done sending.
pub const TAG_FIN: u8 = 0x02;
/// Request tag: read-only status query.
pub const TAG_QUERY_STATUS: u8 = 0x03;
/// Request tag: read-only shard-report query (cluster aggregation).
pub const TAG_QUERY_REPORT: u8 = 0x04;
/// Reply tag: batch fully admitted.
pub const TAG_OK: u8 = 0x81;
/// Reply tag: ingress saturated; retry the same batch after a delay.
pub const TAG_RETRY_AFTER: u8 = 0x82;
/// Reply tag: request rejected.
pub const TAG_ERR: u8 = 0x83;
/// Reply tag: status snapshot.
pub const TAG_STATUS: u8 = 0x84;
/// Reply tag: per-shard-owner report snapshot.
pub const TAG_SHARD_REPORT: u8 = 0x85;

/// Error codes carried in an `ERR` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// The frame was valid but its payload did not decode; the
    /// connection survives (the frame boundary is intact).
    Payload,
    /// The frame itself was damaged (oversize length or CRC mismatch);
    /// the server closes the connection after replying, since the byte
    /// stream can no longer be resynchronized.
    Frame,
    /// The batch can never fit the ingress queue, no matter how long the
    /// client waits; shrink the batch.
    TooLarge,
    /// This endpoint is a read-only follower; it accepts status queries
    /// only.
    ReadOnly,
    /// An error code this build does not know.
    Unknown(u8),
}

impl ErrCode {
    /// Wire byte for this code.
    pub fn as_u8(self) -> u8 {
        match self {
            ErrCode::Payload => 1,
            ErrCode::Frame => 2,
            ErrCode::TooLarge => 3,
            ErrCode::ReadOnly => 4,
            ErrCode::Unknown(b) => b,
        }
    }

    /// Decodes a wire byte (total: unknown bytes map to
    /// [`ErrCode::Unknown`]).
    pub fn from_u8(b: u8) -> ErrCode {
        match b {
            1 => ErrCode::Payload,
            2 => ErrCode::Frame,
            3 => ErrCode::TooLarge,
            4 => ErrCode::ReadOnly,
            other => ErrCode::Unknown(other),
        }
    }
}

/// Which side of the replicated pair answered a status query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The serving primary (accepts event batches).
    Primary,
    /// A read-only follower tailing the primary's WAL.
    Follower,
}

impl Role {
    /// Stable display keyword (`primary` / `follower`).
    pub fn name(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Follower => "follower",
        }
    }
}

/// Payload of a `STATUS` reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatusInfo {
    /// Responder's role.
    pub role: Role,
    /// Batches committed (primary) or applied (follower).
    pub watermark: u64,
    /// Live assigned-edge count.
    pub assignments: u64,
    /// Live total assignment value.
    pub total_weight: f64,
}

/// Payload of a `SHARD_REPORT` reply: one shard owner's live tallies,
/// aggregated by the router into the cluster-wide run report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardReportInfo {
    /// Shard this owner serves.
    pub shard: u32,
    /// Total shards in the owner's plan.
    pub n_shards: u32,
    /// Whether the owner currently marks its shard poisoned.
    pub poisoned: bool,
    /// Namespaces (tenants) this owner hosts.
    pub namespaces: u32,
    /// Events admitted across all namespaces.
    pub events: u64,
    /// Events received for a shard this owner does not own (misroutes —
    /// dropped, never applied).
    pub foreign_events: u64,
    /// Decision records emitted across all namespaces.
    pub decisions: u64,
    /// Live assigned-edge count across all namespaces.
    pub assignments: u64,
    /// Live total assignment value across all namespaces.
    pub total_weight: f64,
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A batch of timestamped events to admit atomically, scoped to one
    /// tenant namespace (`ns` = 0 for single-tenant endpoints).
    EventBatch {
        /// Tenant namespace the events belong to.
        ns: u32,
        /// The timestamped events.
        events: Vec<Arrival>,
    },
    /// The client has no more events; the server may drain and finish.
    Fin,
    /// Read-only status query.
    QueryStatus,
    /// Read-only shard-report query (answered by shard owners).
    QueryReport,
}

/// A decoded reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The whole batch was admitted (`accepted` events).
    Ok {
        /// Events admitted by this request.
        accepted: u32,
    },
    /// Nothing was admitted; retry the same batch after roughly
    /// `hint_ms` milliseconds.
    RetryAfter {
        /// Server-suggested delay before retrying.
        hint_ms: u32,
    },
    /// The request was rejected.
    Err {
        /// Machine-readable rejection class.
        code: ErrCode,
        /// Human-readable detail.
        msg: String,
    },
    /// Status snapshot.
    Status(StatusInfo),
    /// Shard-owner report snapshot.
    ShardReport(ShardReportInfo),
}

/// Why a payload failed to decode. Total over arbitrary bytes: garbage
/// in, one of these out — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the message did.
    Truncated,
    /// Bytes remained after a complete message.
    TrailingBytes,
    /// Unknown request tag.
    BadRequestTag(u8),
    /// Unknown reply tag.
    BadReplyTag(u8),
    /// Unknown event kind inside an `EVENT_BATCH`.
    BadEventKind(u8),
    /// `EVENT_BATCH` declared more events than [`MAX_BATCH_EVENTS`] or
    /// more than its bytes could possibly hold.
    BadBatchCount(u32),
    /// `ERR` message bytes were not UTF-8.
    BadErrText,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
            WireError::BadRequestTag(t) => write!(f, "unknown request tag 0x{t:02x}"),
            WireError::BadReplyTag(t) => write!(f, "unknown reply tag 0x{t:02x}"),
            WireError::BadEventKind(k) => write!(f, "unknown event kind {k}"),
            WireError::BadBatchCount(n) => write!(f, "implausible batch count {n}"),
            WireError::BadErrText => write!(f, "error text is not UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

const KIND_WORKER_JOIN: u8 = 1;
const KIND_WORKER_LEAVE: u8 = 2;
const KIND_TASK_POST: u8 = 3;
const KIND_TASK_CANCEL: u8 = 4;
const KIND_TASK_COMPLETE: u8 = 5;
const KIND_BENEFIT_UPDATE: u8 = 6;

/// Smallest possible encoded event (kind + time + id), used to bound the
/// declared batch count against the actual payload size.
const MIN_EVENT_BYTES: usize = 1 + 8 + 4;

// ---- little byte reader/writer -------------------------------------------
// (The store's codec module is private to keep its format ownership clear;
// the handful of primitives the wire needs is small enough to own.)

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

// ---- events ---------------------------------------------------------------

fn encode_event(out: &mut Vec<u8>, a: &Arrival) {
    match a.event {
        ServiceEvent::WorkerJoin(id) => {
            out.push(KIND_WORKER_JOIN);
            put_f64(out, a.time);
            put_u32(out, id);
        }
        ServiceEvent::WorkerLeave(id) => {
            out.push(KIND_WORKER_LEAVE);
            put_f64(out, a.time);
            put_u32(out, id);
        }
        ServiceEvent::TaskPost(id) => {
            out.push(KIND_TASK_POST);
            put_f64(out, a.time);
            put_u32(out, id);
        }
        ServiceEvent::TaskCancel(id) => {
            out.push(KIND_TASK_CANCEL);
            put_f64(out, a.time);
            put_u32(out, id);
        }
        ServiceEvent::TaskComplete(id) => {
            out.push(KIND_TASK_COMPLETE);
            put_f64(out, a.time);
            put_u32(out, id);
        }
        ServiceEvent::BenefitUpdate { edge, weight } => {
            out.push(KIND_BENEFIT_UPDATE);
            put_f64(out, a.time);
            put_u32(out, edge);
            put_f64(out, weight);
        }
    }
}

fn decode_event(r: &mut Reader<'_>) -> Result<Arrival, WireError> {
    let kind = r.u8()?;
    let time = r.f64()?;
    let event = match kind {
        KIND_WORKER_JOIN => ServiceEvent::WorkerJoin(r.u32()?),
        KIND_WORKER_LEAVE => ServiceEvent::WorkerLeave(r.u32()?),
        KIND_TASK_POST => ServiceEvent::TaskPost(r.u32()?),
        KIND_TASK_CANCEL => ServiceEvent::TaskCancel(r.u32()?),
        KIND_TASK_COMPLETE => ServiceEvent::TaskComplete(r.u32()?),
        KIND_BENEFIT_UPDATE => ServiceEvent::BenefitUpdate {
            edge: r.u32()?,
            weight: r.f64()?,
        },
        other => return Err(WireError::BadEventKind(other)),
    };
    Ok(Arrival { time, event })
}

// ---- requests -------------------------------------------------------------

/// Encodes a request payload (framing is separate; see
/// [`write_message`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::EventBatch { ns, events } => {
            debug_assert!(events.len() <= MAX_BATCH_EVENTS);
            let mut out = Vec::with_capacity(9 + events.len() * 25);
            out.push(TAG_EVENT_BATCH);
            put_u32(&mut out, *ns);
            put_u32(&mut out, events.len() as u32);
            for a in events {
                encode_event(&mut out, a);
            }
            out
        }
        Request::Fin => vec![TAG_FIN],
        Request::QueryStatus => vec![TAG_QUERY_STATUS],
        Request::QueryReport => vec![TAG_QUERY_REPORT],
    }
}

/// Decodes a request payload. Total: any byte string yields `Ok` or a
/// typed [`WireError`].
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    match tag {
        TAG_EVENT_BATCH => {
            let ns = r.u32()?;
            let count = r.u32()?;
            // The count is attacker-controlled; bound it by the hard batch
            // limit and by what the remaining bytes could possibly encode
            // before any allocation sized by it.
            if count as usize > MAX_BATCH_EVENTS || r.remaining() < count as usize * MIN_EVENT_BYTES
            {
                return Err(WireError::BadBatchCount(count));
            }
            let mut events = Vec::with_capacity(count as usize);
            for _ in 0..count {
                events.push(decode_event(&mut r)?);
            }
            r.finish()?;
            Ok(Request::EventBatch { ns, events })
        }
        TAG_FIN => {
            r.finish()?;
            Ok(Request::Fin)
        }
        TAG_QUERY_STATUS => {
            r.finish()?;
            Ok(Request::QueryStatus)
        }
        TAG_QUERY_REPORT => {
            r.finish()?;
            Ok(Request::QueryReport)
        }
        other => Err(WireError::BadRequestTag(other)),
    }
}

// ---- replies --------------------------------------------------------------

/// Encodes a reply payload.
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    match reply {
        Reply::Ok { accepted } => {
            let mut out = vec![TAG_OK];
            put_u32(&mut out, *accepted);
            out
        }
        Reply::RetryAfter { hint_ms } => {
            let mut out = vec![TAG_RETRY_AFTER];
            put_u32(&mut out, *hint_ms);
            out
        }
        Reply::Err { code, msg } => {
            let bytes = msg.as_bytes();
            let n = bytes.len().min(u16::MAX as usize);
            let mut out = vec![TAG_ERR, code.as_u8()];
            put_u16(&mut out, n as u16);
            out.extend_from_slice(&bytes[..n]);
            out
        }
        Reply::Status(s) => {
            let mut out = vec![TAG_STATUS];
            out.push(match s.role {
                Role::Primary => 1,
                Role::Follower => 0,
            });
            put_u64(&mut out, s.watermark);
            put_u64(&mut out, s.assignments);
            put_f64(&mut out, s.total_weight);
            out
        }
        Reply::ShardReport(s) => {
            let mut out = vec![TAG_SHARD_REPORT];
            put_u32(&mut out, s.shard);
            put_u32(&mut out, s.n_shards);
            out.push(u8::from(s.poisoned));
            put_u32(&mut out, s.namespaces);
            put_u64(&mut out, s.events);
            put_u64(&mut out, s.foreign_events);
            put_u64(&mut out, s.decisions);
            put_u64(&mut out, s.assignments);
            put_f64(&mut out, s.total_weight);
            out
        }
    }
}

/// Decodes a reply payload. Total, like [`decode_request`].
pub fn decode_reply(payload: &[u8]) -> Result<Reply, WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    let reply = match tag {
        TAG_OK => Reply::Ok { accepted: r.u32()? },
        TAG_RETRY_AFTER => Reply::RetryAfter { hint_ms: r.u32()? },
        TAG_ERR => {
            let code = ErrCode::from_u8(r.u8()?);
            let n = r.u16()? as usize;
            let bytes = r.take(n)?;
            let msg = std::str::from_utf8(bytes)
                .map_err(|_| WireError::BadErrText)?
                .to_string();
            Reply::Err { code, msg }
        }
        TAG_STATUS => {
            let role = if r.u8()? == 1 {
                Role::Primary
            } else {
                Role::Follower
            };
            Reply::Status(StatusInfo {
                role,
                watermark: r.u64()?,
                assignments: r.u64()?,
                total_weight: r.f64()?,
            })
        }
        TAG_SHARD_REPORT => Reply::ShardReport(ShardReportInfo {
            shard: r.u32()?,
            n_shards: r.u32()?,
            poisoned: r.u8()? != 0,
            namespaces: r.u32()?,
            events: r.u64()?,
            foreign_events: r.u64()?,
            decisions: r.u64()?,
            assignments: r.u64()?,
            total_weight: r.f64()?,
        }),
        other => return Err(WireError::BadReplyTag(other)),
    };
    r.finish()?;
    Ok(reply)
}

// ---- socket framing -------------------------------------------------------

/// Why a frame could not be read off a socket.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly before a new frame began.
    Eof,
    /// The declared payload length exceeds [`MAX_NET_FRAME`]. The stream
    /// cannot be resynchronized.
    Oversize(usize),
    /// The payload failed its CRC. The stream cannot be resynchronized.
    Corrupt,
    /// A real I/O failure (including a read timeout, which surfaces as
    /// `WouldBlock`/`TimedOut`) or a connection severed mid-frame.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::Oversize(n) => write!(f, "frame length {n} exceeds {MAX_NET_FRAME}"),
            FrameError::Corrupt => write!(f, "frame CRC mismatch"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one framed message payload to `w`.
pub fn write_message(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_NET_FRAME);
    let mut frame = Vec::with_capacity(8 + payload.len());
    mbta_store::write_frame(&mut frame, payload);
    w.write_all(&frame)
}

/// Reads one framed message payload from `r`.
///
/// The length header is validated against [`MAX_NET_FRAME`] *before* the
/// payload buffer is allocated. A clean close at a frame boundary is
/// [`FrameError::Eof`]; a close mid-frame is an I/O error.
pub fn read_message(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 8];
    // Distinguish "no next frame" (clean EOF at byte 0) from a frame cut
    // off mid-header.
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Eof),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_NET_FRAME {
        return Err(FrameError::Oversize(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if mbta_store::crc32(&payload) != crc {
        return Err(FrameError::Corrupt);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Arrival> {
        vec![
            Arrival {
                time: 0.5,
                event: ServiceEvent::WorkerJoin(3),
            },
            Arrival {
                time: 1.0,
                event: ServiceEvent::TaskPost(7),
            },
            Arrival {
                time: 1.5,
                event: ServiceEvent::BenefitUpdate {
                    edge: 11,
                    weight: 0.75,
                },
            },
            Arrival {
                time: 2.0,
                event: ServiceEvent::TaskComplete(7),
            },
            Arrival {
                time: 2.5,
                event: ServiceEvent::WorkerLeave(3),
            },
            Arrival {
                time: 3.0,
                event: ServiceEvent::TaskCancel(9),
            },
        ]
    }

    #[test]
    fn request_round_trips() {
        for req in [
            Request::EventBatch {
                ns: 0,
                events: sample_events(),
            },
            Request::EventBatch {
                ns: 7,
                events: Vec::new(),
            },
            Request::Fin,
            Request::QueryStatus,
            Request::QueryReport,
        ] {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes), Ok(req));
        }
    }

    #[test]
    fn reply_round_trips() {
        for reply in [
            Reply::Ok { accepted: 42 },
            Reply::RetryAfter { hint_ms: 150 },
            Reply::Err {
                code: ErrCode::Payload,
                msg: "unknown event kind 9".to_string(),
            },
            Reply::Status(StatusInfo {
                role: Role::Follower,
                watermark: 17,
                assignments: 120,
                total_weight: 88.25,
            }),
            Reply::ShardReport(ShardReportInfo {
                shard: 2,
                n_shards: 4,
                poisoned: true,
                namespaces: 3,
                events: 1_000,
                foreign_events: 5,
                decisions: 740,
                assignments: 61,
                total_weight: 44.5,
            }),
        ] {
            let bytes = encode_reply(&reply);
            assert_eq!(decode_reply(&bytes), Ok(reply));
        }
    }

    #[test]
    fn batch_count_is_bounded_before_allocation() {
        // A tag + ns + huge count and no event bytes must be rejected as a
        // bad count, not attempted as a 4-billion-element Vec.
        let mut payload = vec![TAG_EVENT_BATCH];
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_request(&payload),
            Err(WireError::BadBatchCount(u32::MAX))
        );
        // Exceeding MAX_BATCH_EVENTS is rejected even with bytes present.
        let mut payload = vec![TAG_EVENT_BATCH];
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&((MAX_BATCH_EVENTS as u32 + 1).to_le_bytes()));
        payload.resize(payload.len() + (MAX_BATCH_EVENTS + 1) * MIN_EVENT_BYTES, 0);
        assert_eq!(
            decode_request(&payload),
            Err(WireError::BadBatchCount(MAX_BATCH_EVENTS as u32 + 1))
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_request(&Request::Fin);
        bytes.push(0);
        assert_eq!(decode_request(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn socket_framing_round_trips_and_rejects_damage() {
        let payload = encode_request(&Request::EventBatch {
            ns: 1,
            events: sample_events(),
        });
        let mut buf = Vec::new();
        write_message(&mut buf, &payload).unwrap();
        let mut cursor = io::Cursor::new(buf.clone());
        assert_eq!(read_message(&mut cursor).unwrap(), payload);
        // A second read at the clean end is Eof.
        assert!(matches!(read_message(&mut cursor), Err(FrameError::Eof)));
        // Flip a payload bit: CRC mismatch.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x10;
        assert!(matches!(
            read_message(&mut io::Cursor::new(bad)),
            Err(FrameError::Corrupt)
        ));
        // Oversize header is rejected before allocation.
        let mut huge = ((MAX_NET_FRAME + 1) as u32).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0u8; 4]);
        assert!(matches!(
            read_message(&mut io::Cursor::new(huge)),
            Err(FrameError::Oversize(_))
        ));
        // Truncation mid-frame is an I/O error, not a hang or a panic.
        let cut = &buf[..buf.len() - 2];
        assert!(matches!(
            read_message(&mut io::Cursor::new(cut.to_vec())),
            Err(FrameError::Io(_))
        ));
    }
}
