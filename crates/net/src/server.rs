//! The ingress server: concurrent framed-TCP connections feeding one
//! bounded queue, plus the lightweight read-only status server.
//!
//! Threading model: one accept thread, one OS thread per connection
//! (`std::net` blocking I/O — connection counts here are a handful of
//! event producers, not C10K), all funnelling into a single
//! [`BoundedQueue`] behind a mutex. The dispatch loop drains that queue
//! from its own thread via [`NetIngress::pop_wait`].
//!
//! Admission control is **atomic per batch**: an `EVENT_BATCH` either
//! fits the queue's remaining capacity in full and is enqueued, or
//! nothing is enqueued and the client gets `RETRY_AFTER` with a
//! backoff-scheduled hint. All-or-nothing is what makes client retry
//! safe: a bounced batch left no partial prefix behind, so resending it
//! cannot double-admit, and every accepted event is delivered exactly
//! once without any deduplication state. The accept loop itself never
//! touches the queue, so saturation can never stall new connections.
//!
//! Failure handling per connection: a payload that does not decode gets
//! an `ERR` reply and the connection *survives* (the CRC frame boundary
//! is intact, the stream is still in sync); a damaged frame (oversize
//! length or CRC mismatch) gets an `ERR` reply and the connection is
//! closed, because after a bad frame the byte stream cannot be
//! resynchronized. A read timeout closes the connection.

use crate::wire::{
    decode_request, encode_reply, read_message, write_message, ErrCode, FrameError, Reply, Request,
    Role, ShardReportInfo, StatusInfo,
};
use mbta_service::{Arrival, BoundedQueue, DeferBackoff, DropPolicy, OfferOutcome};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Tuning knobs for [`NetIngress`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Address to bind (e.g. `127.0.0.1:7461`).
    pub addr: String,
    /// Ingress queue capacity (events). Batches larger than this are
    /// rejected outright as [`ErrCode::TooLarge`].
    pub queue_cap: usize,
    /// Per-connection read timeout; a client silent this long is
    /// disconnected.
    pub read_timeout: Duration,
    /// Base of the RETRY-AFTER hint schedule (milliseconds).
    pub retry_base_ms: u64,
    /// Cap of the RETRY-AFTER hint schedule (milliseconds).
    pub retry_cap_ms: u64,
    /// Seed for hint jitter (per-connection streams are derived).
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_cap: 4096,
            read_timeout: Duration::from_secs(30),
            retry_base_ms: 5,
            retry_cap_ms: 500,
            seed: 0,
        }
    }
}

/// Lifetime counters of a [`NetIngress`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub conns: u64,
    /// Frames read across all connections.
    pub frames: u64,
    /// Events admitted into the ingress queue.
    pub accepted: u64,
    /// Batches bounced with `RETRY_AFTER`.
    pub retry_after: u64,
    /// Malformed payloads and damaged frames rejected.
    pub malformed: u64,
    /// Frame bytes read (headers + payloads).
    pub bytes_in: u64,
    /// Deepest the ingress queue has been.
    pub queue_high_watermark: usize,
}

/// The ingress queue plus a lockstep deque of namespace tags: entry `i`
/// of `tags` is the tenant of the `i`-th queued arrival. Both sides are
/// only ever touched together under the queue mutex, so they cannot skew.
struct NsQueue {
    q: BoundedQueue,
    tags: VecDeque<u32>,
}

struct Shared {
    queue: Mutex<NsQueue>,
    ready: Condvar,
    cap: usize,
    fin: AtomicBool,
    shutdown: AtomicBool,
    status: Mutex<StatusInfo>,
    report: Mutex<ShardReportInfo>,
    conns: AtomicU64,
    frames: AtomicU64,
    accepted: AtomicU64,
    retry_after: AtomicU64,
    malformed: AtomicU64,
    bytes_in: AtomicU64,
    conn_seq: AtomicU64,
    cfg_read_timeout: Duration,
    cfg_retry_base_ms: u64,
    cfg_retry_cap_ms: u64,
    cfg_seed: u64,
}

impl Shared {
    /// Admits the whole batch or nothing. The all-or-nothing check runs
    /// under the queue lock, so concurrent producers cannot interleave
    /// partial batches.
    fn push_batch(&self, ns: u32, events: &[Arrival]) -> bool {
        let mut nq = self.queue.lock().unwrap();
        if self.cap - nq.q.len() < events.len() {
            // Count one deferral for the bounced batch (not per event):
            // the queue's own counter feeds the service report. Crucially
            // nothing is enqueued — the batch is all-or-nothing, so the
            // client's identical resend stays exactly-once.
            nq.q.note_deferral();
            return false;
        }
        for &a in events {
            let outcome = nq.q.offer(a);
            debug_assert_eq!(outcome, OfferOutcome::Accepted, "capacity checked above");
            nq.tags.push_back(ns);
        }
        drop(nq);
        self.ready.notify_all();
        true
    }
}

/// A bound TCP ingress: accept loop + connection threads feeding one
/// bounded queue. See the module docs for the protocol and policies.
pub struct NetIngress {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: Option<thread::JoinHandle<()>>,
}

impl NetIngress {
    /// Binds `cfg.addr` and starts accepting connections immediately.
    /// Events pile into the internal queue until the owner drains them
    /// with [`NetIngress::pop_wait`].
    pub fn bind(cfg: NetConfig) -> io::Result<NetIngress> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(NsQueue {
                q: BoundedQueue::new(cfg.queue_cap.max(1), DropPolicy::Defer),
                tags: VecDeque::new(),
            }),
            ready: Condvar::new(),
            cap: cfg.queue_cap.max(1),
            fin: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            status: Mutex::new(StatusInfo {
                role: Role::Primary,
                watermark: 0,
                assignments: 0,
                total_weight: 0.0,
            }),
            report: Mutex::new(ShardReportInfo::default()),
            conns: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            retry_after: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            conn_seq: AtomicU64::new(0),
            cfg_read_timeout: cfg.read_timeout,
            cfg_retry_base_ms: cfg.retry_base_ms,
            cfg_retry_cap_ms: cfg.retry_cap_ms,
            cfg_seed: cfg.seed,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = thread::Builder::new()
            .name("mbta-net-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(NetIngress {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Pops the oldest admitted event and its namespace tag, waiting up
    /// to `timeout` for one to arrive. `None` on timeout. Single-tenant
    /// drivers can ignore the tag (their clients always send ns 0).
    pub fn pop_wait(&self, timeout: Duration) -> Option<(u32, Arrival)> {
        let mut nq = self.shared.queue.lock().unwrap();
        if let Some(a) = nq.q.pop() {
            let ns = nq.tags.pop_front().expect("tags tracks queue in lockstep");
            return Some((ns, a));
        }
        let (mut nq, _) = self
            .shared
            .ready
            .wait_timeout_while(nq, timeout, |nq| nq.q.is_empty())
            .unwrap();
        let a = nq.q.pop()?;
        let ns = nq.tags.pop_front().expect("tags tracks queue in lockstep");
        Some((ns, a))
    }

    /// Whether any client has sent `FIN`.
    pub fn fin_received(&self) -> bool {
        self.shared.fin.load(Ordering::Acquire)
    }

    /// Whether the stream is over: `FIN` seen and the queue drained.
    pub fn is_drained(&self) -> bool {
        self.fin_received() && self.shared.queue.lock().unwrap().q.is_empty()
    }

    /// Publishes the state a `QUERY_STATUS` reply reports. Called by the
    /// dispatch loop after each batch.
    pub fn set_status(&self, watermark: u64, assignments: usize, total_weight: f64) {
        let mut s = self.shared.status.lock().unwrap();
        s.watermark = watermark;
        s.assignments = assignments as u64;
        s.total_weight = total_weight;
    }

    /// Publishes the snapshot a `QUERY_REPORT` reply carries. Called by
    /// a shard-owner drive loop alongside [`NetIngress::set_status`].
    pub fn set_report(&self, report: ShardReportInfo) {
        *self.shared.report.lock().unwrap() = report;
    }

    /// Lifetime counters.
    pub fn stats(&self) -> NetStats {
        let q = self.shared.queue.lock().unwrap();
        NetStats {
            conns: self.shared.conns.load(Ordering::Relaxed),
            frames: self.shared.frames.load(Ordering::Relaxed),
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            retry_after: self.shared.retry_after.load(Ordering::Relaxed),
            malformed: self.shared.malformed.load(Ordering::Relaxed),
            bytes_in: self.shared.bytes_in.load(Ordering::Relaxed),
            queue_high_watermark: q.q.high_watermark(),
        }
    }

    /// Stops accepting, wakes the accept thread, and joins it. Live
    /// connection threads notice on their next read (timeout-bounded)
    /// and exit.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Poke the blocking accept() awake with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetIngress {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.conns.fetch_add(1, Ordering::Relaxed);
        mbta_telemetry::counter_add("mbta_net_conns_total", 1);
        let conn_shared = Arc::clone(&shared);
        let id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        let _ = thread::Builder::new()
            .name(format!("mbta-net-conn-{id}"))
            .spawn(move || handle_conn(stream, conn_shared, id));
    }
}

fn send_reply(stream: &mut TcpStream, reply: &Reply) -> io::Result<()> {
    write_message(stream, &encode_reply(reply))
}

fn handle_conn(mut stream: TcpStream, shared: Arc<Shared>, id: u64) {
    let _ = stream.set_read_timeout(Some(shared.cfg_read_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut backoff = DeferBackoff::new(
        shared.cfg_retry_base_ms,
        shared.cfg_retry_cap_ms,
        shared.cfg_seed ^ id,
    );
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let payload = match read_message(&mut reader) {
            Ok(p) => p,
            Err(FrameError::Eof) => return,
            Err(FrameError::Oversize(_)) | Err(FrameError::Corrupt) => {
                // The stream is out of sync for good; say why, then close.
                shared.malformed.fetch_add(1, Ordering::Relaxed);
                mbta_telemetry::counter_add("mbta_net_malformed_total", 1);
                let _ = send_reply(
                    &mut stream,
                    &Reply::Err {
                        code: ErrCode::Frame,
                        msg: "damaged frame; closing".to_string(),
                    },
                );
                return;
            }
            // Timeout or severed connection.
            Err(FrameError::Io(_)) => return,
        };
        shared.frames.fetch_add(1, Ordering::Relaxed);
        shared
            .bytes_in
            .fetch_add(payload.len() as u64 + 8, Ordering::Relaxed);
        mbta_telemetry::counter_add("mbta_net_frames_total", 1);
        mbta_telemetry::counter_add("mbta_net_bytes_total", payload.len() as u64 + 8);
        let reply = match decode_request(&payload) {
            Ok(Request::EventBatch { ns, events }) => {
                if events.len() > shared.cap {
                    Reply::Err {
                        code: ErrCode::TooLarge,
                        msg: format!(
                            "batch of {} exceeds queue capacity {}",
                            events.len(),
                            shared.cap
                        ),
                    }
                } else if shared.push_batch(ns, &events) {
                    let n = events.len() as u64;
                    shared.accepted.fetch_add(n, Ordering::Relaxed);
                    mbta_telemetry::counter_add("mbta_net_accepted_total", n);
                    backoff.reset();
                    Reply::Ok {
                        accepted: events.len() as u32,
                    }
                } else {
                    shared.retry_after.fetch_add(1, Ordering::Relaxed);
                    mbta_telemetry::counter_add("mbta_net_retry_after_total", 1);
                    Reply::RetryAfter {
                        hint_ms: backoff.next_delay().as_millis() as u32,
                    }
                }
            }
            Ok(Request::Fin) => {
                shared.fin.store(true, Ordering::Release);
                // Wake a drainer parked on an empty queue so it can
                // observe the fin.
                shared.ready.notify_all();
                let _ = send_reply(&mut stream, &Reply::Ok { accepted: 0 });
                return;
            }
            Ok(Request::QueryStatus) => Reply::Status(*shared.status.lock().unwrap()),
            Ok(Request::QueryReport) => Reply::ShardReport(*shared.report.lock().unwrap()),
            Err(e) => {
                // The frame was intact — only its payload is garbage — so
                // the stream is still in sync and the connection survives.
                shared.malformed.fetch_add(1, Ordering::Relaxed);
                mbta_telemetry::counter_add("mbta_net_malformed_total", 1);
                Reply::Err {
                    code: ErrCode::Payload,
                    msg: e.to_string(),
                }
            }
        };
        if send_reply(&mut stream, &reply).is_err() {
            return;
        }
    }
}

// ---- read-only status serving --------------------------------------------

struct StatusShared {
    status: Mutex<StatusInfo>,
    shutdown: AtomicBool,
}

/// A minimal read-only endpoint: answers `QUERY_STATUS`, refuses event
/// batches with [`ErrCode::ReadOnly`]. Followers run one while tailing
/// (and after promotion, on the taken-over primary address).
pub struct StatusServer {
    shared: Arc<StatusShared>,
    local_addr: SocketAddr,
    accept_handle: Option<thread::JoinHandle<()>>,
}

impl StatusServer {
    /// Binds `addr` and serves immediately.
    pub fn bind(addr: &str, initial: StatusInfo) -> io::Result<StatusServer> {
        let mut last_err = None;
        for sock_addr in addr.to_socket_addrs()? {
            match TcpListener::bind(sock_addr) {
                Ok(l) => return StatusServer::from_listener(l, initial),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved")))
    }

    /// Serves on an already-bound listener — the promotion path, where
    /// binding the primary's address *is* the takeover evidence and the
    /// listener must not be dropped between the bind and the serve.
    pub fn from_listener(listener: TcpListener, initial: StatusInfo) -> io::Result<StatusServer> {
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(StatusShared {
            status: Mutex::new(initial),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = thread::Builder::new()
            .name("mbta-net-status".to_string())
            .spawn(move || status_accept_loop(listener, accept_shared))
            .expect("spawn status accept thread");
        Ok(StatusServer {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Publishes a new status (called as the follower applies records,
    /// and at promotion to flip the role).
    pub fn update(&self, status: StatusInfo) {
        *self.shared.status.lock().unwrap() = status;
    }

    /// Stops accepting and joins the accept thread.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn status_accept_loop(listener: TcpListener, shared: Arc<StatusShared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(&shared);
        let _ = thread::Builder::new()
            .name("mbta-net-status-conn".to_string())
            .spawn(move || handle_status_conn(stream, conn_shared));
    }
}

fn handle_status_conn(mut stream: TcpStream, shared: Arc<StatusShared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let payload = match read_message(&mut reader) {
            Ok(p) => p,
            Err(_) => return,
        };
        let reply = match decode_request(&payload) {
            Ok(Request::QueryStatus) => Reply::Status(*shared.status.lock().unwrap()),
            Ok(Request::EventBatch { .. }) | Ok(Request::Fin) | Ok(Request::QueryReport) => {
                Reply::Err {
                    code: ErrCode::ReadOnly,
                    msg: "read-only endpoint: status queries only".to_string(),
                }
            }
            Err(e) => Reply::Err {
                code: ErrCode::Payload,
                msg: e.to_string(),
            },
        };
        if send_reply(&mut stream, &reply).is_err() {
            return;
        }
    }
}
