//! Property tests for the wire protocol: the decoders are *total*.
//! Arbitrary byte garbage — random payloads, bit-flipped valid messages,
//! truncated streams — must never panic and must always come back as
//! either a valid message or a typed error. This mirrors the WAL's
//! truncate-anywhere property: the network peer is even less trustworthy
//! than a crashed disk.

use mbta_net::{
    decode_reply, decode_request, encode_reply, encode_request, read_message, write_message,
    ErrCode, FrameError, Reply, Request, Role, ShardReportInfo, StatusInfo,
};
use mbta_service::{Arrival, ServiceEvent};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = ServiceEvent> {
    (0u32..6, 0u32..10_000, -1.0e3f64..1.0e3).prop_map(|(pick, id, weight)| match pick {
        0 => ServiceEvent::WorkerJoin(id),
        1 => ServiceEvent::WorkerLeave(id),
        2 => ServiceEvent::TaskPost(id),
        3 => ServiceEvent::TaskCancel(id),
        4 => ServiceEvent::TaskComplete(id),
        _ => ServiceEvent::BenefitUpdate { edge: id, weight },
    })
}

fn arb_arrival() -> impl Strategy<Value = Arrival> {
    (0.0f64..1.0e6, arb_event()).prop_map(|(time, event)| Arrival { time, event })
}

fn arb_request() -> impl Strategy<Value = Request> {
    (0u32..4, any::<u32>(), vec(arb_arrival(), 0..64)).prop_map(|(pick, ns, batch)| match pick {
        0 => Request::EventBatch { ns, events: batch },
        1 => Request::Fin,
        2 => Request::QueryStatus,
        _ => Request::QueryReport,
    })
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    (
        (0u32..5, any::<u32>(), any::<u8>(), vec(32u8..127, 0..40)),
        (any::<bool>(), any::<u64>(), any::<u64>(), -1.0e6f64..1.0e6),
        (any::<u32>(), any::<u32>(), any::<u64>()),
    )
        .prop_map(
            |(
                (pick, n, code, msg),
                (primary, watermark, assignments, total_weight),
                (shard, namespaces, events),
            )| match pick {
                0 => Reply::Ok { accepted: n },
                1 => Reply::RetryAfter { hint_ms: n },
                2 => Reply::Err {
                    code: ErrCode::from_u8(code),
                    msg: String::from_utf8(msg).expect("printable ASCII"),
                },
                3 => Reply::Status(StatusInfo {
                    role: if primary {
                        Role::Primary
                    } else {
                        Role::Follower
                    },
                    watermark,
                    assignments,
                    total_weight,
                }),
                _ => Reply::ShardReport(ShardReportInfo {
                    shard,
                    n_shards: shard.wrapping_add(1),
                    poisoned: primary,
                    namespaces,
                    events,
                    foreign_events: events / 2,
                    decisions: assignments,
                    assignments,
                    total_weight,
                }),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-formed messages round-trip bit-for-bit.
    #[test]
    fn requests_round_trip(req in arb_request()) {
        let bytes = encode_request(&req);
        prop_assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn replies_round_trip(reply in arb_reply()) {
        let bytes = encode_reply(&reply);
        prop_assert_eq!(decode_reply(&bytes).unwrap(), reply);
    }

    /// Pure garbage payloads: a typed error or (astronomically unlikely)
    /// a valid decode — never a panic, never an allocation blow-up.
    #[test]
    fn garbage_payload_never_panics(bytes in vec(any::<u8>(), 0..512)) {
        let _ = decode_request(&bytes);
        let _ = decode_reply(&bytes);
    }

    /// A valid request truncated at any byte boundary decodes to a typed
    /// error or a shorter valid message — never a panic.
    #[test]
    fn truncated_request_never_panics(req in arb_request(), frac in 0.0f64..1.0) {
        let bytes = encode_request(&req);
        let cut = ((bytes.len() as f64) * frac) as usize;
        let _ = decode_request(&bytes[..cut.min(bytes.len())]);
    }

    /// Bit-flip anywhere in a framed message on the socket (optionally
    /// truncated first): the reader reports `Corrupt`/`Oversize`/`Eof`,
    /// or delivers a payload the payload decoder then handles totally.
    /// Never a panic.
    #[test]
    fn damaged_socket_frame_never_panics(
        req in arb_request(),
        flip_byte in 0usize..4096,
        flip_bit in 0u8..8,
        do_cut in any::<bool>(),
        cut in 0usize..4096,
    ) {
        let mut framed = Vec::new();
        write_message(&mut framed, &encode_request(&req)).unwrap();
        if do_cut {
            framed.truncate(cut.min(framed.len()));
        }
        if !framed.is_empty() {
            let idx = flip_byte % framed.len();
            framed[idx] ^= 1 << flip_bit;
        }
        let mut cursor = &framed[..];
        match read_message(&mut cursor) {
            Ok(payload) => { let _ = decode_request(&payload); }
            Err(FrameError::Eof | FrameError::Corrupt | FrameError::Oversize(_)) => {}
            Err(FrameError::Io(e)) => {
                // In-memory cursor: only "unexpected EOF"-class errors.
                prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
        }
    }

    /// Raw garbage fed straight to the socket reader: same totality.
    #[test]
    fn garbage_socket_stream_never_panics(bytes in vec(any::<u8>(), 0..1024)) {
        let mut cursor = &bytes[..];
        if let Ok(payload) = read_message(&mut cursor) {
            let _ = decode_request(&payload);
            let _ = decode_reply(&payload);
        }
    }
}
