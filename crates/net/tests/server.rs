//! Loopback integration tests for the TCP ingress: the protocol flows,
//! the failure-handling contract, and the overload/exactly-once
//! acceptance criteria, all against a real socket.

use mbta_net::{
    send_events, Client, ClientError, NetConfig, NetIngress, Reply, Request, Role, ShardReportInfo,
    StatusInfo, StatusServer,
};
use mbta_service::{Arrival, DeferBackoff, ServiceEvent};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn ev(id: u32) -> Arrival {
    Arrival {
        time: id as f64,
        event: ServiceEvent::TaskPost(id),
    }
}

fn test_cfg(queue_cap: usize) -> NetConfig {
    NetConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_cap,
        read_timeout: Duration::from_secs(5),
        retry_base_ms: 1,
        retry_cap_ms: 16,
        seed: 42,
    }
}

fn connect(server: &NetIngress) -> Client {
    Client::connect(&server.local_addr().to_string(), Duration::from_secs(5)).unwrap()
}

#[test]
fn batch_flows_through_in_order_and_fin_drains() {
    let server = NetIngress::bind(test_cfg(64)).unwrap();
    let mut client = connect(&server);
    let events: Vec<Arrival> = (0..10).map(ev).collect();
    let reply = client
        .request(&Request::EventBatch {
            ns: 3,
            events: events.clone(),
        })
        .unwrap();
    assert_eq!(reply, Reply::Ok { accepted: 10 });
    assert!(!server.fin_received());
    let got: Vec<(u32, Arrival)> = (0..10)
        .map(|_| server.pop_wait(Duration::from_secs(2)).unwrap())
        .collect();
    // The namespace tag rides along with every queued arrival.
    assert!(got.iter().all(|(ns, _)| *ns == 3));
    let drained: Vec<Arrival> = got.into_iter().map(|(_, a)| a).collect();
    assert_eq!(drained, events);
    assert_eq!(
        client.request(&Request::Fin).unwrap(),
        Reply::Ok { accepted: 0 }
    );
    // Fin is sticky and, with the queue empty, the stream is over.
    for _ in 0..100 {
        if server.is_drained() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(server.is_drained());
    let stats = server.stats();
    assert_eq!(stats.accepted, 10);
    assert!(stats.frames >= 2);
    assert!(stats.bytes_in > 0);
}

#[test]
fn malformed_payload_gets_error_reply_and_connection_survives() {
    let server = NetIngress::bind(test_cfg(64)).unwrap();
    let mut client = connect(&server);
    // A perfectly framed message whose payload is garbage: the server
    // must reply ERR (payload class) and keep the connection usable.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut frame = Vec::new();
    mbta_net::write_message(&mut frame, &[0x7f, 1, 2, 3]).unwrap();
    raw.write_all(&frame).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let payload = mbta_net::read_message(&mut raw).unwrap();
    match mbta_net::decode_reply(&payload).unwrap() {
        Reply::Err { code, .. } => assert_eq!(code.as_u8(), 1, "payload error class"),
        other => panic!("expected ERR, got {other:?}"),
    }
    // Same raw connection still admits a well-formed batch afterwards.
    let mut frame = Vec::new();
    mbta_net::write_message(
        &mut frame,
        &mbta_net::encode_request(&Request::EventBatch {
            ns: 0,
            events: vec![ev(1)],
        }),
    )
    .unwrap();
    raw.write_all(&frame).unwrap();
    let payload = mbta_net::read_message(&mut raw).unwrap();
    assert_eq!(
        mbta_net::decode_reply(&payload).unwrap(),
        Reply::Ok { accepted: 1 }
    );
    // And the unrelated client connection was never disturbed.
    assert_eq!(
        client
            .request(&Request::EventBatch {
                ns: 0,
                events: vec![ev(2)],
            })
            .unwrap(),
        Reply::Ok { accepted: 1 }
    );
    assert!(server.stats().malformed >= 1);
}

#[test]
fn damaged_frame_gets_error_reply_then_close() {
    let server = NetIngress::bind(test_cfg(64)).unwrap();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // Corrupt the CRC of an otherwise valid frame: resync is impossible,
    // so the server says why and closes.
    let mut frame = Vec::new();
    mbta_net::write_message(
        &mut frame,
        &mbta_net::encode_request(&Request::EventBatch {
            ns: 0,
            events: vec![ev(1)],
        }),
    )
    .unwrap();
    frame[5] ^= 0xff; // CRC byte
    raw.write_all(&frame).unwrap();
    let payload = mbta_net::read_message(&mut raw).unwrap();
    match mbta_net::decode_reply(&payload).unwrap() {
        Reply::Err { code, .. } => assert_eq!(code.as_u8(), 2, "frame error class"),
        other => panic!("expected ERR, got {other:?}"),
    }
    // The connection is gone: the next read sees EOF (or a reset).
    assert!(mbta_net::read_message(&mut raw).is_err());
    // Nothing was admitted.
    assert_eq!(server.stats().accepted, 0);
}

#[test]
fn saturated_queue_bounces_with_retry_after_and_never_stalls_accepts() {
    let server = NetIngress::bind(test_cfg(8)).unwrap();
    let mut client = connect(&server);
    // Fill the queue exactly; nothing drains it.
    let fill: Vec<Arrival> = (0..8).map(ev).collect();
    assert_eq!(
        client
            .request(&Request::EventBatch {
                ns: 0,
                events: fill,
            })
            .unwrap(),
        Reply::Ok { accepted: 8 }
    );
    // The next batch bounces atomically: RETRY_AFTER, nothing admitted.
    let bounced = client
        .request(&Request::EventBatch {
            ns: 0,
            events: vec![ev(100), ev(101)],
        })
        .unwrap();
    match bounced {
        Reply::RetryAfter { hint_ms } => assert!(hint_ms >= 1),
        other => panic!("expected RETRY_AFTER, got {other:?}"),
    }
    // An over-capacity batch can never fit: a typed rejection, not a wait.
    let too_large: Vec<Arrival> = (0..9).map(ev).collect();
    match client
        .request(&Request::EventBatch {
            ns: 0,
            events: too_large,
        })
        .unwrap()
    {
        Reply::Err { code, .. } => assert_eq!(code.as_u8(), 3),
        other => panic!("expected TOO_LARGE, got {other:?}"),
    }
    // While saturated, brand-new connections are still accepted and
    // served — admission control sheds load, it does not stall accept.
    let mut probe = connect(&server);
    match probe.request(&Request::QueryStatus).unwrap() {
        Reply::Status(s) => assert_eq!(s.role, Role::Primary),
        other => panic!("expected STATUS, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.accepted, 8, "bounced batches admitted nothing");
    assert!(stats.retry_after >= 1);
    assert!(stats.conns >= 2);
}

#[test]
fn backoff_retry_delivers_every_accepted_event_exactly_once() {
    let server = NetIngress::bind(test_cfg(8)).unwrap();
    let events: Vec<Arrival> = (0..200).map(ev).collect();
    // A deliberately slow consumer so the producer outruns the drain and
    // gets bounced repeatedly.
    let (tx, rx) = std::sync::mpsc::channel::<Arrival>();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut got = 0usize;
            while got < events.len() {
                if let Some((_, a)) = server.pop_wait(Duration::from_millis(50)) {
                    std::thread::sleep(Duration::from_millis(1));
                    tx.send(a).unwrap();
                    got += 1;
                }
            }
        });
        let mut client = connect(&server);
        let mut backoff = DeferBackoff::new(1, 16, 7);
        let summary = send_events(&mut client, 0, &events, 8, &mut backoff).unwrap();
        assert_eq!(summary.sent, 200, "every event acknowledged");
        assert_eq!(summary.batches, 25);
        assert!(
            summary.retries > 0,
            "a cap-8 queue with a slow consumer must bounce at least once"
        );
    });
    // Exactly once, in order: the drained stream equals the input.
    let drained: Vec<Arrival> = rx.try_iter().collect();
    assert_eq!(drained, events);
    assert_eq!(server.stats().accepted, 200);
}

#[test]
fn status_server_answers_queries_and_refuses_writes() {
    let mut status = StatusServer::bind(
        "127.0.0.1:0",
        StatusInfo {
            role: Role::Follower,
            watermark: 5,
            assignments: 12,
            total_weight: 3.5,
        },
    )
    .unwrap();
    let mut client =
        Client::connect(&status.local_addr().to_string(), Duration::from_secs(5)).unwrap();
    match client.request(&Request::QueryStatus).unwrap() {
        Reply::Status(s) => {
            assert_eq!(s.role, Role::Follower);
            assert_eq!(s.watermark, 5);
            assert_eq!(s.assignments, 12);
        }
        other => panic!("expected STATUS, got {other:?}"),
    }
    // Event traffic is refused with the read-only class; the query
    // connection survives the refusal.
    match client
        .request(&Request::EventBatch {
            ns: 0,
            events: vec![ev(1)],
        })
        .unwrap()
    {
        Reply::Err { code, .. } => assert_eq!(code.as_u8(), 4),
        other => panic!("expected READ_ONLY, got {other:?}"),
    }
    status.update(StatusInfo {
        role: Role::Primary,
        watermark: 9,
        assignments: 30,
        total_weight: 11.0,
    });
    match client.request(&Request::QueryStatus).unwrap() {
        Reply::Status(s) => {
            assert_eq!(s.role, Role::Primary);
            assert_eq!(s.watermark, 9);
        }
        other => panic!("expected STATUS, got {other:?}"),
    }
    status.shutdown();
}

#[test]
fn query_report_returns_the_published_shard_report() {
    let server = NetIngress::bind(test_cfg(64)).unwrap();
    let mut client = connect(&server);
    // Before anything is published the report is the zero default.
    match client.request(&Request::QueryReport).unwrap() {
        Reply::ShardReport(r) => assert_eq!(r, ShardReportInfo::default()),
        other => panic!("expected SHARD_REPORT, got {other:?}"),
    }
    let published = ShardReportInfo {
        shard: 2,
        n_shards: 4,
        poisoned: false,
        namespaces: 3,
        events: 128,
        foreign_events: 5,
        decisions: 90,
        assignments: 40,
        total_weight: 17.25,
    };
    server.set_report(published);
    match client.request(&Request::QueryReport).unwrap() {
        Reply::ShardReport(r) => assert_eq!(r, published),
        other => panic!("expected SHARD_REPORT, got {other:?}"),
    }
}

#[test]
fn send_events_surfaces_server_rejection() {
    let server = NetIngress::bind(test_cfg(4)).unwrap();
    let mut client = connect(&server);
    let mut backoff = DeferBackoff::new(1, 8, 3);
    // Batch size 5 can never fit capacity 4: the client gets the typed
    // rejection instead of retrying forever.
    let events: Vec<Arrival> = (0..5).map(ev).collect();
    match send_events(&mut client, 0, &events, 5, &mut backoff) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, 3),
        other => panic!("expected rejection, got {other:?}"),
    }
}
