//! Property tests for the durability formats: (1) a [`BatchRecord`]
//! survives encode → decode bit-for-bit for arbitrary contents, and
//! (2) chopping a WAL at *any* byte offset never panics and always
//! recovers a clean record prefix — the "truncate-anywhere" guarantee the
//! crash-recovery path is built on.

use mbta_store::record::{BatchRecord, DecisionRecord, WeightDelta};
use mbta_store::store::recover;
use mbta_store::wal::{segment_files, FsyncPolicy, Wal, WalConfig};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Ordinary magnitudes mixed with exact-bit hazards (negative zero,
/// subnormal, huge). NaN is excluded: the service never emits NaN weights,
/// and `PartialEq` on the decoded struct would read it as a mismatch.
fn arb_weight() -> impl Strategy<Value = f64> {
    (0u32..5, -1.0e3f64..1.0e3).prop_map(|(pick, v)| match pick {
        0 => 0.0,
        1 => -0.0,
        2 => f64::MIN_POSITIVE,
        3 => 1.0e300,
        _ => v,
    })
}

fn arb_delta() -> impl Strategy<Value = WeightDelta> {
    (0u32..10_000, arb_weight()).prop_map(|(edge, weight)| WeightDelta { edge, weight })
}

fn arb_decision() -> impl Strategy<Value = DecisionRecord> {
    (
        0u32..64,
        0u32..10_000,
        any::<bool>(),
        0u32..5_000,
        0u32..5_000,
        arb_weight(),
    )
        .prop_map(
            |(shard, edge, assign, worker, task, weight)| DecisionRecord {
                shard,
                edge,
                assign,
                worker,
                task,
                weight,
            },
        )
}

/// A record body; `seq` is patched in by the caller.
fn arb_record() -> impl Strategy<Value = BatchRecord> {
    (
        arb_weight(),
        arb_weight(),
        0u32..200,
        vec(arb_delta(), 0..8),
        vec(arb_decision(), 0..8),
    )
        .prop_map(
            |(first_time, last_time, events, deltas, decisions)| BatchRecord {
                seq: 0,
                first_time,
                last_time,
                events,
                deltas,
                decisions,
            },
        )
}

fn tmp(tag: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mbta-store-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The assignment state after replaying `recs` in order, shard by shard.
fn replay_by_hand(recs: &[BatchRecord]) -> Vec<Vec<u32>> {
    let mut shards: Vec<BTreeSet<u32>> = Vec::new();
    for rec in recs {
        for d in &rec.decisions {
            let s = d.shard as usize;
            if shards.len() <= s {
                shards.resize_with(s + 1, BTreeSet::new);
            }
            if d.assign {
                shards[s].insert(d.edge);
            } else {
                shards[s].remove(&d.edge);
            }
        }
    }
    shards
        .into_iter()
        .map(|s| s.into_iter().collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity, including f64 bit patterns.
    #[test]
    fn record_round_trips(seq in 0u64..1_000_000, rec in arb_record()) {
        let rec = BatchRecord { seq, ..rec };
        let decoded = BatchRecord::decode(&rec.encode()).unwrap();
        prop_assert_eq!(decoded, rec);
    }

    /// Chopping the log at any byte offset recovers some clean prefix of
    /// the committed records — never a panic, never an invented or
    /// half-applied record.
    #[test]
    fn truncate_anywhere_recovers_a_prefix(
        bodies in vec(arb_record(), 1..6),
        cut_frac in 0.0f64..=1.0,
        tag in 0u64..1_000_000,
    ) {
        let recs: Vec<BatchRecord> = bodies
            .into_iter()
            .enumerate()
            .map(|(i, body)| BatchRecord { seq: i as u64, ..body })
            .collect();
        let dir = tmp(tag);
        let mut wal = Wal::open(&dir, WalConfig {
            fsync: FsyncPolicy::Never, // speed; fsync is irrelevant to layout
            ..WalConfig::default()
        }).unwrap();
        for rec in &recs {
            wal.append(rec).unwrap();
        }
        drop(wal);

        // Chop the single segment at an arbitrary byte offset.
        let (_, path) = segment_files(&dir).unwrap().pop().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = (((bytes.len() as f64) * cut_frac) as usize).min(bytes.len());
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let state = recover(&dir).unwrap();
        // Watermark is some prefix length, and the recovered assignment
        // state equals replaying exactly that prefix by hand.
        prop_assert!(state.watermark <= recs.len() as u64);
        let expect = replay_by_hand(&recs[..state.watermark as usize]);
        prop_assert_eq!(&state.shards, &expect);
        // A cut on a frame boundary is a clean (shorter) log; anywhere
        // else leaves a torn tail that must be reported as truncated.
        if cut == bytes.len() {
            prop_assert_eq!(state.watermark, recs.len() as u64);
            prop_assert_eq!(state.truncated_bytes, 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
