//! Little-endian byte codec shared by the record and snapshot formats.
//!
//! Private on purpose: the on-disk formats are defined by `record` and
//! `snapshot`; this module only supplies the primitive put/get helpers and
//! the bounds-checked [`Reader`].

use crate::record::DecodeError;

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// `f64`s travel as their raw bit pattern: encode/decode must round-trip
/// bit-for-bit (NaN payloads included) for replay determinism.
pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Bounds-checked sequential reader over one decoded payload.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Guards length prefixes before allocation: a corrupt count must fail
    /// decode, not trigger a multi-gigabyte `Vec::with_capacity`.
    pub(crate) fn len_prefix(&mut self, elem_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_bytes) > self.buf.len() - self.pos {
            return Err(DecodeError::Truncated);
        }
        Ok(n)
    }

    /// Decoding must consume the payload exactly; leftovers mean the
    /// format and the data disagree.
    pub(crate) fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }
}
