//! The WAL payloads: one [`BatchRecord`] per committed dispatch batch,
//! plus the rarer [`PlanRecord`] a re-plan writes at a batch boundary.
//!
//! A batch record is everything needed to roll the sharded assignment
//! state forward by one batch, starting from any state that reflects the
//! batches before it: the weight updates the batch applied and the
//! assignment deltas it emitted. Event-range metadata (`first_time` /
//! `last_time` / `events`) ties the record back to the input trace for
//! auditing; it is not needed to replay state.
//!
//! A plan record is an *inline snapshot of the shard structure*: when the
//! service re-partitions the market it journals the complete
//! post-migration per-shard assignment lists, and replay (recovery and
//! followers alike) replaces its shard sets wholesale. Carrying the full
//! lists — rather than a move diff — keeps the fold trivially idempotent
//! against the state it lands on and immune to drift between the
//! primary's and a follower's view of the old plan. Weights are
//! untouched: migration moves assignments between shards, it never
//! revalues them.
//!
//! Batch payload layout (all little-endian, `f64` as raw bits):
//!
//! ```text
//! u8  kind (1 = batch record)
//! u64 seq                    — 0-based batch sequence number
//! f64 first_time, f64 last_time
//! u32 events                 — events in the batch (incl. invalid ones)
//! u32 n_deltas,    n × { u32 edge, f64 weight }
//! u32 n_decisions, n × { u32 shard, u32 edge, u8 assign,
//!                        u32 worker, u32 task, f64 weight }
//! ```
//!
//! Plan payload layout:
//!
//! ```text
//! u8  kind (2 = plan record)
//! u64 seq                    — consumes one slot in the same sequence
//! f64 retained_weight        — plan-time retained fraction (audit only)
//! u32 moved_workers, u32 moved_tasks
//! u32 n_lists, per list: u32 n_edges, n × u32 edge (sorted)
//! ```

use crate::codec::{put_f64, put_u32, put_u64, put_u8, Reader};
use std::fmt;

/// Payload kind tag for a batch record.
pub const KIND_BATCH: u8 = 1;

/// Payload kind tag for a plan (re-shard) record.
pub const KIND_PLAN: u8 = 2;

/// Payload kind tag for an online (per-event decision) record.
pub const KIND_ONLINE: u8 = 3;

/// A benefit-weight update applied during the batch, in universe edge ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightDelta {
    /// Universe edge id.
    pub edge: u32,
    /// The new live weight.
    pub weight: f64,
}

/// One emitted assignment delta, mirroring the service's decision struct
/// (this crate sits below the service, so it carries its own copy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRecord {
    /// Shard that made the change.
    pub shard: u32,
    /// Universe edge id.
    pub edge: u32,
    /// `true` = the edge entered the assignment, `false` = it left.
    pub assign: bool,
    /// Universe worker id.
    pub worker: u32,
    /// Universe task id.
    pub task: u32,
    /// Edge weight at decision time.
    pub weight: f64,
}

/// Everything journaled for one committed batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// 0-based batch sequence number; WAL records are strictly ascending.
    pub seq: u64,
    /// Arrival time of the batch's first event (0 when empty).
    pub first_time: f64,
    /// Arrival time of the batch's last event (0 when empty).
    pub last_time: f64,
    /// Events the batch contained.
    pub events: u32,
    /// Weight updates applied, in application order.
    pub deltas: Vec<WeightDelta>,
    /// Assignment deltas emitted, in canonical log order.
    pub decisions: Vec<DecisionRecord>,
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the format said it would.
    Truncated,
    /// The payload's kind tag is not one this version understands.
    BadKind(u8),
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::BadKind(k) => write!(f, "unknown payload kind {k}"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl BatchRecord {
    /// Encodes the record into its WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(37 + 12 * self.deltas.len() + 25 * self.decisions.len());
        put_u8(&mut out, KIND_BATCH);
        put_u64(&mut out, self.seq);
        put_f64(&mut out, self.first_time);
        put_f64(&mut out, self.last_time);
        put_u32(&mut out, self.events);
        put_u32(&mut out, self.deltas.len() as u32);
        for d in &self.deltas {
            put_u32(&mut out, d.edge);
            put_f64(&mut out, d.weight);
        }
        put_u32(&mut out, self.decisions.len() as u32);
        for d in &self.decisions {
            put_u32(&mut out, d.shard);
            put_u32(&mut out, d.edge);
            put_u8(&mut out, d.assign as u8);
            put_u32(&mut out, d.worker);
            put_u32(&mut out, d.task);
            put_f64(&mut out, d.weight);
        }
        out
    }

    /// Decodes a WAL payload. `f64` fields round-trip bit-for-bit.
    pub fn decode(payload: &[u8]) -> Result<BatchRecord, DecodeError> {
        let mut r = Reader::new(payload);
        let kind = r.u8()?;
        if kind != KIND_BATCH {
            return Err(DecodeError::BadKind(kind));
        }
        let seq = r.u64()?;
        let first_time = r.f64()?;
        let last_time = r.f64()?;
        let events = r.u32()?;
        let n_deltas = r.len_prefix(12)?;
        let mut deltas = Vec::with_capacity(n_deltas);
        for _ in 0..n_deltas {
            deltas.push(WeightDelta {
                edge: r.u32()?,
                weight: r.f64()?,
            });
        }
        let n_decisions = r.len_prefix(25)?;
        let mut decisions = Vec::with_capacity(n_decisions);
        for _ in 0..n_decisions {
            decisions.push(DecisionRecord {
                shard: r.u32()?,
                edge: r.u32()?,
                assign: r.u8()? != 0,
                worker: r.u32()?,
                task: r.u32()?,
                weight: r.f64()?,
            });
        }
        r.finish()?;
        Ok(BatchRecord {
            seq,
            first_time,
            last_time,
            events,
            deltas,
            decisions,
        })
    }
}

/// Everything journaled for one shard re-plan: the complete
/// post-migration shard structure (see the module docs for why the full
/// lists travel instead of a diff).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRecord {
    /// Sequence slot this record consumes (shared with batch records).
    pub seq: u64,
    /// Retained-weight fraction of the new plan at plan time (audit
    /// metadata; replay does not use it).
    pub retained_weight: f64,
    /// Workers whose home shard changed.
    pub moved_workers: u32,
    /// Tasks whose shard changed.
    pub moved_tasks: u32,
    /// Per shard (rescue overlay last, when present), the sorted universe
    /// edge ids assigned after the migration.
    pub shards: Vec<Vec<u32>>,
}

impl PlanRecord {
    /// Encodes the record into its WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        let edges: usize = self.shards.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(29 + 4 * self.shards.len() + 4 * edges);
        put_u8(&mut out, KIND_PLAN);
        put_u64(&mut out, self.seq);
        put_f64(&mut out, self.retained_weight);
        put_u32(&mut out, self.moved_workers);
        put_u32(&mut out, self.moved_tasks);
        put_u32(&mut out, self.shards.len() as u32);
        for shard in &self.shards {
            put_u32(&mut out, shard.len() as u32);
            for &e in shard {
                put_u32(&mut out, e);
            }
        }
        out
    }

    /// Decodes a WAL payload.
    pub fn decode(payload: &[u8]) -> Result<PlanRecord, DecodeError> {
        let mut r = Reader::new(payload);
        let kind = r.u8()?;
        if kind != KIND_PLAN {
            return Err(DecodeError::BadKind(kind));
        }
        let seq = r.u64()?;
        let retained_weight = r.f64()?;
        let moved_workers = r.u32()?;
        let moved_tasks = r.u32()?;
        let n_lists = r.len_prefix(4)?;
        let mut shards = Vec::with_capacity(n_lists);
        for _ in 0..n_lists {
            let n = r.len_prefix(4)?;
            let mut edges = Vec::with_capacity(n);
            for _ in 0..n {
                edges.push(r.u32()?);
            }
            shards.push(edges);
        }
        r.finish()?;
        Ok(PlanRecord {
            seq,
            retained_weight,
            moved_workers,
            moved_tasks,
            shards,
        })
    }
}

/// Everything journaled for one online pump: the per-event decisions the
/// incremental path made since the previous record. Replays exactly like
/// a batch record (weight deltas, then assignment deltas); the extra
/// metadata (`events`, `fallbacks`) is audit-only.
///
/// Online payload layout:
///
/// ```text
/// u8  kind (3 = online record)
/// u64 seq                    — shared sequence space with batch/plan
/// f64 time                   — arrival time of the last folded event
/// u32 events                 — events folded into this record
/// u32 fallbacks              — drift-fallback re-solves performed
/// u32 n_deltas,    n × { u32 edge, f64 weight }
/// u32 n_decisions, n × { u32 shard, u32 edge, u8 assign,
///                        u32 worker, u32 task, f64 weight }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineRecord {
    /// Sequence slot (shared with batch and plan records).
    pub seq: u64,
    /// Arrival time of the last event folded in (0 when empty).
    pub time: f64,
    /// Events folded into this record.
    pub events: u32,
    /// Drift-fallback exact re-solves performed within this record.
    pub fallbacks: u32,
    /// Weight updates applied, in application order.
    pub deltas: Vec<WeightDelta>,
    /// Assignment deltas emitted, in canonical log order.
    pub decisions: Vec<DecisionRecord>,
}

impl OnlineRecord {
    /// Encodes the record into its WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(33 + 12 * self.deltas.len() + 25 * self.decisions.len());
        put_u8(&mut out, KIND_ONLINE);
        put_u64(&mut out, self.seq);
        put_f64(&mut out, self.time);
        put_u32(&mut out, self.events);
        put_u32(&mut out, self.fallbacks);
        put_u32(&mut out, self.deltas.len() as u32);
        for d in &self.deltas {
            put_u32(&mut out, d.edge);
            put_f64(&mut out, d.weight);
        }
        put_u32(&mut out, self.decisions.len() as u32);
        for d in &self.decisions {
            put_u32(&mut out, d.shard);
            put_u32(&mut out, d.edge);
            put_u8(&mut out, d.assign as u8);
            put_u32(&mut out, d.worker);
            put_u32(&mut out, d.task);
            put_f64(&mut out, d.weight);
        }
        out
    }

    /// Decodes a WAL payload. `f64` fields round-trip bit-for-bit.
    pub fn decode(payload: &[u8]) -> Result<OnlineRecord, DecodeError> {
        let mut r = Reader::new(payload);
        let kind = r.u8()?;
        if kind != KIND_ONLINE {
            return Err(DecodeError::BadKind(kind));
        }
        let seq = r.u64()?;
        let time = r.f64()?;
        let events = r.u32()?;
        let fallbacks = r.u32()?;
        let n_deltas = r.len_prefix(12)?;
        let mut deltas = Vec::with_capacity(n_deltas);
        for _ in 0..n_deltas {
            deltas.push(WeightDelta {
                edge: r.u32()?,
                weight: r.f64()?,
            });
        }
        let n_decisions = r.len_prefix(25)?;
        let mut decisions = Vec::with_capacity(n_decisions);
        for _ in 0..n_decisions {
            decisions.push(DecisionRecord {
                shard: r.u32()?,
                edge: r.u32()?,
                assign: r.u8()? != 0,
                worker: r.u32()?,
                task: r.u32()?,
                weight: r.f64()?,
            });
        }
        r.finish()?;
        Ok(OnlineRecord {
            seq,
            time,
            events,
            fallbacks,
            deltas,
            decisions,
        })
    }
}

/// Any record the WAL can hold. The sequence numbering is shared: plan
/// and online records consume a slot exactly like batch records, so
/// replay and followers stay strictly sequential across all kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// One committed dispatch batch.
    Batch(BatchRecord),
    /// One shard re-plan (inline shard-structure snapshot).
    Plan(PlanRecord),
    /// One committed online pump (per-event decisions).
    Online(OnlineRecord),
}

impl WalRecord {
    /// The record's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            WalRecord::Batch(r) => r.seq,
            WalRecord::Plan(r) => r.seq,
            WalRecord::Online(r) => r.seq,
        }
    }

    /// Encodes the record into its WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WalRecord::Batch(r) => r.encode(),
            WalRecord::Plan(r) => r.encode(),
            WalRecord::Online(r) => r.encode(),
        }
    }

    /// Decodes any WAL payload by its kind tag.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, DecodeError> {
        match payload.first() {
            Some(&KIND_BATCH) => Ok(WalRecord::Batch(BatchRecord::decode(payload)?)),
            Some(&KIND_PLAN) => Ok(WalRecord::Plan(PlanRecord::decode(payload)?)),
            Some(&KIND_ONLINE) => Ok(WalRecord::Online(OnlineRecord::decode(payload)?)),
            Some(&k) => Err(DecodeError::BadKind(k)),
            None => Err(DecodeError::Truncated),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(seq: u64) -> BatchRecord {
        BatchRecord {
            seq,
            first_time: 0.25 * seq as f64,
            last_time: 0.25 * seq as f64 + 0.1,
            events: 3,
            deltas: vec![
                WeightDelta {
                    edge: 7,
                    weight: 0.5,
                },
                WeightDelta {
                    edge: 11,
                    weight: f64::MIN_POSITIVE,
                },
            ],
            decisions: vec![DecisionRecord {
                shard: 1,
                edge: 7,
                assign: true,
                worker: 3,
                task: 9,
                weight: 0.5,
            }],
        }
    }

    #[test]
    fn encode_decode_identity() {
        let rec = sample(42);
        let back = BatchRecord::decode(&rec.encode()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn empty_batch_round_trips() {
        let rec = BatchRecord {
            seq: 0,
            first_time: 0.0,
            last_time: 0.0,
            events: 0,
            deltas: vec![],
            decisions: vec![],
        };
        assert_eq!(BatchRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let good = sample(1).encode();
        // Every strict prefix is Truncated (or TrailingBytes never — the
        // cut always shortens).
        for cut in 0..good.len() {
            assert!(
                BatchRecord::decode(&good[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
        // Trailing garbage.
        let mut extra = good.clone();
        extra.push(0);
        assert_eq!(BatchRecord::decode(&extra), Err(DecodeError::TrailingBytes));
        // Wrong kind tag.
        let mut bad = good.clone();
        bad[0] = 0xEE;
        assert_eq!(BatchRecord::decode(&bad), Err(DecodeError::BadKind(0xEE)));
        // A corrupt delta count must not allocate or panic.
        let mut huge = good;
        huge[29..33].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(BatchRecord::decode(&huge), Err(DecodeError::Truncated));
    }

    fn sample_plan(seq: u64) -> PlanRecord {
        PlanRecord {
            seq,
            retained_weight: 0.875,
            moved_workers: 12,
            moved_tasks: 7,
            shards: vec![vec![1, 5, 9], vec![], vec![2, 3]],
        }
    }

    #[test]
    fn plan_record_round_trips() {
        let rec = sample_plan(17);
        assert_eq!(PlanRecord::decode(&rec.encode()).unwrap(), rec);
        // Every strict prefix fails, never panics.
        let bytes = rec.encode();
        for cut in 0..bytes.len() {
            assert!(PlanRecord::decode(&bytes[..cut]).is_err());
        }
    }

    pub(crate) fn sample_online(seq: u64) -> OnlineRecord {
        OnlineRecord {
            seq,
            time: 1.5 + seq as f64,
            events: 1,
            fallbacks: u32::from(seq.is_multiple_of(4)),
            deltas: vec![WeightDelta {
                edge: 3,
                weight: 0.75,
            }],
            decisions: vec![
                DecisionRecord {
                    shard: 0,
                    edge: 3,
                    assign: false,
                    worker: 1,
                    task: 2,
                    weight: 0.2,
                },
                DecisionRecord {
                    shard: 0,
                    edge: 5,
                    assign: true,
                    worker: 1,
                    task: 4,
                    weight: 0.75,
                },
            ],
        }
    }

    #[test]
    fn online_record_round_trips_and_rejects_malformed() {
        let rec = sample_online(9);
        let bytes = rec.encode();
        assert_eq!(OnlineRecord::decode(&bytes).unwrap(), rec);
        for cut in 0..bytes.len() {
            assert!(
                OnlineRecord::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert_eq!(
            OnlineRecord::decode(&extra),
            Err(DecodeError::TrailingBytes)
        );
        // A corrupt delta count must not allocate or panic (count sits
        // after kind + seq + time + events + fallbacks = 25 bytes).
        let mut huge = bytes;
        huge[25..29].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(OnlineRecord::decode(&huge), Err(DecodeError::Truncated));
    }

    #[test]
    fn wal_record_dispatches_on_kind() {
        let b = WalRecord::Batch(sample(3));
        let p = WalRecord::Plan(sample_plan(4));
        let o = WalRecord::Online(sample_online(5));
        assert_eq!(WalRecord::decode(&b.encode()).unwrap(), b);
        assert_eq!(WalRecord::decode(&p.encode()).unwrap(), p);
        assert_eq!(WalRecord::decode(&o.encode()).unwrap(), o);
        assert_eq!(b.seq(), 3);
        assert_eq!(p.seq(), 4);
        assert_eq!(o.seq(), 5);
        assert_eq!(WalRecord::decode(&[9]), Err(DecodeError::BadKind(9)));
        assert_eq!(WalRecord::decode(&[]), Err(DecodeError::Truncated));
    }
}
