//! The WAL payload: one [`BatchRecord`] per committed dispatch batch.
//!
//! A record is everything needed to roll the sharded assignment state
//! forward by one batch, starting from any state that reflects the
//! batches before it: the weight updates the batch applied and the
//! assignment deltas it emitted. Event-range metadata (`first_time` /
//! `last_time` / `events`) ties the record back to the input trace for
//! auditing; it is not needed to replay state.
//!
//! Payload layout (all little-endian, `f64` as raw bits):
//!
//! ```text
//! u8  kind (1 = batch record)
//! u64 seq                    — 0-based batch sequence number
//! f64 first_time, f64 last_time
//! u32 events                 — events in the batch (incl. invalid ones)
//! u32 n_deltas,    n × { u32 edge, f64 weight }
//! u32 n_decisions, n × { u32 shard, u32 edge, u8 assign,
//!                        u32 worker, u32 task, f64 weight }
//! ```

use crate::codec::{put_f64, put_u32, put_u64, put_u8, Reader};
use std::fmt;

/// Payload kind tag for a batch record.
pub const KIND_BATCH: u8 = 1;

/// A benefit-weight update applied during the batch, in universe edge ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightDelta {
    /// Universe edge id.
    pub edge: u32,
    /// The new live weight.
    pub weight: f64,
}

/// One emitted assignment delta, mirroring the service's decision struct
/// (this crate sits below the service, so it carries its own copy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRecord {
    /// Shard that made the change.
    pub shard: u32,
    /// Universe edge id.
    pub edge: u32,
    /// `true` = the edge entered the assignment, `false` = it left.
    pub assign: bool,
    /// Universe worker id.
    pub worker: u32,
    /// Universe task id.
    pub task: u32,
    /// Edge weight at decision time.
    pub weight: f64,
}

/// Everything journaled for one committed batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// 0-based batch sequence number; WAL records are strictly ascending.
    pub seq: u64,
    /// Arrival time of the batch's first event (0 when empty).
    pub first_time: f64,
    /// Arrival time of the batch's last event (0 when empty).
    pub last_time: f64,
    /// Events the batch contained.
    pub events: u32,
    /// Weight updates applied, in application order.
    pub deltas: Vec<WeightDelta>,
    /// Assignment deltas emitted, in canonical log order.
    pub decisions: Vec<DecisionRecord>,
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the format said it would.
    Truncated,
    /// The payload's kind tag is not one this version understands.
    BadKind(u8),
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::BadKind(k) => write!(f, "unknown payload kind {k}"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl BatchRecord {
    /// Encodes the record into its WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(37 + 12 * self.deltas.len() + 25 * self.decisions.len());
        put_u8(&mut out, KIND_BATCH);
        put_u64(&mut out, self.seq);
        put_f64(&mut out, self.first_time);
        put_f64(&mut out, self.last_time);
        put_u32(&mut out, self.events);
        put_u32(&mut out, self.deltas.len() as u32);
        for d in &self.deltas {
            put_u32(&mut out, d.edge);
            put_f64(&mut out, d.weight);
        }
        put_u32(&mut out, self.decisions.len() as u32);
        for d in &self.decisions {
            put_u32(&mut out, d.shard);
            put_u32(&mut out, d.edge);
            put_u8(&mut out, d.assign as u8);
            put_u32(&mut out, d.worker);
            put_u32(&mut out, d.task);
            put_f64(&mut out, d.weight);
        }
        out
    }

    /// Decodes a WAL payload. `f64` fields round-trip bit-for-bit.
    pub fn decode(payload: &[u8]) -> Result<BatchRecord, DecodeError> {
        let mut r = Reader::new(payload);
        let kind = r.u8()?;
        if kind != KIND_BATCH {
            return Err(DecodeError::BadKind(kind));
        }
        let seq = r.u64()?;
        let first_time = r.f64()?;
        let last_time = r.f64()?;
        let events = r.u32()?;
        let n_deltas = r.len_prefix(12)?;
        let mut deltas = Vec::with_capacity(n_deltas);
        for _ in 0..n_deltas {
            deltas.push(WeightDelta {
                edge: r.u32()?,
                weight: r.f64()?,
            });
        }
        let n_decisions = r.len_prefix(25)?;
        let mut decisions = Vec::with_capacity(n_decisions);
        for _ in 0..n_decisions {
            decisions.push(DecisionRecord {
                shard: r.u32()?,
                edge: r.u32()?,
                assign: r.u8()? != 0,
                worker: r.u32()?,
                task: r.u32()?,
                weight: r.f64()?,
            });
        }
        r.finish()?;
        Ok(BatchRecord {
            seq,
            first_time,
            last_time,
            events,
            deltas,
            decisions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(seq: u64) -> BatchRecord {
        BatchRecord {
            seq,
            first_time: 0.25 * seq as f64,
            last_time: 0.25 * seq as f64 + 0.1,
            events: 3,
            deltas: vec![
                WeightDelta {
                    edge: 7,
                    weight: 0.5,
                },
                WeightDelta {
                    edge: 11,
                    weight: f64::MIN_POSITIVE,
                },
            ],
            decisions: vec![DecisionRecord {
                shard: 1,
                edge: 7,
                assign: true,
                worker: 3,
                task: 9,
                weight: 0.5,
            }],
        }
    }

    #[test]
    fn encode_decode_identity() {
        let rec = sample(42);
        let back = BatchRecord::decode(&rec.encode()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn empty_batch_round_trips() {
        let rec = BatchRecord {
            seq: 0,
            first_time: 0.0,
            last_time: 0.0,
            events: 0,
            deltas: vec![],
            decisions: vec![],
        };
        assert_eq!(BatchRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let good = sample(1).encode();
        // Every strict prefix is Truncated (or TrailingBytes never — the
        // cut always shortens).
        for cut in 0..good.len() {
            assert!(
                BatchRecord::decode(&good[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
        // Trailing garbage.
        let mut extra = good.clone();
        extra.push(0);
        assert_eq!(BatchRecord::decode(&extra), Err(DecodeError::TrailingBytes));
        // Wrong kind tag.
        let mut bad = good.clone();
        bad[0] = 0xEE;
        assert_eq!(BatchRecord::decode(&bad), Err(DecodeError::BadKind(0xEE)));
        // A corrupt delta count must not allocate or panic.
        let mut huge = good;
        huge[29..33].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(BatchRecord::decode(&huge), Err(DecodeError::Truncated));
    }
}
