//! CRC-framed, length-prefixed records: the byte layout both the WAL and
//! snapshot files are built from.
//!
//! ```text
//! +----------------+----------------+=================+
//! | len: u32 LE    | crc32: u32 LE  | payload (len B) |
//! +----------------+----------------+=================+
//! ```
//!
//! `crc32` covers the payload only. A reader walks frames sequentially;
//! the first frame that fails any check — header cut short, declared
//! length running past the buffer, length above [`MAX_FRAME`], or CRC
//! mismatch — marks the **durable end** of the stream. Everything before
//! it is intact (CRC-verified); everything from it on is a torn or corrupt
//! tail that recovery truncates. This is what makes a `kill -9` mid-write
//! lose at most the one record that was in flight.

use crate::crc::crc32;

/// Bytes of frame header (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single frame's payload. Nothing legitimate comes
/// close (a batch record is a few KiB, a snapshot a few MiB); a declared
/// length above this is corruption, not data, and must not drive an
/// allocation.
pub const MAX_FRAME: usize = 1 << 28; // 256 MiB

/// Appends one framed payload to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Outcome of reading one frame at `offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameRead<'a> {
    /// A whole, CRC-verified frame; the next frame starts at `next`.
    Frame {
        /// The verified payload.
        payload: &'a [u8],
        /// Byte offset of the following frame.
        next: usize,
    },
    /// `offset` is exactly the end of the buffer: a clean end of stream.
    End,
    /// The bytes at `offset` are not a whole valid frame (torn header,
    /// truncated payload, oversize length, or CRC mismatch). The stream's
    /// durable contents end here.
    Bad {
        /// Why the frame was rejected.
        kind: BadFrame,
    },
}

/// Why a frame failed to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BadFrame {
    /// Fewer than [`FRAME_HEADER`] bytes remain, or the declared payload
    /// runs past the end of the buffer — an interrupted append.
    Torn,
    /// The declared length exceeds [`MAX_FRAME`], or the CRC does not
    /// match — bytes were damaged, not merely cut short.
    Corrupt,
}

/// Reads the frame starting at `offset` in `buf`.
pub fn read_frame(buf: &[u8], offset: usize) -> FrameRead<'_> {
    if offset == buf.len() {
        return FrameRead::End;
    }
    if buf.len() - offset < FRAME_HEADER {
        return FrameRead::Bad {
            kind: BadFrame::Torn,
        };
    }
    let len = u32::from_le_bytes(buf[offset..offset + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[offset + 4..offset + 8].try_into().unwrap());
    if len > MAX_FRAME {
        return FrameRead::Bad {
            kind: BadFrame::Corrupt,
        };
    }
    let start = offset + FRAME_HEADER;
    if buf.len() - start < len {
        return FrameRead::Bad {
            kind: BadFrame::Torn,
        };
    }
    let payload = &buf[start..start + len];
    if crc32(payload) != crc {
        return FrameRead::Bad {
            kind: BadFrame::Corrupt,
        };
    }
    FrameRead::Frame {
        payload,
        next: start + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_two_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha");
        write_frame(&mut buf, b"");
        let FrameRead::Frame { payload, next } = read_frame(&buf, 0) else {
            panic!("first frame unreadable");
        };
        assert_eq!(payload, b"alpha");
        let FrameRead::Frame { payload, next } = read_frame(&buf, next) else {
            panic!("empty frame unreadable");
        };
        assert_eq!(payload, b"");
        assert_eq!(read_frame(&buf, next), FrameRead::End);
    }

    #[test]
    fn torn_tail_at_every_cut_point() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first");
        let good = buf.len();
        write_frame(&mut buf, b"second record payload");
        // Chopping anywhere inside the second frame leaves the first frame
        // readable and reports the tail as bad, never panicking.
        for cut in good..buf.len() {
            let chopped = &buf[..cut];
            let FrameRead::Frame { next, .. } = read_frame(chopped, 0) else {
                panic!("prefix frame lost at cut {cut}");
            };
            if cut == good {
                assert_eq!(read_frame(chopped, next), FrameRead::End);
            } else {
                assert!(
                    matches!(read_frame(chopped, next), FrameRead::Bad { .. }),
                    "cut {cut} not flagged"
                );
            }
        }
    }

    #[test]
    fn corrupt_payload_and_oversize_len_are_flagged() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload");
        buf[FRAME_HEADER] ^= 0x40; // flip a payload bit
        assert_eq!(
            read_frame(&buf, 0),
            FrameRead::Bad {
                kind: BadFrame::Corrupt
            }
        );

        let mut huge = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0u8; 12]);
        assert_eq!(
            read_frame(&huge, 0),
            FrameRead::Bad {
                kind: BadFrame::Corrupt
            }
        );
    }
}
