//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! The checksum every frame in the WAL and snapshot files carries. A
//! table-driven byte-at-a-time implementation is plenty: framing cost is
//! dominated by the `write`/`fsync` behind it, and keeping the crate
//! zero-dependency matters more than the last GB/s of checksum speed.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `bytes` (IEEE, init/final XOR `0xFFFFFFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"mbta store frame");
        let mut bytes = b"mbta store frame".to_vec();
        for i in 0..bytes.len() {
            for bit in 0..8u8 {
                bytes[i] ^= 1 << bit;
                assert_ne!(crc32(&bytes), base, "flip at byte {i} bit {bit} undetected");
                bytes[i] ^= 1 << bit;
            }
        }
    }
}
