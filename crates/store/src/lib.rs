//! `mbta-store`: durable dispatch state for the streaming service.
//!
//! The dispatch service's state — sharded incremental assignments, live
//! edge weights, the batch watermark — lives in memory; this crate makes
//! it survive process death. Assignments already announced to workers and
//! requesters are *commitments* (the win-win/no-rejection setting of the
//! source paper), so recovery must restore exactly the matching that was
//! emitted, not re-decide it. The design is the classic checkpoint +
//! journal pair, with zero external dependencies:
//!
//! * [`wal`] — an append-only **write-ahead log** of CRC32-framed,
//!   length-prefixed records, one [`record::BatchRecord`] per committed
//!   batch (event range, applied weight deltas, emitted decisions).
//!   Segmented files, configurable [`wal::FsyncPolicy`]
//!   (`always`/`batch`/`never`).
//! * [`snapshot`] — periodic **snapshots** of the full sharded assignment
//!   state ([`snapshot::SnapshotState`]), written atomically
//!   (tmp + rename) so a crash mid-snapshot can never shadow a good one.
//! * [`store`] — [`store::DurableStore`] glues them together: journal a
//!   batch *before* its decisions reach the sink, snapshot every N
//!   batches, compact WAL segments older than the newest snapshot.
//! * **Recovery** ([`store::recover`]) = load the latest *valid* snapshot,
//!   then replay the WAL tail. Torn or corrupt tail frames are tolerated by
//!   truncating at the first bad frame — only the incomplete suffix is
//!   lost, never a committed prefix.
//! * [`tail`] — the replication read path: [`tail::WalTail`] polls the
//!   same directory a live primary is appending to and feeds a warm
//!   [`tail::FollowerState`], the mechanism behind `mbta follow` and
//!   kill -9 failover. Includes the heartbeat-file liveness helpers.
//!
//! Everything on disk is little-endian and versioned; [`frame`] holds the
//! shared `[len | crc32 | payload]` framing and [`record`]/[`snapshot`]
//! the payload codecs. See DESIGN.md §11 for format diagrams, recovery
//! invariants, and the fsync trade-off table.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod codec;
pub mod crc;
pub mod frame;
pub mod record;
pub mod snapshot;
pub mod store;
pub mod tail;
pub mod wal;

pub use crc::crc32;
pub use frame::{read_frame, write_frame, BadFrame, FrameRead};
pub use record::{
    BatchRecord, DecisionRecord, DecodeError, OnlineRecord, PlanRecord, WalRecord, WeightDelta,
};
pub use snapshot::SnapshotState;
pub use store::{recover, DurableStore, RecoveredState, StoreConfig, StoreStats};
pub use tail::{
    heartbeat_age, heartbeat_touch, FollowerState, TailPoll, TailStatus, WalTail, HEARTBEAT_FILE,
};
pub use wal::{FsyncPolicy, Wal, WalConfig, WalReplay};
