//! Tail-following reads: the replication half of the store.
//!
//! A follower process watches a primary's WAL directory and keeps a warm
//! copy of the dispatch state without ever writing to the directory:
//!
//! * [`WalTail`] — a cursor over the segment files that can be polled
//!   repeatedly. Each poll returns the batch records that became durable
//!   since the last poll, using the same frame acceptance rules as
//!   recovery: the first torn or corrupt frame ends the readable prefix.
//!   While the primary is alive a bad frame is *in flight*, not final —
//!   the cursor parks on it and the next poll re-reads, so a half-written
//!   append is picked up once the primary finishes it.
//! * [`FollowerState`] — the incremental mirror of
//!   [`crate::store::RecoveredState`]: applies records one at a time with
//!   exactly the fold recovery uses, so `follower state at watermark W ==
//!   recover() at watermark W` by construction.
//! * [`heartbeat_touch`] / [`heartbeat_age`] — the liveness protocol. The
//!   primary touches `heartbeat` in the WAL directory while it runs; a
//!   follower treats a stale mtime as the first (necessary, not
//!   sufficient) signal of primary death. See DESIGN.md §12 for the full
//!   promotion gate.

use crate::record::WalRecord;
use crate::snapshot::SnapshotState;
use crate::store::{apply_online, apply_plan, apply_record, RecoveredState};
use crate::wal::segment_files;
use crate::{read_frame, FrameRead};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Name of the liveness file a serving primary touches inside its WAL
/// directory. Carries no payload — only its mtime matters.
pub const HEARTBEAT_FILE: &str = "heartbeat";

/// Touches the heartbeat file in `dir`, creating it if needed. Called
/// periodically by a serving primary; the write is tiny and unsynced on
/// purpose (liveness, not durability).
pub fn heartbeat_touch(dir: &Path) -> io::Result<()> {
    fs::write(dir.join(HEARTBEAT_FILE), b"alive\n")
}

/// Age of the heartbeat in `dir` per its mtime, or `None` when the file
/// does not exist yet. A clock skew or mtime older than the epoch reads
/// as zero age (never falsely stale).
pub fn heartbeat_age(dir: &Path) -> io::Result<Option<Duration>> {
    let path = dir.join(HEARTBEAT_FILE);
    let meta = match fs::metadata(&path) {
        Ok(m) => m,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let age = meta.modified()?.elapsed().unwrap_or(Duration::from_secs(0));
    Ok(Some(age))
}

/// How a [`WalTail::poll`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// Every durable record up to the end of the log was returned; the
    /// cursor is caught up.
    Clean,
    /// The cursor is parked on a torn or corrupt frame (or an undecodable
    /// payload). While the writer lives this may be an append in flight —
    /// poll again. Once the writer is known dead it is the final torn
    /// tail, exactly what recovery would truncate.
    Blocked,
    /// The record the cursor expects next no longer exists on disk: the
    /// primary compacted past the follower (or the directory lost data).
    /// The follower must restart from the latest snapshot.
    Gap,
}

/// One incremental read of the log tail.
#[derive(Debug, Clone, PartialEq)]
pub struct TailPoll {
    /// Records that became durable since the previous poll, in `seq`
    /// order, starting at the tail's next expected sequence number.
    pub records: Vec<WalRecord>,
    /// How the read ended.
    pub status: TailStatus,
    /// Bytes from the blocking frame to the end of its segment when
    /// `status == Blocked` (the would-be truncation), else 0.
    pub blocked_bytes: u64,
}

/// A poll-based incremental reader of a WAL directory.
///
/// The tail never writes; it is safe to run against a directory a live
/// [`crate::store::DurableStore`] is appending to. Segment files are
/// re-read from the cursor's segment on every poll, so an append that
/// completes between polls is observed exactly once.
#[derive(Debug)]
pub struct WalTail {
    dir: PathBuf,
    /// Next record sequence number the tail expects to return.
    next_seq: u64,
}

impl WalTail {
    /// A tail positioned at the very start of the log (sequence 0).
    pub fn new(dir: &Path) -> WalTail {
        WalTail::resume_from(dir, 0)
    }

    /// A tail that resumes at `watermark` — records with `seq <
    /// watermark` (covered by a snapshot the caller already loaded) are
    /// skipped, never returned.
    pub fn resume_from(dir: &Path, watermark: u64) -> WalTail {
        WalTail {
            dir: dir.to_path_buf(),
            next_seq: watermark,
        }
    }

    /// The sequence number the next returned record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Reads every record that became durable since the last poll.
    ///
    /// Damaged data never fails the poll (it parks the cursor, see
    /// [`TailStatus`]); real I/O errors are returned.
    pub fn poll(&mut self) -> io::Result<TailPoll> {
        let mut out = TailPoll {
            records: Vec::new(),
            status: TailStatus::Clean,
            blocked_bytes: 0,
        };
        loop {
            let segs = segment_files(&self.dir)?;
            // (Re)resolve the cursor: the segment that holds `next_seq`
            // is the last one starting at or below it. The previous
            // cursor segment may have been compacted away after we
            // consumed it — resolving fresh each round handles that.
            let home = segs.iter().rev().find(|(first, _)| *first <= self.next_seq);
            let Some((first_seq, path)) = home else {
                if segs.is_empty() {
                    // Nothing written yet (or everything compacted into a
                    // snapshot at exactly our watermark): caught up.
                    return Ok(out);
                }
                // Every surviving segment starts beyond us: the records
                // we still need are gone.
                out.status = TailStatus::Gap;
                return Ok(out);
            };
            let (first_seq, path) = (*first_seq, path.clone());
            let buf = match fs::read(&path) {
                Ok(b) => b,
                // Compacted between the listing and the read: retry the
                // resolution with a fresh listing.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            let mut offset = 0usize;
            loop {
                match read_frame(&buf, offset) {
                    FrameRead::End => break,
                    FrameRead::Frame { payload, next } => match WalRecord::decode(payload) {
                        Ok(rec) if rec.seq() < self.next_seq => offset = next,
                        Ok(rec) if rec.seq() == self.next_seq => {
                            out.records.push(rec);
                            self.next_seq += 1;
                            offset = next;
                        }
                        Ok(_) => {
                            out.status = TailStatus::Gap;
                            return Ok(out);
                        }
                        Err(_) => {
                            // CRC-valid frame with an undecodable payload:
                            // same treatment recovery gives it — the
                            // durable prefix ends here.
                            out.status = TailStatus::Blocked;
                            out.blocked_bytes = (buf.len() - offset) as u64;
                            return Ok(out);
                        }
                    },
                    FrameRead::Bad { .. } => {
                        out.status = TailStatus::Blocked;
                        out.blocked_bytes = (buf.len() - offset) as u64;
                        return Ok(out);
                    }
                }
            }
            // Segment read cleanly to its end. Did the writer roll to a
            // segment past this one? If a later segment now holds
            // `next_seq`, loop and follow it; otherwise this is the live
            // tail — caught up.
            let rolled = segment_files(&self.dir)?
                .iter()
                .any(|(first, _)| *first > first_seq && *first <= self.next_seq);
            if !rolled {
                return Ok(out);
            }
        }
    }
}

/// A warm, incrementally-maintained mirror of the primary's dispatch
/// state, fed by [`WalTail::poll`].
///
/// Applies each record with the exact fold recovery uses
/// ([`crate::store::recover`]), so at any watermark the follower state is
/// byte-for-byte the state a fresh recovery of the same prefix would
/// produce.
#[derive(Debug, Clone, Default)]
pub struct FollowerState {
    shards: Vec<BTreeSet<u32>>,
    weights: Vec<f64>,
    watermark: u64,
    records_applied: u64,
}

impl FollowerState {
    /// An empty state at watermark 0.
    pub fn new() -> FollowerState {
        FollowerState::default()
    }

    /// Seeds the mirror from a recovery of the primary's directory
    /// (snapshot + durable WAL prefix). Pair with
    /// [`WalTail::resume_from`] at the same watermark.
    pub fn from_recovered(state: &RecoveredState) -> FollowerState {
        FollowerState {
            shards: state
                .shards
                .iter()
                .map(|s| s.iter().copied().collect())
                .collect(),
            weights: state.weights.clone(),
            watermark: state.watermark,
            records_applied: 0,
        }
    }

    /// Folds one record in. Records must arrive in sequence.
    pub fn apply(&mut self, rec: &WalRecord) {
        assert_eq!(
            rec.seq(),
            self.watermark,
            "follower records must be sequential (got seq {}, expected {})",
            rec.seq(),
            self.watermark
        );
        match rec {
            WalRecord::Batch(rec) => apply_record(&mut self.shards, &mut self.weights, rec),
            WalRecord::Plan(rec) => apply_plan(&mut self.shards, rec),
            WalRecord::Online(rec) => apply_online(&mut self.shards, &mut self.weights, rec),
        }
        self.watermark += 1;
        self.records_applied += 1;
    }

    /// Batches folded in so far.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Records applied through [`FollowerState::apply`] (excludes the
    /// seeded snapshot/replay prefix).
    pub fn records_applied(&self) -> u64 {
        self.records_applied
    }

    /// Number of assigned edges across all shards.
    pub fn assignments(&self) -> usize {
        self.shards.iter().map(BTreeSet::len).sum()
    }

    /// Total retained weight over assigned edges.
    pub fn total_weight(&self) -> f64 {
        let mut total = 0.0;
        for shard in &self.shards {
            for &e in shard {
                total += self.weights.get(e as usize).copied().unwrap_or(0.0);
            }
        }
        total
    }

    /// The mirror as a [`RecoveredState`] (for validation paths that
    /// already consume recovery output).
    pub fn to_recovered(&self) -> RecoveredState {
        RecoveredState {
            watermark: self.watermark,
            snapshot_watermark: None,
            records_replayed: self.records_applied,
            truncated_bytes: 0,
            shards: self
                .shards
                .iter()
                .map(|s| s.iter().copied().collect())
                .collect(),
            weights: self.weights.clone(),
        }
    }

    /// The mirror as a snapshot payload (written at promotion so the next
    /// recovery starts warm).
    pub fn to_snapshot(&self) -> SnapshotState {
        SnapshotState {
            watermark: self.watermark,
            shards: self
                .shards
                .iter()
                .map(|s| s.iter().copied().collect())
                .collect(),
            weights: self.weights.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BatchRecord, DecisionRecord, PlanRecord, WeightDelta};
    use crate::store::{recover, DurableStore, StoreConfig};
    use crate::wal;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mbta-store-tail-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Same deterministic workload the store tests use.
    fn rec(seq: u64) -> BatchRecord {
        let mut decisions = vec![DecisionRecord {
            shard: (seq % 2) as u32,
            edge: seq as u32,
            assign: true,
            worker: seq as u32,
            task: seq as u32,
            weight: 1.0 + seq as f64,
        }];
        if seq >= 3 {
            let old = seq - 3;
            decisions.push(DecisionRecord {
                shard: (old % 2) as u32,
                edge: old as u32,
                assign: false,
                worker: old as u32,
                task: old as u32,
                weight: 1.0 + old as f64,
            });
        }
        BatchRecord {
            seq,
            first_time: seq as f64,
            last_time: seq as f64 + 0.25,
            events: 1,
            deltas: vec![WeightDelta {
                edge: seq as u32,
                weight: 1.0 + seq as f64,
            }],
            decisions,
        }
    }

    #[test]
    fn tail_follows_appends_incrementally() {
        let dir = tmp("incremental");
        let (mut store, _) = DurableStore::open(&dir, StoreConfig::default()).unwrap();
        let mut tail = WalTail::new(&dir);
        let mut follower = FollowerState::new();

        for seq in 0..3 {
            store.commit(&rec(seq)).unwrap();
        }
        let p = tail.poll().unwrap();
        assert_eq!(p.status, TailStatus::Clean);
        assert_eq!(p.records.len(), 3);
        p.records.iter().for_each(|r| follower.apply(r));

        for seq in 3..7 {
            store.commit(&rec(seq)).unwrap();
        }
        let p = tail.poll().unwrap();
        assert_eq!(p.records.len(), 4);
        p.records.iter().for_each(|r| follower.apply(r));

        // Caught up: the next poll is empty and clean.
        let p = tail.poll().unwrap();
        assert!(p.records.is_empty());
        assert_eq!(p.status, TailStatus::Clean);

        // The mirror equals a fresh recovery of the same prefix.
        drop(store);
        let recovered = recover(&dir).unwrap();
        assert_eq!(follower.watermark(), recovered.watermark);
        assert_eq!(follower.to_recovered().shards, recovered.shards);
        assert!((follower.total_weight() - recovered.total_weight()).abs() < 1e-12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_crosses_segment_rolls() {
        let dir = tmp("roll");
        let cfg = StoreConfig {
            segment_bytes: 96, // force several segments
            snapshot_every: 0,
            ..StoreConfig::default()
        };
        let (mut store, _) = DurableStore::open(&dir, cfg).unwrap();
        let mut tail = WalTail::new(&dir);
        for seq in 0..10 {
            store.commit(&rec(seq)).unwrap();
        }
        assert!(wal::segment_files(&dir).unwrap().len() > 1);
        let p = tail.poll().unwrap();
        assert_eq!(p.status, TailStatus::Clean);
        assert_eq!(
            p.records.iter().map(|r| r.seq()).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_inflight_append_blocks_then_completes() {
        let dir = tmp("torn");
        let (mut store, _) = DurableStore::open(&dir, StoreConfig::default()).unwrap();
        store.commit(&rec(0)).unwrap();
        drop(store);
        // Simulate an append caught mid-write: a full record plus a
        // truncated frame on the active segment.
        let (_, path) = wal::segment_files(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let intact = bytes.len();
        let mut frame = Vec::new();
        crate::write_frame(&mut frame, &rec(1).encode());
        bytes.extend_from_slice(&frame[..frame.len() - 4]);
        fs::write(&path, &bytes).unwrap();

        let mut tail = WalTail::new(&dir);
        let p = tail.poll().unwrap();
        assert_eq!(p.records.len(), 1);
        assert_eq!(p.status, TailStatus::Blocked);
        assert!(p.blocked_bytes > 0);

        // The writer finishes the append: the same cursor now reads it.
        let mut whole = fs::read(&path).unwrap();
        whole.truncate(intact);
        whole.extend_from_slice(&frame);
        fs::write(&path, &whole).unwrap();
        let p = tail.poll().unwrap();
        assert_eq!(p.status, TailStatus::Clean);
        assert_eq!(p.records.len(), 1);
        assert_eq!(p.records[0].seq(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_from_snapshot_skips_covered_records() {
        let dir = tmp("resume");
        let cfg = StoreConfig {
            snapshot_every: 4,
            ..StoreConfig::default()
        };
        let (mut store, _) = DurableStore::open(&dir, cfg).unwrap();
        for seq in 0..6 {
            store.commit(&rec(seq)).unwrap();
            if store.snapshot_due() {
                let snap = recover(&dir).unwrap().to_snapshot();
                store.snapshot(&snap).unwrap();
            }
        }
        drop(store);
        let base = recover(&dir).unwrap();
        assert_eq!(base.snapshot_watermark, Some(4));
        let mut follower = FollowerState::from_recovered(&base);
        let mut tail = WalTail::resume_from(&dir, base.watermark);
        let p = tail.poll().unwrap();
        assert_eq!(p.status, TailStatus::Clean);
        assert!(p.records.is_empty(), "tail replayed covered records");

        // New appends continue from the recovered watermark.
        let (mut store, _) = DurableStore::open(&dir, StoreConfig::default()).unwrap();
        store.commit(&rec(6)).unwrap();
        let p = tail.poll().unwrap();
        assert_eq!(p.records.len(), 1);
        assert_eq!(p.records[0].seq(), 6);
        p.records.iter().for_each(|r| follower.apply(r));
        assert_eq!(follower.watermark(), 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compacted_past_follower_reports_gap() {
        let dir = tmp("gap");
        let cfg = StoreConfig {
            segment_bytes: 96,
            snapshot_every: 0,
            ..StoreConfig::default()
        };
        let (mut store, _) = DurableStore::open(&dir, cfg).unwrap();
        for seq in 0..10 {
            store.commit(&rec(seq)).unwrap();
        }
        // A follower that never polled; the primary snapshots at the tip
        // and compacts everything behind it.
        let mut tail = WalTail::new(&dir);
        let snap = recover(&dir).unwrap().to_snapshot();
        store.snapshot(&snap).unwrap();
        store.commit(&rec(10)).unwrap();
        drop(store);
        let p = tail.poll().unwrap();
        // Either the surviving segment still reaches back to seq 0 (no
        // roll removed) or the tail reports the gap; with forced rolls the
        // early segments are gone.
        assert_eq!(p.status, TailStatus::Gap);
        assert!(p.records.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn follower_replays_plan_frames() {
        let dir = tmp("plan");
        let (mut store, _) = DurableStore::open(&dir, StoreConfig::default()).unwrap();
        let mut tail = WalTail::new(&dir);
        let mut follower = FollowerState::new();
        for seq in 0..3 {
            store.commit(&rec(seq)).unwrap();
        }
        // A migration swaps shards 0 and 1 at seq 3; batches continue.
        let pre = recover(&dir).unwrap();
        let plan = PlanRecord {
            seq: 3,
            retained_weight: pre.total_weight(),
            moved_workers: 1,
            moved_tasks: 1,
            shards: vec![pre.shards[1].clone(), pre.shards[0].clone()],
        };
        store.commit_plan(&plan).unwrap();
        store.commit(&rec(4)).unwrap();
        let p = tail.poll().unwrap();
        assert_eq!(p.status, TailStatus::Clean);
        assert_eq!(p.records.len(), 5);
        p.records.iter().for_each(|r| follower.apply(r));
        assert_eq!(follower.watermark(), 5);
        // The mirror equals a fresh recovery across the plan boundary.
        drop(store);
        let recovered = recover(&dir).unwrap();
        assert_eq!(follower.to_recovered().shards, recovered.shards);
        assert!((follower.total_weight() - recovered.total_weight()).abs() < 1e-12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn heartbeat_roundtrip() {
        let dir = tmp("heartbeat");
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(heartbeat_age(&dir).unwrap(), None);
        heartbeat_touch(&dir).unwrap();
        let age = heartbeat_age(&dir).unwrap().expect("heartbeat exists");
        assert!(age < Duration::from_secs(10));
        // The heartbeat file is invisible to snapshot/segment listings.
        assert!(wal::segment_files(&dir).unwrap().is_empty());
        assert!(crate::snapshot::snapshot_files(&dir).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
