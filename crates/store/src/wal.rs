//! Segmented append-only write-ahead log.
//!
//! A WAL directory holds segment files named `wal-<first_seq:020>.seg`
//! (the zero-padded first batch sequence number in the segment, so
//! lexicographic order is numeric order). Each segment is a run of CRC
//! frames (see [`crate::frame`]) whose payloads are encoded
//! [`WalRecord`]s — batch decisions or shard-plan migrations, sharing a
//! single strictly ascending `seq` space. A new segment starts
//! when the current one crosses [`WalConfig::segment_bytes`]; compaction
//! deletes whole segments whose records all fall at or below a snapshot
//! watermark.
//!
//! Durability is governed by [`FsyncPolicy`]: `always` fsyncs after every
//! append (a crash loses at most the in-flight record), `batch` fsyncs
//! every [`WalConfig::batch_fsync_every`] appends (bounded loss, much
//! cheaper), `never` leaves flushing to the OS (benchmarks only).
//!
//! Orthogonally, [`WalConfig::group_every`] enables **group commit**:
//! encoded frames accumulate in an in-memory buffer and reach the file
//! in one `write` per window (and exactly one fsync, when the policy
//! fsyncs at all) instead of one syscall per record. The default window
//! of 1 is plain write-through; larger windows trade a wider crash-loss
//! window — bounded by the same fsync cadence that already bounds
//! `batch` — for far fewer syscalls on the per-event online path.

use crate::frame::{read_frame, write_frame, FrameRead};
use crate::record::{BatchRecord, OnlineRecord, PlanRecord, WalRecord};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// When the WAL calls `fsync` on the active segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every appended record. Strongest guarantee: a crash
    /// loses at most the record being written.
    Always,
    /// fsync every [`WalConfig::batch_fsync_every`] records and on
    /// segment roll/seal. A crash can lose up to one fsync window.
    Batch,
    /// Never fsync explicitly; the OS flushes when it pleases. Only
    /// defensible for benchmarks and throwaway runs.
    Never,
}

impl FsyncPolicy {
    /// The CLI-facing name (`always` / `batch` / `never`).
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Never => "never",
        }
    }

    /// Parses a CLI-facing name.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::Batch),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

/// Tuning knobs for [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Fsync policy for the active segment.
    pub fsync: FsyncPolicy,
    /// Roll to a new segment once the current one reaches this size.
    pub segment_bytes: u64,
    /// Fsync cadence under [`FsyncPolicy::Batch`] (records per fsync).
    pub batch_fsync_every: u64,
    /// Group-commit window: buffer this many records in memory before
    /// one combined `write` to the active segment. `1` (the default)
    /// writes through on every append; an fsync (policy-driven or
    /// explicit [`Wal::sync`]) always flushes the buffer first.
    pub group_every: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync: FsyncPolicy::Batch,
            segment_bytes: 8 << 20,
            batch_fsync_every: 16,
            group_every: 1,
        }
    }
}

const SEG_PREFIX: &str = "wal-";
const SEG_SUFFIX: &str = ".seg";

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("{SEG_PREFIX}{first_seq:020}{SEG_SUFFIX}"))
}

/// Lists segment files in `dir`, sorted by first sequence number.
pub fn segment_files(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(SEG_PREFIX)
            .and_then(|s| s.strip_suffix(SEG_SUFFIX))
        else {
            continue;
        };
        let Ok(first_seq) = stem.parse::<u64>() else {
            continue;
        };
        segs.push((first_seq, entry.path()));
    }
    segs.sort();
    Ok(segs)
}

/// The writer half: appends [`BatchRecord`]s to the active segment.
pub struct Wal {
    dir: PathBuf,
    cfg: WalConfig,
    /// Active segment, opened lazily at the first append so the segment
    /// file can be named after the record that starts it.
    active: Option<ActiveSegment>,
    appends_since_fsync: u64,
    /// Encoded frames awaiting their group-commit write (always empty
    /// when `group_every == 1`).
    pending: Vec<u8>,
    pending_records: u64,
    records: u64,
    bytes: u64,
}

struct ActiveSegment {
    file: File,
    len: u64,
}

impl Wal {
    /// Opens a WAL writer in `dir`, creating the directory if needed.
    /// Appending continues in a fresh segment; existing segments are left
    /// for [`replay`] and compaction.
    pub fn open(dir: &Path, cfg: WalConfig) -> io::Result<Wal> {
        fs::create_dir_all(dir)?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            cfg,
            active: None,
            appends_since_fsync: 0,
            pending: Vec::new(),
            pending_records: 0,
            records: 0,
            bytes: 0,
        })
    }

    /// Records appended through this writer.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes appended through this writer (frames, not payloads).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Appends one batch record, honouring the fsync policy. Rolls to a
    /// new segment first if the active one is full.
    pub fn append(&mut self, rec: &BatchRecord) -> io::Result<()> {
        self.append_payload(rec.seq, &rec.encode())
    }

    /// Appends one shard-plan record. Plan frames share the sequence
    /// space with batch frames, so replay and followers see a single
    /// totally-ordered stream.
    pub fn append_plan(&mut self, rec: &PlanRecord) -> io::Result<()> {
        self.append_payload(rec.seq, &rec.encode())
    }

    /// Appends one online (per-event decision) record. Online frames
    /// share the sequence space with batch and plan frames.
    pub fn append_online(&mut self, rec: &OnlineRecord) -> io::Result<()> {
        self.append_payload(rec.seq, &rec.encode())
    }

    fn append_payload(&mut self, seq: u64, payload: &[u8]) -> io::Result<()> {
        let roll = match &self.active {
            Some(seg) => seg.len + self.pending.len() as u64 >= self.cfg.segment_bytes,
            None => true,
        };
        if roll {
            self.roll(seq)?;
        }
        // Frames land in the group-commit buffer first; with the default
        // window of 1 the buffer drains to the file on this very append.
        let before = self.pending.len();
        write_frame(&mut self.pending, payload);
        let frame_len = (self.pending.len() - before) as u64;
        self.pending_records += 1;
        self.records += 1;
        self.bytes += frame_len;
        mbta_telemetry::counter_add("mbta_store_wal_records_total", 1);
        mbta_telemetry::counter_add("mbta_store_wal_bytes_total", frame_len);

        self.appends_since_fsync += 1;
        let due = match self.cfg.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch => self.appends_since_fsync >= self.cfg.batch_fsync_every.max(1),
            FsyncPolicy::Never => false,
        };
        if due {
            self.fsync_active()?;
        } else if self.pending_records >= self.cfg.group_every.max(1) {
            self.flush_pending()?;
        }
        Ok(())
    }

    /// Writes the group-commit buffer to the active segment in one
    /// syscall. No fsync: durability stays with the fsync policy.
    fn flush_pending(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let seg = self
            .active
            .as_mut()
            .expect("pending frames imply an active segment");
        seg.file.write_all(&self.pending)?;
        seg.len += self.pending.len() as u64;
        self.pending.clear();
        self.pending_records = 0;
        Ok(())
    }

    /// Flushes and fsyncs the active segment regardless of policy. Called
    /// on seal and before snapshots so the snapshot never gets ahead of
    /// the journal on disk.
    pub fn sync(&mut self) -> io::Result<()> {
        self.fsync_active()
    }

    fn fsync_active(&mut self) -> io::Result<()> {
        self.flush_pending()?;
        if let Some(seg) = &mut self.active {
            let t = Instant::now();
            seg.file.sync_data()?;
            mbta_telemetry::observe("mbta_store_fsync_ms", t.elapsed().as_secs_f64() * 1e3);
        }
        self.appends_since_fsync = 0;
        Ok(())
    }

    fn roll(&mut self, first_seq: u64) -> io::Result<()> {
        // Seal the outgoing segment: drain any group-commit buffer into
        // it (its frames belong to the old segment), then make them
        // durable before anything lands in the next one.
        if self.active.is_some() {
            self.flush_pending()?;
            if self.cfg.fsync != FsyncPolicy::Never {
                self.fsync_active()?;
            }
        }
        let path = segment_path(&self.dir, first_seq);
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        self.active = Some(ActiveSegment { file, len: 0 });
        mbta_telemetry::counter_add("mbta_store_wal_segments_total", 1);
        Ok(())
    }

    /// Deletes segments fully covered by a snapshot at `watermark`
    /// (exclusive: the snapshot folds in every record with
    /// `seq < watermark`). A segment is dropped only when the *next*
    /// segment's first seq proves it holds no record `>= watermark`; the
    /// last segment is never dropped. Returns the number removed.
    pub fn compact(dir: &Path, watermark: u64) -> io::Result<usize> {
        let segs = segment_files(dir)?;
        let mut removed = 0;
        for pair in segs.windows(2) {
            let (_, ref path) = pair[0];
            let (next_first, _) = pair[1];
            // Replay needs every record with seq >= watermark. The earlier
            // segment's last record has seq == next_first - 1.
            if next_first <= watermark {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// The outcome of scanning a WAL directory.
#[derive(Debug, Clone, PartialEq)]
pub struct WalReplay {
    /// All intact records, in ascending `seq` order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn/corrupt tail ignored (0 on a clean log).
    pub truncated_bytes: u64,
    /// Segment files scanned.
    pub segments: usize,
    /// Path and durable length of the segment where the scan stopped, if
    /// it stopped early. `None` means every segment read cleanly to its
    /// end. Used by repair-on-open to physically truncate the torn tail.
    pub torn: Option<(PathBuf, u64)>,
}

/// Reads every segment in `dir` in order, stopping at the first bad
/// frame, undecodable payload, or non-monotone sequence number. The scan
/// never fails on damaged data — damage simply ends the durable prefix —
/// but real I/O errors (unreadable directory or file) are returned.
pub fn replay(dir: &Path) -> io::Result<WalReplay> {
    let segs = segment_files(dir)?;
    let mut out = WalReplay {
        records: Vec::new(),
        truncated_bytes: 0,
        segments: segs.len(),
        torn: None,
    };
    for (i, (_, path)) in segs.into_iter().enumerate() {
        let buf = fs::read(&path)?;
        let mut offset = 0usize;
        loop {
            match read_frame(&buf, offset) {
                FrameRead::End => break,
                FrameRead::Frame { payload, next } => {
                    let ok = match WalRecord::decode(payload) {
                        Ok(rec) => {
                            let monotone = out
                                .records
                                .last()
                                .map(|prev| rec.seq() == prev.seq() + 1)
                                .unwrap_or(true);
                            if monotone {
                                out.records.push(rec);
                                true
                            } else {
                                false
                            }
                        }
                        Err(_) => false,
                    };
                    if !ok {
                        out.truncated_bytes += (buf.len() - offset) as u64;
                        out.torn = Some((path.clone(), offset as u64));
                        break;
                    }
                    offset = next;
                }
                FrameRead::Bad { .. } => {
                    out.truncated_bytes += (buf.len() - offset) as u64;
                    out.torn = Some((path.clone(), offset as u64));
                    break;
                }
            }
        }
        if out.torn.is_some() {
            // Everything after the damaged segment is unreachable tail:
            // count it but read no further.
            out.segments = i + 1;
            break;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BatchRecord, WeightDelta};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mbta-store-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(seq: u64) -> BatchRecord {
        BatchRecord {
            seq,
            first_time: seq as f64,
            last_time: seq as f64 + 0.5,
            events: 2,
            deltas: vec![WeightDelta {
                edge: seq as u32,
                weight: 1.0 + seq as f64,
            }],
            decisions: vec![],
        }
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = tmp("round-trip");
        let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
        for seq in 0..5 {
            wal.append(&rec(seq)).unwrap();
        }
        wal.sync().unwrap();
        let replayed = replay(&dir).unwrap();
        assert_eq!(
            replayed.records,
            (0..5).map(|s| WalRecord::Batch(rec(s))).collect::<Vec<_>>()
        );
        assert_eq!(replayed.truncated_bytes, 0);
        assert_eq!(replayed.segments, 1);
        assert!(replayed.torn.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plan_frames_interleave_with_batches() {
        let dir = tmp("plan-frames");
        let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
        wal.append(&rec(0)).unwrap();
        let plan = PlanRecord {
            seq: 1,
            retained_weight: 0.5,
            moved_workers: 2,
            moved_tasks: 3,
            shards: vec![vec![0, 4], vec![1]],
        };
        wal.append_plan(&plan).unwrap();
        wal.append(&rec(2)).unwrap();
        wal.sync().unwrap();
        let replayed = replay(&dir).unwrap();
        assert_eq!(
            replayed.records,
            vec![
                WalRecord::Batch(rec(0)),
                WalRecord::Plan(plan),
                WalRecord::Batch(rec(2)),
            ]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rolls_segments_and_replays_across_them() {
        let dir = tmp("roll");
        let cfg = WalConfig {
            segment_bytes: 64, // force a roll every couple of records
            ..WalConfig::default()
        };
        let mut wal = Wal::open(&dir, cfg).unwrap();
        for seq in 0..10 {
            wal.append(&rec(seq)).unwrap();
        }
        wal.sync().unwrap();
        let segs = segment_files(&dir).unwrap();
        assert!(segs.len() > 1, "expected multiple segments, got {segs:?}");
        // Segment names carry their first seq, ascending.
        assert_eq!(segs[0].0, 0);
        assert!(segs.windows(2).all(|w| w[0].0 < w[1].0));
        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.records.len(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp("torn");
        let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
        for seq in 0..4 {
            wal.append(&rec(seq)).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        // Chop mid-record: replay keeps the intact prefix.
        let (_, path) = segment_files(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.records.len(), 3);
        assert!(replayed.truncated_bytes > 0);
        let (torn_path, durable) = replayed.torn.unwrap();
        assert_eq!(torn_path, path);
        assert!(durable < bytes.len() as u64);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_drops_only_fully_covered_segments() {
        let dir = tmp("compact");
        let cfg = WalConfig {
            segment_bytes: 64,
            ..WalConfig::default()
        };
        let mut wal = Wal::open(&dir, cfg).unwrap();
        for seq in 0..12 {
            wal.append(&rec(seq)).unwrap();
        }
        wal.sync().unwrap();
        let before = segment_files(&dir).unwrap();
        assert!(before.len() >= 3);
        // A snapshot ending exactly where the second segment begins covers
        // precisely the first segment.
        let watermark = before[1].0;
        let removed = Wal::compact(&dir, watermark).unwrap();
        assert_eq!(removed, 1);
        // Replay of the remainder starts exactly where the snapshot ends.
        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.records.first().unwrap().seq(), watermark);
        assert_eq!(replayed.records.last().unwrap().seq(), 11);
        // Compacting at the final watermark keeps the last segment.
        let _ = Wal::compact(&dir, 12).unwrap();
        assert!(!segment_files(&dir).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_buffers_until_window_or_sync() {
        let dir = tmp("group");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Never, // isolate the group window
            group_every: 4,
            ..WalConfig::default()
        };
        let mut wal = Wal::open(&dir, cfg).unwrap();
        for seq in 0..3 {
            wal.append(&rec(seq)).unwrap();
        }
        // Window not reached: all three frames still sit in memory.
        assert_eq!(replay(&dir).unwrap().records.len(), 0);
        wal.append(&rec(3)).unwrap();
        // Fourth append filled the window: one combined write landed.
        assert_eq!(replay(&dir).unwrap().records.len(), 4);
        wal.append(&rec(4)).unwrap();
        assert_eq!(replay(&dir).unwrap().records.len(), 4);
        // Explicit sync drains a partial window.
        wal.sync().unwrap();
        assert_eq!(replay(&dir).unwrap().records.len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_flushes_into_the_old_segment_on_roll() {
        let dir = tmp("group-roll");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Batch,
            segment_bytes: 64,
            group_every: 64, // wider than any segment: only rolls flush
            ..WalConfig::default()
        };
        let mut wal = Wal::open(&dir, cfg).unwrap();
        for seq in 0..10 {
            wal.append(&rec(seq)).unwrap();
        }
        wal.sync().unwrap();
        let segs = segment_files(&dir).unwrap();
        assert!(segs.len() > 1, "expected a roll, got {segs:?}");
        // Nothing lost, nothing reordered, and each segment starts at
        // the sequence number its name claims.
        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.records.len(), 10);
        assert!(replayed.torn.is_none());
        for (first_seq, path) in &segs {
            let buf = fs::read(path).unwrap();
            if let FrameRead::Frame { payload, .. } = read_frame(&buf, 0) {
                assert_eq!(WalRecord::decode(payload).unwrap().seq(), *first_seq);
            } else {
                panic!("segment {path:?} does not start with a frame");
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policy_names_round_trip() {
        for p in [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Never] {
            assert_eq!(FsyncPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}
