//! Full-state snapshots: periodic checkpoints that bound WAL replay.
//!
//! A snapshot file `snap-<watermark:020>.snap` captures the complete
//! sharded assignment state after the first `watermark` batches (i.e. it
//! covers every record with `seq < watermark`). Layout:
//!
//! ```text
//! "MBSN"  — 4-byte magic
//! u32     — format version (currently 1)
//! frame   — one CRC frame (see crate::frame) whose payload encodes:
//!             u64 watermark
//!             u32 n_shards, per shard: u32 n_edges, n × u32 edge (sorted)
//!             u32 n_weights, n × f64 weight (universe edge-indexed)
//! ```
//!
//! Writes go through a temp file + `rename`, so a crash mid-snapshot
//! leaves at worst a stray `.tmp` — never a half-written `.snap` that
//! could shadow an older good one. [`load_latest`] walks snapshots newest
//! first and skips any that fail the magic/version/CRC/decode checks, so
//! even a snapshot damaged *after* a clean write only costs extra WAL
//! replay, not recovery itself.

use crate::codec::{put_f64, put_u32, put_u64, Reader};
use crate::frame::{read_frame, write_frame, FrameRead};
use crate::record::DecodeError;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// 4-byte file magic.
pub const MAGIC: [u8; 4] = *b"MBSN";
/// On-disk format version.
pub const VERSION: u32 = 1;

const SNAP_PREFIX: &str = "snap-";
const SNAP_SUFFIX: &str = ".snap";

/// The full dispatch state a snapshot captures.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotState {
    /// Number of batches folded into this state — the exclusive upper
    /// bound on covered sequence numbers. WAL replay resumes at
    /// `seq == watermark`.
    pub watermark: u64,
    /// Per shard, the sorted universe edge ids currently assigned.
    pub shards: Vec<Vec<u32>>,
    /// Live edge weights, indexed by universe edge id.
    pub weights: Vec<f64>,
}

impl SnapshotState {
    fn encode(&self) -> Vec<u8> {
        let n_edges: usize = self.shards.iter().map(Vec::len).sum();
        let mut out =
            Vec::with_capacity(16 + 4 * self.shards.len() + 4 * n_edges + 8 * self.weights.len());
        put_u64(&mut out, self.watermark);
        put_u32(&mut out, self.shards.len() as u32);
        for shard in &self.shards {
            put_u32(&mut out, shard.len() as u32);
            for &e in shard {
                put_u32(&mut out, e);
            }
        }
        put_u32(&mut out, self.weights.len() as u32);
        for &w in &self.weights {
            put_f64(&mut out, w);
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<SnapshotState, DecodeError> {
        let mut r = Reader::new(payload);
        let watermark = r.u64()?;
        let n_shards = r.len_prefix(4)?;
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let n = r.len_prefix(4)?;
            let mut edges = Vec::with_capacity(n);
            for _ in 0..n {
                edges.push(r.u32()?);
            }
            shards.push(edges);
        }
        let n_weights = r.len_prefix(8)?;
        let mut weights = Vec::with_capacity(n_weights);
        for _ in 0..n_weights {
            weights.push(r.f64()?);
        }
        r.finish()?;
        Ok(SnapshotState {
            watermark,
            shards,
            weights,
        })
    }
}

fn snap_path(dir: &Path, watermark: u64) -> PathBuf {
    dir.join(format!("{SNAP_PREFIX}{watermark:020}{SNAP_SUFFIX}"))
}

/// Lists snapshot files in `dir`, sorted ascending by watermark.
pub fn snapshot_files(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut snaps = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(SNAP_PREFIX)
            .and_then(|s| s.strip_suffix(SNAP_SUFFIX))
        else {
            continue;
        };
        let Ok(watermark) = stem.parse::<u64>() else {
            continue;
        };
        snaps.push((watermark, entry.path()));
    }
    snaps.sort();
    Ok(snaps)
}

/// Writes `state` atomically into `dir` (created if missing) and returns
/// its path. The temp file is fsynced before the rename so the rename
/// never publishes unflushed bytes.
pub fn write(dir: &Path, state: &SnapshotState) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let final_path = snap_path(dir, state.watermark);
    let tmp_path = final_path.with_extension("snap.tmp");
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    write_frame(&mut buf, &state.encode());
    let mut f = File::create(&tmp_path)?;
    f.write_all(&buf)?;
    f.sync_data()?;
    drop(f);
    fs::rename(&tmp_path, &final_path)?;
    Ok(final_path)
}

fn load_file(path: &Path) -> Option<SnapshotState> {
    let buf = fs::read(path).ok()?;
    if buf.len() < 8 || buf[..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if version != VERSION {
        return None;
    }
    match read_frame(&buf, 8) {
        FrameRead::Frame { payload, next } if next == buf.len() => {
            SnapshotState::decode(payload).ok()
        }
        _ => None,
    }
}

/// Loads the newest snapshot in `dir` that passes every integrity check,
/// skipping damaged ones. `Ok(None)` when no usable snapshot exists; an
/// error only for an unreadable directory.
pub fn load_latest(dir: &Path) -> io::Result<Option<SnapshotState>> {
    let snaps = snapshot_files(dir)?;
    for (_, path) in snaps.iter().rev() {
        if let Some(state) = load_file(path) {
            return Ok(Some(state));
        }
    }
    Ok(None)
}

/// Removes snapshots older than `keep_watermark` (the newest one is kept
/// even if equal). Returns the number removed.
pub fn prune(dir: &Path, keep_watermark: u64) -> io::Result<usize> {
    let mut removed = 0;
    for (watermark, path) in snapshot_files(dir)? {
        if watermark < keep_watermark {
            fs::remove_file(path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mbta-store-snap-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(watermark: u64) -> SnapshotState {
        SnapshotState {
            watermark,
            shards: vec![vec![0, 3, 9], vec![], vec![4]],
            weights: vec![0.5, 0.0, 1.25, f64::MIN_POSITIVE],
        }
    }

    #[test]
    fn write_load_round_trip() {
        let dir = tmp("round-trip");
        let state = sample(17);
        write(&dir, &state).unwrap();
        assert_eq!(load_latest(&dir).unwrap(), Some(state));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_wins_and_corrupt_latest_falls_back() {
        let dir = tmp("fallback");
        write(&dir, &sample(5)).unwrap();
        let newest = write(&dir, &sample(9)).unwrap();
        assert_eq!(load_latest(&dir).unwrap().unwrap().watermark, 9);
        // Damage the newest: loading falls back to the older good one.
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, bytes).unwrap();
        assert_eq!(load_latest(&dir).unwrap().unwrap().watermark, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmp("prune");
        for w in [3, 7, 11] {
            write(&dir, &sample(w)).unwrap();
        }
        let removed = prune(&dir, 11).unwrap();
        assert_eq!(removed, 2);
        let left = snapshot_files(&dir).unwrap();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].0, 11);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let dir = tmp("magic");
        let path = write(&dir, &sample(2)).unwrap();
        let good = fs::read(&path).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        fs::write(&path, &bad_magic).unwrap();
        assert_eq!(load_latest(&dir).unwrap(), None);

        let mut bad_version = good;
        bad_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bad_version).unwrap();
        assert_eq!(load_latest(&dir).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }
}
