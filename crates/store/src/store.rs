//! [`DurableStore`]: the snapshot + WAL pair behind the dispatch service,
//! and [`recover`], the read-only path that rebuilds state from disk.
//!
//! The contract with the service is write-ahead: a batch is journaled
//! with [`DurableStore::commit`] *before* its decisions reach the
//! decision sink, so any decision the outside world has seen is
//! reconstructible. Every [`StoreConfig::snapshot_every`] batches the
//! service hands over a full [`SnapshotState`]; the store writes it
//! atomically, prunes older snapshots, and compacts WAL segments the new
//! snapshot covers.
//!
//! Recovery invariants (checked by the crash-injection and property
//! tests):
//!
//! 1. **Prefix durability** — recovered state always equals the clean
//!    run's state at some batch watermark `<=` the crash point; a torn or
//!    corrupt tail only shortens the prefix, never corrupts it.
//! 2. **No invention** — every recovered assignment was journaled; the
//!    recovered matching can therefore never violate capacities that the
//!    live run respected.
//! 3. **Totality** — recovery never panics on damaged input: any byte
//!    suffix of a valid store directory recovers to some valid prefix
//!    state.

use crate::record::{
    BatchRecord, DecisionRecord, OnlineRecord, PlanRecord, WalRecord, WeightDelta,
};
use crate::snapshot::{self, SnapshotState};
use crate::wal::{self, FsyncPolicy, Wal, WalConfig};
use std::collections::BTreeSet;
use std::fs::{self, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Tuning knobs for [`DurableStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// WAL fsync policy.
    pub fsync: FsyncPolicy,
    /// Snapshot every N committed batches; `0` = only the final snapshot
    /// written by [`DurableStore::seal`].
    pub snapshot_every: u64,
    /// WAL segment roll threshold in bytes.
    pub segment_bytes: u64,
    /// Fsync cadence under [`FsyncPolicy::Batch`].
    pub batch_fsync_every: u64,
    /// Group-commit window (see [`WalConfig::group_every`]): records per
    /// combined WAL write. `1` = write-through.
    pub group_every: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            fsync: FsyncPolicy::Batch,
            snapshot_every: 64,
            segment_bytes: 8 << 20,
            batch_fsync_every: 16,
            group_every: 1,
        }
    }
}

/// Counters a [`DurableStore`] accumulated over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Batch records appended to the WAL.
    pub wal_records: u64,
    /// Frame bytes appended to the WAL.
    pub wal_bytes: u64,
    /// Snapshots written (periodic + final).
    pub snapshots: u64,
    /// Batches committed (the current watermark).
    pub watermark: u64,
}

/// State rebuilt from a store directory: the durable prefix of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredState {
    /// Batches folded in — the next expected sequence number.
    pub watermark: u64,
    /// Watermark of the snapshot recovery started from, if any.
    pub snapshot_watermark: Option<u64>,
    /// WAL records replayed on top of the snapshot.
    pub records_replayed: u64,
    /// Bytes of torn/corrupt WAL tail that were ignored.
    pub truncated_bytes: u64,
    /// Per shard, the sorted universe edge ids assigned.
    pub shards: Vec<Vec<u32>>,
    /// Live edge weights by universe edge id (only indices touched by a
    /// snapshot, weight delta, or decision are meaningful).
    pub weights: Vec<f64>,
}

impl RecoveredState {
    fn empty() -> RecoveredState {
        RecoveredState {
            watermark: 0,
            snapshot_watermark: None,
            records_replayed: 0,
            truncated_bytes: 0,
            shards: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Number of assigned edges across all shards.
    pub fn assignments(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Total retained weight: the sum of live weights over assigned
    /// edges. Every assigned edge's weight is exact — the journal records
    /// it with the decision and again on every update.
    pub fn total_weight(&self) -> f64 {
        let mut total = 0.0;
        for shard in &self.shards {
            for &e in shard {
                total += self.weights.get(e as usize).copied().unwrap_or(0.0);
            }
        }
        total
    }

    /// The recovered state as a snapshot payload (used to re-seed a
    /// fresh store from a recovered one, and by tests).
    pub fn to_snapshot(&self) -> SnapshotState {
        SnapshotState {
            watermark: self.watermark,
            shards: self.shards.clone(),
            weights: self.weights.clone(),
        }
    }
}

/// The shared fold both batch and online records replay with: weight
/// deltas first, then assignment deltas.
fn apply_changes(
    shards: &mut Vec<BTreeSet<u32>>,
    weights: &mut Vec<f64>,
    deltas: &[WeightDelta],
    decisions: &[DecisionRecord],
) {
    let touch = |weights: &mut Vec<f64>, edge: u32, w: f64| {
        let i = edge as usize;
        if weights.len() <= i {
            weights.resize(i + 1, 0.0);
        }
        weights[i] = w;
    };
    for d in deltas {
        touch(weights, d.edge, d.weight);
    }
    for d in decisions {
        let s = d.shard as usize;
        if shards.len() <= s {
            shards.resize_with(s + 1, BTreeSet::new);
        }
        // The decision carries the live weight at decision time; applying
        // it fills in weights that predate any journaled delta (initial
        // graph weights).
        touch(weights, d.edge, d.weight);
        if d.assign {
            shards[s].insert(d.edge);
        } else {
            shards[s].remove(&d.edge);
        }
    }
}

pub(crate) fn apply_record(
    shards: &mut Vec<BTreeSet<u32>>,
    weights: &mut Vec<f64>,
    rec: &BatchRecord,
) {
    apply_changes(shards, weights, &rec.deltas, &rec.decisions);
}

/// Applies an online (per-event decision) record — the identical fold as
/// a batch record; only the audit metadata differs.
pub(crate) fn apply_online(
    shards: &mut Vec<BTreeSet<u32>>,
    weights: &mut Vec<f64>,
    rec: &OnlineRecord,
) {
    apply_changes(shards, weights, &rec.deltas, &rec.decisions);
}

/// Applies a shard-plan (migration) record: the record carries the full
/// post-migration assignment per shard, so replay replaces the shard
/// structure wholesale. Weights are untouched — a migration moves edges
/// between shards, it does not change their live benefit.
pub(crate) fn apply_plan(shards: &mut Vec<BTreeSet<u32>>, rec: &PlanRecord) {
    shards.clear();
    shards.extend(
        rec.shards
            .iter()
            .map(|s| s.iter().copied().collect::<BTreeSet<u32>>()),
    );
}

/// Scans `dir` once: latest valid snapshot + WAL tail replay. Also
/// reports where the WAL tail went bad so [`DurableStore::open`] can
/// repair it physically.
fn scan(dir: &Path) -> io::Result<(RecoveredState, Option<(PathBuf, u64)>)> {
    let base = snapshot::load_latest(dir)?;
    let mut out = RecoveredState::empty();
    let mut shards: Vec<BTreeSet<u32>> = Vec::new();
    if let Some(snap) = base {
        out.watermark = snap.watermark;
        out.snapshot_watermark = Some(snap.watermark);
        out.weights = snap.weights;
        shards = snap
            .shards
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect();
    }
    let replayed = wal::replay(dir)?;
    out.truncated_bytes = replayed.truncated_bytes;
    for rec in &replayed.records {
        if rec.seq() < out.watermark {
            continue; // segment not yet compacted; the snapshot covers it
        }
        if rec.seq() != out.watermark {
            break; // gap — nothing past it is trustworthy
        }
        match rec {
            WalRecord::Batch(rec) => apply_record(&mut shards, &mut out.weights, rec),
            WalRecord::Plan(rec) => apply_plan(&mut shards, rec),
            WalRecord::Online(rec) => apply_online(&mut shards, &mut out.weights, rec),
        }
        out.watermark += 1;
        out.records_replayed += 1;
    }
    out.shards = shards
        .into_iter()
        .map(|s| s.into_iter().collect())
        .collect();
    Ok((out, replayed.torn))
}

/// Rebuilds dispatch state from a store directory, read-only: latest
/// valid snapshot + WAL tail, tolerating a torn or corrupt tail by
/// ignoring everything from the first bad frame on. Nothing on disk is
/// modified.
pub fn recover(dir: &Path) -> io::Result<RecoveredState> {
    mbta_telemetry::counter_add("mbta_store_recoveries_total", 1);
    let (state, _) = scan(dir)?;
    Ok(state)
}

/// The write half: owns the WAL and decides when to snapshot and compact.
pub struct DurableStore {
    dir: PathBuf,
    cfg: StoreConfig,
    wal: Wal,
    watermark: u64,
    last_snapshot: u64,
    snapshots: u64,
}

impl DurableStore {
    /// Opens (or creates) a store in `dir` and recovers whatever durable
    /// state it holds. A torn WAL tail is *repaired* — physically
    /// truncated at the last good frame, later segments removed — because
    /// a reopened writer starts a new segment, and a lingering bad frame
    /// in an old segment would otherwise mask the new records from
    /// replay.
    pub fn open(dir: &Path, cfg: StoreConfig) -> io::Result<(DurableStore, RecoveredState)> {
        fs::create_dir_all(dir)?;
        remove_orphan_tmp(dir)?;
        let (recovered, torn) = scan(dir)?;
        if let Some((path, durable_len)) = torn {
            repair(dir, &path, durable_len)?;
        }
        let wal = Wal::open(
            dir,
            WalConfig {
                fsync: cfg.fsync,
                segment_bytes: cfg.segment_bytes,
                batch_fsync_every: cfg.batch_fsync_every,
                group_every: cfg.group_every,
            },
        )?;
        let store = DurableStore {
            dir: dir.to_path_buf(),
            cfg,
            wal,
            watermark: recovered.watermark,
            last_snapshot: recovered.snapshot_watermark.unwrap_or(0),
            snapshots: 0,
        };
        Ok((store, recovered))
    }

    /// Journals one committed batch. Must be called *before* the batch's
    /// decisions are released to any sink, with strictly sequential
    /// sequence numbers.
    pub fn commit(&mut self, rec: &BatchRecord) -> io::Result<()> {
        assert_eq!(
            rec.seq, self.watermark,
            "store commits must be sequential (got seq {}, expected {})",
            rec.seq, self.watermark
        );
        self.wal.append(rec)?;
        self.watermark += 1;
        Ok(())
    }

    /// Journals one shard-plan migration. Plan records consume a slot in
    /// the same sequence space as batches, so followers and recovery
    /// replay the migration at exactly the batch boundary it happened.
    pub fn commit_plan(&mut self, rec: &PlanRecord) -> io::Result<()> {
        assert_eq!(
            rec.seq, self.watermark,
            "store commits must be sequential (got plan seq {}, expected {})",
            rec.seq, self.watermark
        );
        self.wal.append_plan(rec)?;
        self.watermark += 1;
        Ok(())
    }

    /// Journals one online (per-event decision) record. Same write-ahead
    /// contract and sequence space as [`DurableStore::commit`].
    pub fn commit_online(&mut self, rec: &OnlineRecord) -> io::Result<()> {
        assert_eq!(
            rec.seq, self.watermark,
            "store commits must be sequential (got online seq {}, expected {})",
            rec.seq, self.watermark
        );
        self.wal.append_online(rec)?;
        self.watermark += 1;
        Ok(())
    }

    /// Whether the periodic-snapshot cadence says it is time for the
    /// caller to capture its state and call [`DurableStore::snapshot`].
    pub fn snapshot_due(&self) -> bool {
        self.cfg.snapshot_every > 0
            && self.watermark.saturating_sub(self.last_snapshot) >= self.cfg.snapshot_every
    }

    /// Writes a snapshot of the caller's full state, then prunes older
    /// snapshots and compacts WAL segments the new snapshot covers. The
    /// state's watermark must match the store's.
    pub fn snapshot(&mut self, state: &SnapshotState) -> io::Result<()> {
        assert_eq!(
            state.watermark, self.watermark,
            "snapshot watermark must match committed watermark"
        );
        let t = Instant::now();
        snapshot::write(&self.dir, state)?;
        mbta_telemetry::observe("mbta_store_snapshot_ms", t.elapsed().as_secs_f64() * 1e3);
        mbta_telemetry::counter_add("mbta_store_snapshots_total", 1);
        self.last_snapshot = state.watermark;
        self.snapshots += 1;
        snapshot::prune(&self.dir, state.watermark)?;
        Wal::compact(&self.dir, state.watermark)?;
        Ok(())
    }

    /// Final flush at clean shutdown: fsyncs the WAL regardless of policy
    /// and writes a last snapshot if any batch landed since the previous
    /// one. Recovery after a clean seal replays zero records.
    pub fn seal(&mut self, state: &SnapshotState) -> io::Result<()> {
        self.wal.sync()?;
        if self.watermark > self.last_snapshot || self.snapshots == 0 {
            self.snapshot(state)?;
        }
        Ok(())
    }

    /// Lifetime counters for reports.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            wal_records: self.wal.records(),
            wal_bytes: self.wal.bytes(),
            snapshots: self.snapshots,
            watermark: self.watermark,
        }
    }

    /// The configured fsync policy (for report rendering).
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.cfg.fsync
    }
}

/// Deletes orphaned `*.tmp` files left behind by a crash mid-snapshot.
/// Snapshot writes go through `snap-….snap.tmp` + rename; a temp file that
/// survived to the next open was never renamed, so it is dead weight that
/// would otherwise accumulate forever. Returns the number removed.
fn remove_orphan_tmp(dir: &Path) -> io::Result<usize> {
    let mut removed = 0;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".tmp") {
            fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Physically truncates a torn segment at its last good frame and removes
/// any segments after it. An empty repaired segment is deleted outright
/// so a reopened writer can reuse its sequence-numbered name.
fn repair(dir: &Path, torn_path: &Path, durable_len: u64) -> io::Result<()> {
    let segs = wal::segment_files(dir)?;
    let mut past_torn = false;
    for (_, path) in &segs {
        if past_torn {
            fs::remove_file(path)?;
        } else if path == torn_path {
            past_torn = true;
        }
    }
    if durable_len == 0 {
        fs::remove_file(torn_path)?;
    } else {
        let f = OpenOptions::new().write(true).open(torn_path)?;
        f.set_len(durable_len)?;
        f.sync_data()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DecisionRecord, WeightDelta};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mbta-store-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// A deterministic little workload: batch `seq` assigns edge `seq`
    /// to shard `seq % 2` with weight `1 + seq`, and unassigns edge
    /// `seq - 3` (once it exists) from its shard.
    fn rec(seq: u64) -> BatchRecord {
        let mut decisions = vec![DecisionRecord {
            shard: (seq % 2) as u32,
            edge: seq as u32,
            assign: true,
            worker: seq as u32,
            task: seq as u32,
            weight: 1.0 + seq as f64,
        }];
        if seq >= 3 {
            let old = seq - 3;
            decisions.push(DecisionRecord {
                shard: (old % 2) as u32,
                edge: old as u32,
                assign: false,
                worker: old as u32,
                task: old as u32,
                weight: 1.0 + old as f64,
            });
        }
        BatchRecord {
            seq,
            first_time: seq as f64,
            last_time: seq as f64 + 0.25,
            events: 1,
            deltas: vec![WeightDelta {
                edge: seq as u32,
                weight: 1.0 + seq as f64,
            }],
            decisions,
        }
    }

    fn run(store: &mut DurableStore, seqs: std::ops::Range<u64>) {
        for seq in seqs {
            store.commit(&rec(seq)).unwrap();
        }
    }

    /// Recovered state expected after batches `0..n`.
    fn expected(n: u64) -> (Vec<Vec<u32>>, f64) {
        let mut shards = vec![BTreeSet::new(), BTreeSet::new()];
        let mut total = 0.0;
        for seq in 0..n {
            shards[(seq % 2) as usize].insert(seq as u32);
            total += 1.0 + seq as f64;
            if seq >= 3 {
                let old = seq - 3;
                shards[(old % 2) as usize].remove(&(old as u32));
                total -= 1.0 + old as f64;
            }
        }
        (
            shards
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
            total,
        )
    }

    #[test]
    fn recover_from_wal_only() {
        let dir = tmp("wal-only");
        let (mut store, init) = DurableStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(init.watermark, 0);
        run(&mut store, 0..7);
        drop(store); // simulated abort: no seal, no snapshot
        let state = recover(&dir).unwrap();
        assert_eq!(state.watermark, 7);
        assert_eq!(state.snapshot_watermark, None);
        assert_eq!(state.records_replayed, 7);
        let (shards, total) = expected(7);
        assert_eq!(state.shards, shards);
        assert!((state.total_weight() - total).abs() < 1e-12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn online_records_recover_like_batches() {
        let dir = tmp("online");
        let (mut store, _) = DurableStore::open(&dir, StoreConfig::default()).unwrap();
        // Batch 0 assigns edge 0; online record 1 reweights edge 0 and
        // swaps the assignment to edge 10; batch 2 assigns edge 2.
        store.commit(&rec(0)).unwrap();
        store
            .commit_online(&OnlineRecord {
                seq: 1,
                time: 1.5,
                events: 3,
                fallbacks: 1,
                deltas: vec![WeightDelta {
                    edge: 0,
                    weight: 0.25,
                }],
                decisions: vec![
                    DecisionRecord {
                        shard: 0,
                        edge: 0,
                        assign: false,
                        worker: 0,
                        task: 0,
                        weight: 0.25,
                    },
                    DecisionRecord {
                        shard: 1,
                        edge: 10,
                        assign: true,
                        worker: 4,
                        task: 5,
                        weight: 9.0,
                    },
                ],
            })
            .unwrap();
        store.commit(&rec(2)).unwrap();
        drop(store); // no seal: recovery must replay all three kinds
        let state = recover(&dir).unwrap();
        assert_eq!(state.watermark, 3);
        assert_eq!(state.records_replayed, 3);
        assert_eq!(state.shards[0], vec![2u32]);
        assert_eq!(state.shards[1], vec![10u32]);
        assert!((state.weights[0] - 0.25).abs() < 1e-12);
        assert!((state.weights[10] - 9.0).abs() < 1e-12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_bounds_replay_and_compacts() {
        let dir = tmp("snap");
        let cfg = StoreConfig {
            snapshot_every: 4,
            segment_bytes: 96, // force several segments
            ..StoreConfig::default()
        };
        let (mut store, _) = DurableStore::open(&dir, cfg).unwrap();
        for seq in 0..10 {
            store.commit(&rec(seq)).unwrap();
            if store.snapshot_due() {
                let snap = recover(&dir).unwrap().to_snapshot();
                store.snapshot(&snap).unwrap();
            }
        }
        assert_eq!(store.stats().snapshots, 2); // at watermarks 4 and 8
        drop(store);
        let state = recover(&dir).unwrap();
        assert_eq!(state.watermark, 10);
        assert_eq!(state.snapshot_watermark, Some(8));
        assert_eq!(state.records_replayed, 2);
        let (shards, total) = expected(10);
        assert_eq!(state.shards, shards);
        assert!((state.total_weight() - total).abs() < 1e-12);
        // Compaction dropped every segment that ended before the last
        // snapshot; only the segment active at snapshot time (which may
        // start just below the watermark) and later ones remain.
        let segs = wal::segment_files(&dir).unwrap();
        assert!(segs.first().unwrap().0 >= 7, "stale segments: {segs:?}");
        assert!(segs.len() <= 3, "compaction left {} segments", segs.len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seal_then_recover_replays_nothing() {
        let dir = tmp("seal");
        let (mut store, _) = DurableStore::open(&dir, StoreConfig::default()).unwrap();
        run(&mut store, 0..5);
        let snap = recover(&dir).unwrap().to_snapshot();
        store.seal(&snap).unwrap();
        drop(store);
        let state = recover(&dir).unwrap();
        assert_eq!(state.watermark, 5);
        assert_eq!(state.snapshot_watermark, Some(5));
        assert_eq!(state.records_replayed, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_after_torn_tail_repairs_and_continues() {
        let dir = tmp("repair");
        let (mut store, _) = DurableStore::open(&dir, StoreConfig::default()).unwrap();
        run(&mut store, 0..6);
        drop(store);
        // Tear the tail: chop the last few bytes of the newest segment.
        let (_, path) = wal::segment_files(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        // Reopen: batch 5 is gone, the tail is repaired, and writing
        // resumes at seq 5 in a fresh segment.
        let (mut store, recovered) = DurableStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovered.watermark, 5);
        assert!(recovered.truncated_bytes > 0);
        run(&mut store, 5..8);
        drop(store);
        let state = recover(&dir).unwrap();
        assert_eq!(state.watermark, 8);
        assert_eq!(state.truncated_bytes, 0, "repair removed the torn tail");
        let (shards, total) = expected(8);
        assert_eq!(state.shards, shards);
        assert!((state.total_weight() - total).abs() < 1e-12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_removes_orphan_tmp_snapshots() {
        let dir = tmp("orphan-tmp");
        let (mut store, _) = DurableStore::open(&dir, StoreConfig::default()).unwrap();
        run(&mut store, 0..4);
        let snap = recover(&dir).unwrap().to_snapshot();
        store.seal(&snap).unwrap();
        drop(store);
        // Plant a temp file as a crash mid-snapshot would leave it: the
        // write reached the temp path but never the rename.
        let orphan = dir.join("snap-00000000000000000009.snap.tmp");
        fs::write(&orphan, b"half-written snapshot bytes").unwrap();
        let (store, recovered) = DurableStore::open(&dir, StoreConfig::default()).unwrap();
        assert!(!orphan.exists(), "orphan tmp survived reopen");
        // The real snapshot and the recovered state are untouched.
        assert_eq!(recovered.watermark, 4);
        assert_eq!(recovered.snapshot_watermark, Some(4));
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plan_record_replays_as_migration() {
        let dir = tmp("plan-replay");
        let (mut store, _) = DurableStore::open(&dir, StoreConfig::default()).unwrap();
        run(&mut store, 0..4);
        // Migrate: shard 0 and 1 swap their surviving edges, and the plan
        // consumes seq 4.
        let before = recover(&dir).unwrap();
        let plan = PlanRecord {
            seq: 4,
            retained_weight: before.total_weight(),
            moved_workers: 2,
            moved_tasks: 1,
            shards: vec![before.shards[1].clone(), before.shards[0].clone()],
        };
        store.commit_plan(&plan).unwrap();
        // Batches continue after the migration in the same seq space.
        store.commit(&rec(5)).unwrap();
        drop(store);
        let state = recover(&dir).unwrap();
        assert_eq!(state.watermark, 6);
        let (expected_shards, _) = expected(4);
        // Post-plan: swapped shards, then batch 5 assigned edge 5 to
        // shard 1 and unassigned edge 2 from shard 0 — a no-op there,
        // because the swap moved edge 2 to shard 1 (shard ids in batch
        // records address the post-plan layout).
        assert_eq!(state.shards[0], expected_shards[1]);
        let mut shard1: BTreeSet<u32> = expected_shards[0].iter().copied().collect();
        shard1.insert(5);
        assert_eq!(state.shards[1], shard1.into_iter().collect::<Vec<u32>>());
        // Weights survive the migration untouched.
        assert!((state.weights[3] - 4.0).abs() < 1e-12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn out_of_order_commit_panics() {
        let dir = tmp("order");
        let (mut store, _) = DurableStore::open(&dir, StoreConfig::default()).unwrap();
        store.commit(&rec(0)).unwrap();
        let _ = store.commit(&rec(5));
    }
}
