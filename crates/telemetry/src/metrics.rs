//! Counter and gauge primitives.
//!
//! [`Counter`] is a single `AtomicU64` — monotone, wrap-free in practice.
//! [`Gauge`] records the *last* value lock-free and additionally feeds a
//! mutex-guarded [`OnlineStats`] so exports can show count/mean/min/max of
//! everything ever set (the satellite requirement: `OnlineStats` is the
//! gauge backend). The mutex is uncontended in realistic use — gauges are
//! set at batch cadence, not per-event.

use mbta_util::OnlineStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    n: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.n.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.n.load(Ordering::Relaxed)
    }
}

/// A last-value gauge with running distribution statistics.
#[derive(Debug)]
pub struct Gauge {
    last_bits: AtomicU64,
    stats: Mutex<OnlineStats>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// Creates a gauge at 0.0 with empty statistics.
    pub fn new() -> Self {
        Gauge {
            last_bits: AtomicU64::new(0f64.to_bits()),
            stats: Mutex::new(OnlineStats::new()),
        }
    }

    /// Sets the gauge. `NaN` is ignored — a poisoned value must not wedge
    /// min/max for the rest of the process.
    pub fn set(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.last_bits.store(v.to_bits(), Ordering::Relaxed);
        self.stats.lock().expect("gauge stats lock").push(v);
    }

    /// Most recently set value (0.0 before the first set).
    pub fn last(&self) -> f64 {
        f64::from_bits(self.last_bits.load(Ordering::Relaxed))
    }

    /// Snapshot of the running statistics over all sets.
    pub fn stats(&self) -> OnlineStats {
        self.stats.lock().expect("gauge stats lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_last_and_distribution() {
        let g = Gauge::new();
        assert_eq!(g.last(), 0.0);
        g.set(3.0);
        g.set(1.0);
        g.set(2.0);
        assert_eq!(g.last(), 2.0);
        let s = g.stats();
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_ignores_nan() {
        let g = Gauge::new();
        g.set(5.0);
        g.set(f64::NAN);
        assert_eq!(g.last(), 5.0);
        assert_eq!(g.stats().count(), 1);
    }
}
