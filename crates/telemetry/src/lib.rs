//! `mbta-telemetry`: zero-dependency metrics for the `mbta` workspace.
//!
//! Production task assignment lives and dies by visibility: which solver
//! phase ate the batch budget, which shard degraded, how many augmenting
//! paths the exact solve needed. This crate is the workspace's shared
//! measurement vocabulary:
//!
//! * [`Registry`] — a sharded map of named [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket log-scale [`Histogram`]s. All hot-path operations are
//!   lock-free atomics; registration takes one short shard lock.
//! * [`Span`] / [`span!`] — monotonic-clock timers feeding `<name>_ms`
//!   histograms, with nesting and per-span attribute counters. Compiled
//!   to ZST no-ops without the `enabled` feature.
//! * [`Snapshot`] — plain-data registry copies with two exporters
//!   (Prometheus text exposition, JSON) and a parser for the Prometheus
//!   subset this crate writes; [`RegistryDiff`] turns successive
//!   snapshots into interval deltas for scraping.
//!
//! Metric names follow `mbta_<crate>_<name>` with `_total` / `_ms`
//! suffixes for counters / latency histograms; labels ride inline in the
//! name (`mbta_service_shard_solve_ms{shard="3"}`).
//!
//! Two off-switches with different costs: building without the `enabled`
//! feature stubs the helpers below and [`Span`] to nothing (zero cost,
//! proven by the `--no-default-features` CI job), while [`set_enabled`]
//! flips recording at runtime so a single binary can measure its own
//! instrumentation overhead (see `service_bench`). The data structures
//! and exporters stay available in both builds — reports and `mbta
//! stats` keep working on instrumented-off binaries.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod export;
pub mod hist;
pub mod metrics;
pub mod registry;
pub mod span;

pub use export::{HistSnapshot, Metric, MetricValue, RegistryDiff, Snapshot};
pub use hist::Histogram;
pub use metrics::{Counter, Gauge};
pub use registry::{enabled, global, set_enabled, MetricEntry, Registry};
pub use span::Span;

/// Adds `n` to the global counter `name`. No-op when telemetry is
/// disabled (compile-time or runtime).
#[inline]
pub fn counter_add(name: &str, n: u64) {
    #[cfg(feature = "enabled")]
    if enabled() {
        global().counter(name).add(n);
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (name, n);
}

/// Sets the global gauge `name` to `v`. No-op when telemetry is disabled.
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    #[cfg(feature = "enabled")]
    if enabled() {
        global().gauge(name).set(v);
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (name, v);
}

/// Observes `v` into the global histogram `name`. No-op when telemetry is
/// disabled.
#[inline]
pub fn observe(name: &str, v: f64) {
    #[cfg(feature = "enabled")]
    if enabled() {
        global().histogram(name).observe(v);
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (name, v);
}

/// Drop-guard counter for solver inner loops with multiple exit points:
/// accumulate locally (a plain `u64` add, no atomics in the loop), emit
/// once on every exit path.
///
/// ```
/// let mut phases = mbta_telemetry::DeferredCount::new("mbta_matching_dinic_phases_total");
/// loop {
///     phases.add(1);
///     break; // every early return still flushes via Drop
/// }
/// ```
#[derive(Debug)]
pub struct DeferredCount {
    name: &'static str,
    n: u64,
}

impl DeferredCount {
    /// Creates a deferred counter for the global counter `name`.
    pub fn new(name: &'static str) -> Self {
        DeferredCount { name, n: 0 }
    }

    /// Accumulates locally; nothing is published until drop.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.n += n;
    }

    /// Locally accumulated value (for tests / reuse as a plain counter).
    pub fn get(&self) -> u64 {
        self.n
    }
}

impl Drop for DeferredCount {
    fn drop(&mut self) {
        if self.n > 0 {
            counter_add(self.name, self.n);
        }
    }
}

/// Serializes unit tests that read or toggle the runtime kill-switch —
/// they share one process-wide flag and otherwise race under the parallel
/// test runner.
#[cfg(all(test, feature = "enabled"))]
pub(crate) fn test_flag_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn runtime_kill_switch_gates_helpers() {
        let _g = test_flag_guard();
        let c = global().counter("mbta_telemetry_test_kill_switch_total");
        counter_add("mbta_telemetry_test_kill_switch_total", 1);
        set_enabled(false);
        counter_add("mbta_telemetry_test_kill_switch_total", 10);
        set_enabled(true);
        counter_add("mbta_telemetry_test_kill_switch_total", 1);
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn deferred_count_flushes_on_drop() {
        let _g = test_flag_guard();
        {
            let mut d = DeferredCount::new("mbta_telemetry_test_deferred_total");
            d.add(3);
            d.add(4);
            assert_eq!(d.get(), 7);
        }
        assert_eq!(
            global().counter("mbta_telemetry_test_deferred_total").get(),
            7
        );
    }
}
