//! Sharded name → metric registry.
//!
//! Sixteen mutex-guarded shards keyed by FxHash of the metric name keep
//! registration cheap and contention-free; the returned `Arc` handles are
//! what hot paths hold on to, so the shard lock is only taken on first
//! lookup (or when a caller is too lazy to cache — still just one short
//! critical section per call).
//!
//! Metric names follow the workspace convention `mbta_<crate>_<name>`,
//! with optional labels encoded in the name itself in canonical form:
//! `mbta_service_shard_solve_ms{shard="3"}`. Keeping labels in the key
//! string keeps the registry dependency-free; the Prometheus exporter
//! splits them back out.

use crate::hist::Histogram;
use crate::metrics::{Counter, Gauge};
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use mbta_util::fxhash::FxBuildHasher;
use mbta_util::FxHashMap;

const SHARDS: usize = 16;

/// One registered metric.
#[derive(Debug, Clone)]
pub enum MetricEntry {
    /// Monotone counter.
    Counter(Arc<Counter>),
    /// Last-value gauge with running stats.
    Gauge(Arc<Gauge>),
    /// Log-scale histogram.
    Histogram(Arc<Histogram>),
}

impl MetricEntry {
    fn kind(&self) -> &'static str {
        match self {
            MetricEntry::Counter(_) => "counter",
            MetricEntry::Gauge(_) => "gauge",
            MetricEntry::Histogram(_) => "histogram",
        }
    }
}

/// A sharded collection of named metrics.
///
/// Instruments register on first use and hand back cacheable `Arc`
/// handles; a snapshot is an immutable point-in-time copy that the
/// exporters render:
///
/// ```
/// use mbta_telemetry::Registry;
///
/// let r = Registry::new();
/// r.counter("mbta_doc_requests_total").add(3);
/// r.histogram("mbta_doc_latency_ms").observe(1.25);
///
/// let snap = r.snapshot();
/// let text = snap.to_prometheus();
/// assert!(text.contains("mbta_doc_requests_total 3"));
/// assert!(text.contains("mbta_doc_latency_ms_count 1"));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    shards: [Mutex<FxHashMap<String, MetricEntry>>; SHARDS],
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, name: &str) -> &Mutex<FxHashMap<String, MetricEntry>> {
        let mut h = FxBuildHasher::default().build_hasher();
        h.write(name.as_bytes());
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Returns the counter named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut shard = self.shard(name).lock().expect("registry shard lock");
        let entry = shard
            .entry(name.to_owned())
            .or_insert_with(|| MetricEntry::Counter(Arc::new(Counter::new())));
        match entry {
            MetricEntry::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut shard = self.shard(name).lock().expect("registry shard lock");
        let entry = shard
            .entry(name.to_owned())
            .or_insert_with(|| MetricEntry::Gauge(Arc::new(Gauge::new())));
        match entry {
            MetricEntry::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut shard = self.shard(name).lock().expect("registry shard lock");
        let entry = shard
            .entry(name.to_owned())
            .or_insert_with(|| MetricEntry::Histogram(Arc::new(Histogram::new())));
        match entry {
            MetricEntry::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// All registered metrics, sorted by name.
    pub fn entries(&self) -> Vec<(String, MetricEntry)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("registry shard lock");
            out.extend(shard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// The process-wide registry used by the `counter_add` / `gauge_set` /
/// `observe` helpers and the span API.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Runtime kill-switch consulted by the global helpers. Compile-time
/// stubbing (feature `enabled` off) takes precedence — see [`enabled`].
static RUNTIME_ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns global-helper recording on or off at runtime. Used by benches to
/// measure instrumentation overhead within a single binary; no-op when the
/// crate was built without the `enabled` feature.
pub fn set_enabled(on: bool) {
    RUNTIME_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the global helpers record. Const `false` when the `enabled`
/// feature is off, so instrumented call sites fold to nothing.
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "enabled") {
        RUNTIME_ENABLED.load(Ordering::Relaxed)
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_instance() {
        let r = Registry::new();
        r.counter("a_total").add(3);
        r.counter("a_total").add(4);
        assert_eq!(r.counter("a_total").get(), 7);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn entries_are_sorted() {
        let r = Registry::new();
        r.histogram("z_ms");
        r.counter("a_total");
        r.gauge("m_depth");
        let names: Vec<_> = r.entries().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a_total", "m_depth", "z_ms"]);
    }
}
