//! Lightweight timing spans.
//!
//! A [`Span`] is a monotonic-clock stopwatch tied to a static name: on
//! drop it observes the elapsed milliseconds into the global histogram
//! `<name>_ms`. Attributes recorded while the span is open accumulate
//! into counters `<name>_<key>_total`. Spans nest naturally — a
//! thread-local depth tracks the current nesting level purely for
//! introspection ([`Span::depth`]) and tests; timing is per-span, so a
//! parent's histogram includes its children's time, which is what phase
//! breakdowns want.
//!
//! When the `enabled` feature is off, [`Span`] is a unit struct, every
//! method is an empty `#[inline]` body, and the compiler erases the call
//! sites entirely. When built with `enabled` but switched off at runtime
//! via [`crate::set_enabled`], `enter` skips the clock read — the cost is
//! one relaxed atomic load.

#[cfg(feature = "enabled")]
mod imp {
    use std::cell::Cell;
    use std::time::Instant;

    thread_local! {
        static DEPTH: Cell<usize> = const { Cell::new(0) };
    }

    /// An open timing span. See the module docs.
    #[derive(Debug)]
    pub struct Span {
        name: &'static str,
        start: Option<Instant>,
    }

    impl Span {
        /// Opens a span named `name`. Records nothing if telemetry is
        /// disabled at runtime.
        pub fn enter(name: &'static str) -> Self {
            let start = if crate::enabled() {
                DEPTH.with(|d| d.set(d.get() + 1));
                Some(Instant::now())
            } else {
                None
            };
            Span { name, start }
        }

        /// Adds `n` to the counter `<name>_<key>_total`.
        pub fn attr(&self, key: &str, n: u64) {
            if self.start.is_some() {
                crate::global()
                    .counter(&format!("{}_{key}_total", self.name))
                    .add(n);
            }
        }

        /// Current span nesting depth on this thread (open spans,
        /// including this one).
        pub fn depth() -> usize {
            DEPTH.with(|d| d.get())
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            if let Some(start) = self.start {
                DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
                let ms = start.elapsed().as_secs_f64() * 1e3;
                crate::global()
                    .histogram(&format!("{}_ms", self.name))
                    .observe(ms);
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    /// Stubbed-out span: a ZST whose methods compile to nothing.
    #[derive(Debug)]
    pub struct Span;

    impl Span {
        /// No-op in telemetry-off builds.
        #[inline(always)]
        pub fn enter(_name: &'static str) -> Self {
            Span
        }

        /// No-op in telemetry-off builds.
        #[inline(always)]
        pub fn attr(&self, _key: &str, _n: u64) {}

        /// Always 0 in telemetry-off builds.
        #[inline(always)]
        pub fn depth() -> usize {
            0
        }
    }
}

pub use imp::Span;

/// Opens a [`Span`] for the enclosing scope: `let _s = span!("mbta_core_engine_solve");`
///
/// The span's histogram is `<name>_ms`; bind it to a named variable (not
/// `_`) so it lives to the end of the scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_named_histogram_and_nests() {
        let _g = crate::test_flag_guard();
        let hist = crate::global().histogram("test_span_outer_ms");
        let before = hist.count();
        {
            let outer = Span::enter("test_span_outer");
            assert_eq!(Span::depth(), 1);
            outer.attr("items", 3);
            outer.attr("items", 2);
            {
                let _inner = span!("test_span_inner");
                assert_eq!(Span::depth(), 2);
            }
            assert_eq!(Span::depth(), 1);
        }
        assert_eq!(Span::depth(), 0);
        assert_eq!(hist.count(), before + 1);
        assert_eq!(
            crate::global().counter("test_span_outer_items_total").get(),
            5
        );
        assert_eq!(crate::global().histogram("test_span_inner_ms").count(), 1);
    }
}
