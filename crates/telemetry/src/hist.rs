//! Fixed-bucket log-scale histograms on lock-free atomics.
//!
//! The bucket layout is compile-time fixed: [`N_BUCKETS`] buckets whose
//! upper bounds double from [`FIRST_UPPER`] (bucket 0 is `(-∞, 0.001]`,
//! bucket 1 is `(0.001, 0.002]`, …), with the final bucket catching
//! overflow (`+Inf`). In the unit convention of this workspace values are
//! milliseconds, so the finite range spans one microsecond to roughly
//! three days — latencies outside that are clamped into the edge buckets
//! without losing the count or the exact sum/min/max.
//!
//! Everything is `Relaxed` atomics: [`Histogram::observe`] is one indexed
//! `fetch_add` plus three CAS loops (sum/min/max), safe to call from any
//! number of threads without locks. The invariant the property tests pin
//! down is that bucket counts always sum to [`Histogram::count`] once all
//! recorders have quiesced.

use std::sync::atomic::{AtomicU64, Ordering};

/// Total bucket count, including the final `+Inf` overflow bucket.
pub const N_BUCKETS: usize = 40;

/// Number of buckets with a finite upper bound.
pub const N_FINITE: usize = N_BUCKETS - 1;

/// Upper bound of bucket 0.
pub const FIRST_UPPER: f64 = 0.001;

/// Upper bound of finite bucket `i` (`FIRST_UPPER * 2^i`).
///
/// # Panics
/// If `i >= N_FINITE` (the last bucket's bound is `+Inf`, not finite).
pub fn bucket_upper(i: usize) -> f64 {
    assert!(i < N_FINITE, "bucket {i} has no finite upper bound");
    // Multiplying by an exact power of two only shifts the exponent, so
    // this matches the repeated-doubling scan in `bucket_index` bit-exactly.
    FIRST_UPPER * 2f64.powi(i as i32)
}

/// Index of the bucket that records value `v`.
///
/// Bucket boundaries are inclusive on the upper side, so
/// `bucket_index(bucket_upper(i)) == i` — the property the Prometheus
/// round-trip relies on to map parsed `le` bounds back to bucket slots.
pub fn bucket_index(v: f64) -> usize {
    let mut bound = FIRST_UPPER;
    for i in 0..N_FINITE {
        if v <= bound {
            return i;
        }
        bound *= 2.0;
    }
    N_BUCKETS - 1
}

/// Estimates the `q`-quantile from bucket counts plus the exact observed
/// extrema, by linear interpolation inside the target bucket. Shared by
/// the live [`Histogram`] and parsed snapshots. Returns 0.0 when empty.
pub fn quantile_from(buckets: &[u64], min: f64, max: f64, q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cum += c;
        if c > 0 && cum >= rank {
            let lower = if i == 0 { 0.0 } else { bucket_upper(i - 1) };
            let upper = if i < N_FINITE { bucket_upper(i) } else { max };
            // Clamp the interpolation interval to the observed extrema so
            // a single-sample histogram reports the sample itself.
            let lower = lower.clamp(min.min(max), max);
            let upper = upper.clamp(lower, max);
            let into = (rank - (cum - c)) as f64 / c as f64;
            return lower + (upper - lower) * into;
        }
    }
    max
}

/// A concurrent log-scale histogram. See the module docs for the layout.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation. `NaN` is ignored (an upstream bug should
    /// not poison a process-wide metric); negative values clamp to 0.
    pub fn observe(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let v = v.max(0.0);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        f64_update(&self.sum_bits, |s| s + v);
        f64_update(&self.min_bits, |m| m.min(v));
        f64_update(&self.max_bits, |m| m.max(v));
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Smallest observation (0.0 when empty — snapshot-friendly, unlike a
    /// NaN sentinel).
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            f64::from_bits(self.min_bits.load(Ordering::Relaxed))
        }
    }

    /// Largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            f64::from_bits(self.max_bits.load(Ordering::Relaxed))
        }
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Per-bucket counts (index order; last bucket is the overflow).
    pub fn bucket_counts(&self) -> [u64; N_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimated `q`-quantile (see [`quantile_from`]).
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from(&self.bucket_counts(), self.min(), self.max(), q)
    }
}

/// CAS loop applying `f` to an f64 stored as bits.
fn f64_update(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_round_trip_through_index() {
        for i in 0..N_FINITE {
            assert_eq!(bucket_index(bucket_upper(i)), i, "upper bound {i}");
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn observe_tracks_exact_extrema_and_sum() {
        let h = Histogram::new();
        for v in [0.5, 3.0, 42.0, 0.002] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 45.502).abs() < 1e-12);
        assert_eq!(h.min(), 0.002);
        assert_eq!(h.max(), 42.0);
        let buckets = h.bucket_counts();
        assert_eq!(buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn nan_is_ignored() {
        let h = Histogram::new();
        h.observe(f64::NAN);
        assert_eq!(h.count(), 0);
        h.observe(1.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn single_sample_quantiles_report_the_sample() {
        let h = Histogram::new();
        h.observe(7.25);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 7.25, "q={q}");
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded_by_extrema() {
        let h = Histogram::new();
        for i in 0..1000 {
            h.observe(0.01 * (i as f64 + 1.0));
        }
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile not monotone at q={q}");
            assert!(v >= h.min() && v <= h.max());
            prev = v;
        }
        // p50 of uniform 0.01..=10.0 should land within a bucket of 5.
        let p50 = h.quantile(0.5);
        assert!((1.0..=10.0).contains(&p50), "p50 {p50}");
    }
}
