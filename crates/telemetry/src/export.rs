//! Snapshots and exporters: Prometheus text exposition, JSON, and
//! interval diffs.
//!
//! A [`Snapshot`] is a point-in-time, plain-data copy of a [`Registry`] —
//! comparable with `==`, which is what the round-trip test
//! (snapshot → prometheus text → parse → same values) leans on. Metric
//! names may carry labels inline (`base{k="v"}`); the Prometheus writer
//! splits them out and merges its own `le` / `stat` labels in.
//!
//! Label values are restricted to `[A-Za-z0-9_.-]` (no quotes, commas, or
//! backslashes) — every label this workspace emits is a shard index, tier
//! name, or policy name, so the writer and parser skip escaping entirely.

use crate::hist::{bucket_index, bucket_upper, quantile_from, N_BUCKETS, N_FINITE};
use crate::registry::{MetricEntry, Registry};
use std::fmt::Write as _;

/// Plain-data copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Per-bucket counts, index order (see [`crate::hist`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Exact smallest observation (0.0 when empty).
    pub min: f64,
    /// Exact largest observation (0.0 when empty).
    pub max: f64,
}

impl HistSnapshot {
    /// Estimated `q`-quantile (interpolated within the target bucket,
    /// clamped to the exact extrema).
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from(&self.buckets, self.min, self.max, q)
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Plain-data copy of one metric's value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge last value plus running distribution over all sets.
    Gauge {
        /// Most recently set value.
        last: f64,
        /// Number of sets.
        count: u64,
        /// Mean of all sets.
        mean: f64,
        /// Smallest set value (0.0 when never set).
        min: f64,
        /// Largest set value (0.0 when never set).
        max: f64,
    },
    /// Histogram contents.
    Histogram(HistSnapshot),
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Full metric name, labels inline (`base{k="v"}`).
    pub name: String,
    /// The captured value.
    pub value: MetricValue,
}

/// Point-in-time copy of a registry, sorted by metric name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// All metrics, sorted by name.
    pub metrics: Vec<Metric>,
}

fn sanitize(v: f64) -> f64 {
    // Empty-accumulator NaN sentinels become 0.0 so snapshots stay
    // PartialEq-comparable and text exports stay parseable.
    if v.is_nan() {
        0.0
    } else {
        v
    }
}

impl Registry {
    /// Captures every registered metric. Concurrent recorders keep
    /// running; per-metric reads are atomic, cross-metric consistency is
    /// best-effort (standard for scrape-based telemetry).
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self
            .entries()
            .into_iter()
            .map(|(name, entry)| {
                let value = match entry {
                    MetricEntry::Counter(c) => MetricValue::Counter(c.get()),
                    MetricEntry::Gauge(g) => {
                        let s = g.stats();
                        MetricValue::Gauge {
                            last: g.last(),
                            count: s.count(),
                            mean: s.mean(),
                            min: sanitize(s.min()),
                            max: sanitize(s.max()),
                        }
                    }
                    MetricEntry::Histogram(h) => MetricValue::Histogram(HistSnapshot {
                        buckets: h.bucket_counts().to_vec(),
                        count: h.count(),
                        sum: h.sum(),
                        min: h.min(),
                        max: h.max(),
                    }),
                };
                Metric { name, value }
            })
            .collect();
        Snapshot { metrics }
    }
}

/// Splits `base{k="v",k2="v2"}` into `("base", "k=\"v\",k2=\"v2\"")`.
/// The label part is empty for unlabeled names.
fn split_labels(name: &str) -> (&str, &str) {
    match (name.find('{'), name.ends_with('}')) {
        (Some(i), true) => (&name[..i], &name[i + 1..name.len() - 1]),
        _ => (name, ""),
    }
}

/// Joins a base name with existing labels plus one extra `k="v"` pair.
fn with_labels(base: &str, labels: &str, extra: Option<(&str, &str)>) -> String {
    let mut parts = Vec::new();
    if !labels.is_empty() {
        parts.push(labels.to_owned());
    }
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        base.to_owned()
    } else {
        format!("{base}{{{}}}", parts.join(","))
    }
}

impl Snapshot {
    /// Renders the snapshot in Prometheus text exposition format.
    ///
    /// Families share one `# TYPE` line. Histograms emit cumulative
    /// `_bucket{le=...}` lines for non-empty buckets (plus `+Inf`),
    /// `_sum` / `_count`, and non-standard `_min` / `_max` lines carrying
    /// the exact extrema. Gauges emit the last value plus
    /// `{stat="count|mean|min|max"}` lines from the running
    /// distribution.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for m in &self.metrics {
            let (base, labels) = split_labels(&m.name);
            match &m.value {
                MetricValue::Counter(v) => {
                    if last_family != base {
                        writeln!(out, "# TYPE {base} counter").unwrap();
                        last_family = base.to_owned();
                    }
                    writeln!(out, "{} {v}", with_labels(base, labels, None)).unwrap();
                }
                MetricValue::Gauge {
                    last,
                    count,
                    mean,
                    min,
                    max,
                } => {
                    if last_family != base {
                        writeln!(out, "# TYPE {base} gauge").unwrap();
                        last_family = base.to_owned();
                    }
                    writeln!(out, "{} {last}", with_labels(base, labels, None)).unwrap();
                    let stat = |k: &str| with_labels(base, labels, Some(("stat", k)));
                    writeln!(out, "{} {count}", stat("count")).unwrap();
                    writeln!(out, "{} {mean}", stat("mean")).unwrap();
                    writeln!(out, "{} {min}", stat("min")).unwrap();
                    writeln!(out, "{} {max}", stat("max")).unwrap();
                }
                MetricValue::Histogram(h) => {
                    if last_family != base {
                        writeln!(out, "# TYPE {base} histogram").unwrap();
                        last_family = base.to_owned();
                    }
                    let bucket = format!("{base}_bucket");
                    let mut cum = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        cum += c;
                        if c == 0 && i < N_FINITE {
                            continue;
                        }
                        let le = if i < N_FINITE {
                            bucket_upper(i).to_string()
                        } else {
                            "+Inf".to_owned()
                        };
                        writeln!(
                            out,
                            "{} {cum}",
                            with_labels(&bucket, labels, Some(("le", &le)))
                        )
                        .unwrap();
                    }
                    let part =
                        |suffix: &str| with_labels(&format!("{base}_{suffix}"), labels, None);
                    writeln!(out, "{} {}", part("sum"), h.sum).unwrap();
                    writeln!(out, "{} {}", part("count"), h.count).unwrap();
                    writeln!(out, "{} {}", part("min"), h.min).unwrap();
                    writeln!(out, "{} {}", part("max"), h.max).unwrap();
                }
            }
        }
        out
    }

    /// Parses text produced by [`Snapshot::to_prometheus`] back into a
    /// snapshot equal to the original (`f64` text round-trips exactly in
    /// Rust, and `le` bounds map back to bucket slots via
    /// [`bucket_index`]).
    ///
    /// This is a reader for our own exposition subset, not a general
    /// Prometheus parser: it relies on the `# TYPE` lines this writer
    /// emits.
    pub fn parse_prometheus(text: &str) -> Result<Snapshot, String> {
        use std::collections::BTreeMap;

        #[derive(Default)]
        struct HistAcc {
            cum: Vec<(usize, u64)>, // (bucket index, cumulative count)
            sum: f64,
            count: u64,
            min: f64,
            max: f64,
        }

        let mut families: BTreeMap<String, &str> = BTreeMap::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, [f64; 5]> = BTreeMap::new(); // last,count,mean,min,max
        let mut hists: BTreeMap<String, HistAcc> = BTreeMap::new();

        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let fam = it.next().ok_or("bare TYPE line")?;
                let kind = it.next().ok_or("TYPE line without kind")?;
                let kind = match kind {
                    "counter" => "counter",
                    "gauge" => "gauge",
                    "histogram" => "histogram",
                    other => return Err(format!("unknown metric kind {other:?}")),
                };
                families.insert(fam.to_owned(), kind);
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("malformed sample line {line:?}"))?;
            let (base, labels) = split_labels(name);

            // Resolve the owning family: exact base match first, then the
            // histogram sub-series suffixes.
            let (family, kind, suffix) = if let Some(&k) = families.get(base) {
                (base.to_owned(), k, "")
            } else {
                let mut found = None;
                for suffix in ["_bucket", "_sum", "_count", "_min", "_max"] {
                    if let Some(fam) = base.strip_suffix(suffix) {
                        if families.get(fam) == Some(&"histogram") {
                            found = Some((fam.to_owned(), "histogram", suffix));
                            break;
                        }
                    }
                }
                found.ok_or_else(|| format!("sample {name:?} has no # TYPE family"))?
            };

            // Pull writer-added labels (`le`, `stat`) out; the rest is the
            // metric's own label set, restored to its inline-name form.
            let mut own = Vec::new();
            let mut le = None;
            let mut stat = None;
            for pair in labels.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("malformed label {pair:?}"))?;
                let v = v.trim_matches('"');
                match k {
                    "le" => le = Some(v.to_owned()),
                    "stat" if kind == "gauge" => stat = Some(v.to_owned()),
                    _ => own.push(format!("{k}=\"{v}\"")),
                }
            }
            let key = if own.is_empty() {
                family.clone()
            } else {
                format!("{family}{{{}}}", own.join(","))
            };
            let parse_f = |s: &str| -> Result<f64, String> {
                s.parse::<f64>()
                    .map_err(|e| format!("bad value {s:?}: {e}"))
            };

            match kind {
                "counter" => {
                    counters.insert(key, value.parse().map_err(|e| format!("{e}"))?);
                }
                "gauge" => {
                    let slot = match stat.as_deref() {
                        None => 0,
                        Some("count") => 1,
                        Some("mean") => 2,
                        Some("min") => 3,
                        Some("max") => 4,
                        Some(other) => return Err(format!("unknown gauge stat {other:?}")),
                    };
                    gauges.entry(key).or_default()[slot] = parse_f(value)?;
                }
                _ => {
                    let acc = hists.entry(key).or_default();
                    match suffix {
                        "_bucket" => {
                            let le = le.ok_or("histogram bucket without le label")?;
                            let idx = if le == "+Inf" {
                                N_BUCKETS - 1
                            } else {
                                bucket_index(parse_f(&le)?)
                            };
                            acc.cum
                                .push((idx, value.parse().map_err(|e| format!("{e}"))?));
                        }
                        "_sum" => acc.sum = parse_f(value)?,
                        "_count" => acc.count = value.parse().map_err(|e| format!("{e}"))?,
                        "_min" => acc.min = parse_f(value)?,
                        "_max" => acc.max = parse_f(value)?,
                        _ => return Err(format!("unexpected histogram sample {name:?}")),
                    }
                }
            }
        }

        let mut metrics = Vec::new();
        for (name, v) in counters {
            metrics.push(Metric {
                name,
                value: MetricValue::Counter(v),
            });
        }
        for (name, [last, count, mean, min, max]) in gauges {
            metrics.push(Metric {
                name,
                value: MetricValue::Gauge {
                    last,
                    count: count as u64,
                    mean,
                    min,
                    max,
                },
            });
        }
        for (name, mut acc) in hists {
            acc.cum.sort_by_key(|&(idx, _)| idx);
            let mut buckets = vec![0u64; N_BUCKETS];
            let mut prev = 0u64;
            for (idx, cum) in acc.cum {
                if idx >= N_BUCKETS {
                    return Err(format!("bucket index {idx} out of range for {name:?}"));
                }
                buckets[idx] = cum
                    .checked_sub(prev)
                    .ok_or_else(|| format!("non-monotone cumulative buckets for {name:?}"))?;
                prev = cum;
            }
            metrics.push(Metric {
                name,
                value: MetricValue::Histogram(HistSnapshot {
                    buckets,
                    count: acc.count,
                    sum: acc.sum,
                    min: acc.min,
                    max: acc.max,
                }),
            });
        }
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(Snapshot { metrics })
    }

    /// Renders the snapshot as a JSON document (hand-rolled — the
    /// telemetry crate takes no serialization dependency).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let sep = if i + 1 < self.metrics.len() { "," } else { "" };
            match &m.value {
                MetricValue::Counter(v) => {
                    writeln!(
                        out,
                        "    {{\"name\": \"{}\", \"type\": \"counter\", \"value\": {v}}}{sep}",
                        esc(&m.name)
                    )
                    .unwrap();
                }
                MetricValue::Gauge {
                    last,
                    count,
                    mean,
                    min,
                    max,
                } => {
                    writeln!(
                        out,
                        "    {{\"name\": \"{}\", \"type\": \"gauge\", \"last\": {last}, \
                         \"count\": {count}, \"mean\": {mean}, \"min\": {min}, \"max\": {max}}}{sep}",
                        esc(&m.name)
                    )
                    .unwrap();
                }
                MetricValue::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| format!("[{i}, {c}]"))
                        .collect();
                    writeln!(
                        out,
                        "    {{\"name\": \"{}\", \"type\": \"histogram\", \"count\": {}, \
                         \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p99\": {}, \
                         \"buckets\": [{}]}}{sep}",
                        esc(&m.name),
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        h.quantile(0.5),
                        h.quantile(0.99),
                        buckets.join(", ")
                    )
                    .unwrap();
                }
            }
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Interval scraper: remembers the previous snapshot and yields deltas.
///
/// Counters and histogram buckets / counts / sums subtract; gauges pass
/// through unchanged (a gauge delta is meaningless); histogram min / max
/// stay cumulative because per-interval extrema are not recoverable from
/// a snapshot pair. Metrics registered since the base snapshot appear
/// whole.
#[derive(Debug, Default)]
pub struct RegistryDiff {
    base: Option<Snapshot>,
}

impl RegistryDiff {
    /// Creates a diff with no base — the first [`RegistryDiff::advance`]
    /// returns its input unchanged.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `cur - base` and makes `cur` the new base.
    pub fn advance(&mut self, cur: Snapshot) -> Snapshot {
        let out = match &self.base {
            None => cur.clone(),
            Some(base) => {
                let mut metrics = Vec::with_capacity(cur.metrics.len());
                for m in &cur.metrics {
                    let prev = base.metrics.iter().find(|b| b.name == m.name);
                    let value = match (&m.value, prev.map(|p| &p.value)) {
                        (MetricValue::Counter(c), Some(MetricValue::Counter(p))) => {
                            MetricValue::Counter(c.saturating_sub(*p))
                        }
                        (MetricValue::Histogram(h), Some(MetricValue::Histogram(p))) => {
                            MetricValue::Histogram(HistSnapshot {
                                buckets: h
                                    .buckets
                                    .iter()
                                    .zip(&p.buckets)
                                    .map(|(a, b)| a.saturating_sub(*b))
                                    .collect(),
                                count: h.count.saturating_sub(p.count),
                                sum: h.sum - p.sum,
                                min: h.min,
                                max: h.max,
                            })
                        }
                        (v, _) => v.clone(),
                    };
                    metrics.push(Metric {
                        name: m.name.clone(),
                        value,
                    });
                }
                Snapshot { metrics }
            }
        };
        self.base = Some(cur);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("mbta_test_events_total").add(11);
        r.counter("mbta_test_tier_total{tier=\"exact\"}").add(7);
        r.counter("mbta_test_tier_total{tier=\"degraded\"}").add(2);
        let g = r.gauge("mbta_test_queue_depth");
        g.set(4.0);
        g.set(9.0);
        let h = r.histogram("mbta_test_solve_ms{shard=\"3\"}");
        for v in [0.5, 1.5, 1.5, 200.0] {
            h.observe(v);
        }
        r.histogram("mbta_test_empty_ms");
        r
    }

    #[test]
    fn prometheus_round_trip_is_exact() {
        let snap = sample_registry().snapshot();
        let text = snap.to_prometheus();
        let parsed = Snapshot::parse_prometheus(&text).expect("parse");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn prometheus_text_shape() {
        let text = sample_registry().snapshot().to_prometheus();
        assert!(text.contains("# TYPE mbta_test_events_total counter"));
        assert!(text.contains("mbta_test_events_total 11"));
        assert!(text.contains("mbta_test_tier_total{tier=\"exact\"} 7"));
        assert!(text.contains("mbta_test_queue_depth 9"));
        assert!(text.contains("mbta_test_queue_depth{stat=\"count\"} 2"));
        assert!(text.contains("mbta_test_solve_ms_bucket{shard=\"3\",le=\"+Inf\"} 4"));
        assert!(text.contains("mbta_test_solve_ms_count{shard=\"3\"} 4"));
        // One TYPE line per family, not per labeled series.
        assert_eq!(text.matches("# TYPE mbta_test_tier_total").count(), 1);
    }

    #[test]
    fn json_contains_all_metrics() {
        let json = sample_registry().snapshot().to_json();
        for name in [
            "mbta_test_events_total",
            "mbta_test_tier_total{tier=\\\"exact\\\"}",
            "mbta_test_queue_depth",
            "mbta_test_solve_ms{shard=\\\"3\\\"}",
        ] {
            assert!(json.contains(name), "missing {name} in {json}");
        }
        assert!(json.contains("\"p99\""));
    }

    #[test]
    fn diff_subtracts_counters_and_histograms() {
        let r = sample_registry();
        let mut diff = RegistryDiff::new();
        let first = diff.advance(r.snapshot());
        assert_eq!(first, r.snapshot());

        r.counter("mbta_test_events_total").add(5);
        r.histogram("mbta_test_solve_ms{shard=\"3\"}").observe(3.0);
        let delta = diff.advance(r.snapshot());

        let get = |name: &str| {
            delta
                .metrics
                .iter()
                .find(|m| m.name == name)
                .map(|m| m.value.clone())
                .unwrap()
        };
        assert_eq!(get("mbta_test_events_total"), MetricValue::Counter(5));
        match get("mbta_test_solve_ms{shard=\"3\"}") {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.buckets.iter().sum::<u64>(), 1);
                assert!((h.sum - 3.0).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unchanged counters delta to zero.
        assert_eq!(
            get("mbta_test_tier_total{tier=\"exact\"}"),
            MetricValue::Counter(0)
        );
    }
}
