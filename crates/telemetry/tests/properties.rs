//! Property tests for the telemetry invariants the rest of the workspace
//! builds on: histogram bucket counts always sum to the observation
//! counter even under concurrent recording, and the Prometheus text
//! exposition round-trips snapshots exactly.

use mbta_telemetry::{Histogram, MetricValue, Registry, Snapshot};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent observers never lose or double-count: after all threads
    /// join, the per-bucket counts sum to `count()` and the exact sum /
    /// extrema match a sequential reduction of the same values.
    #[test]
    fn buckets_sum_to_count_under_concurrent_recording(
        per_thread in vec(vec(0.0f64..5_000.0, 1..64), 2..8)
    ) {
        let h = Histogram::new();
        crossbeam::scope(|s| {
            let h = &h;
            for chunk in &per_thread {
                s.spawn(move |_| {
                    for &v in chunk {
                        h.observe(v);
                    }
                });
            }
        })
        .expect("threads join");

        let total: usize = per_thread.iter().map(Vec::len).sum();
        prop_assert_eq!(h.count(), total as u64);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), total as u64);

        let flat: Vec<f64> = per_thread.iter().flatten().copied().collect();
        let expect_sum: f64 = flat.iter().sum();
        let expect_min = flat.iter().copied().fold(f64::INFINITY, f64::min);
        let expect_max = flat.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((h.sum() - expect_sum).abs() <= 1e-9 * expect_sum.abs().max(1.0));
        prop_assert_eq!(h.min(), expect_min);
        prop_assert_eq!(h.max(), expect_max);
    }

    /// snapshot → prometheus text → parse → identical snapshot, for a
    /// randomized mix of counters, gauges, and labeled histograms.
    #[test]
    fn prometheus_round_trip(
        counters in vec(0u64..1_000_000, 1..5),
        gauge_sets in vec(0.0f64..100.0, 0..6),
        hist_obs in vec(vec(0.0f64..10_000.0, 0..40), 1..4),
    ) {
        let r = Registry::new();
        for (i, v) in counters.iter().enumerate() {
            r.counter(&format!("mbta_prop_c{i}_total")).add(*v);
        }
        let g = r.gauge("mbta_prop_depth");
        for &v in &gauge_sets {
            g.set(v);
        }
        for (i, obs) in hist_obs.iter().enumerate() {
            let h = r.histogram(&format!("mbta_prop_lat_ms{{shard=\"{i}\"}}"));
            for &v in obs {
                h.observe(v);
            }
        }

        let snap = r.snapshot();
        let text = snap.to_prometheus();
        let parsed = Snapshot::parse_prometheus(&text)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(&parsed, &snap);

        // Spot-check the parsed values are real, not vacuously equal.
        let total_obs: usize = hist_obs.iter().map(Vec::len).sum();
        let parsed_obs: u64 = parsed
            .metrics
            .iter()
            .filter_map(|m| match &m.value {
                MetricValue::Histogram(h) => Some(h.count),
                _ => None,
            })
            .sum();
        prop_assert_eq!(parsed_obs, total_obs as u64);
    }
}
