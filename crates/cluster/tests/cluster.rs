//! In-process cluster integration tests: real TCP sockets, real router
//! and worker threads, deterministic budgets.
//!
//! The namespace-isolation test is the tenancy contract: running tenant A
//! alongside tenant B through one router must leave A's per-worker
//! decision logs *byte-identical* to running A through the same topology
//! alone. The dead-owner test is the failure contract: an unreachable
//! owner poisons its shard, its events degrade (counted, never silently
//! lost), and the run still finishes. The rejoin test is its flip side:
//! an owner restarted on the same address is re-probed and resumes
//! receiving its shard's events.

use mbta_cluster::topology::{build_plans, load_tenants, save_plans};
use mbta_cluster::{router, worker, RouterConfig, RouterSummary, WorkerConfig, WorkerSummary};
use mbta_net::{send_events, Client, Request};
use mbta_service::{DeferBackoff, Routing};
use mbta_workload::{Profile, TraceFile, TraceSpec, WorkloadSpec};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbta_cluster_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn make_trace(dir: &Path, name: &str, seed: u64) -> PathBuf {
    let wspec = WorkloadSpec {
        profile: Profile::Zipfian,
        n_workers: 40,
        n_tasks: 24,
        avg_worker_degree: 4.0,
        skill_dims: 4,
        seed,
    };
    let tspec = TraceSpec {
        horizon: 50.0,
        mean_session: 10.0,
        mean_task_lifetime: 15.0,
        seed,
    };
    let events = tspec.generate_repeated(wspec.n_workers, wspec.n_tasks, 2);
    let tf = TraceFile::new(wspec, events).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, tf.render()).unwrap();
    path
}

/// Spins up `n_shards` workers + a router over `traces`, drives every
/// tenant's events through one client connection each, FINs, and joins
/// everything down.
fn run_cluster(traces: &[PathBuf], n_shards: usize) -> (RouterSummary, Vec<WorkerSummary>) {
    let mut handles = Vec::new();
    let mut owners = Vec::new();
    for s in 0..n_shards {
        let mut wc = WorkerConfig::new(traces.to_vec(), s, n_shards);
        wc.budget_ms = 0; // deterministic decisions
        wc.threads = 1;
        wc.collect_decisions = true;
        wc.linger_ms = 400;
        let h = worker::spawn(wc).unwrap();
        owners.push(h.addr().to_string());
        handles.push(h);
    }
    let rc = RouterConfig::new(traces.to_vec(), owners);
    let rh = router::spawn(rc).unwrap();
    let addr = rh.addr().to_string();

    // One connection per tenant preserves each tenant's event order.
    let tenants = load_tenants(traces).unwrap();
    let senders: Vec<_> = tenants
        .into_iter()
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect_retry(&addr, Duration::from_secs(5)).unwrap();
                let mut backoff = DeferBackoff::new(5, 200, t.seed);
                send_events(&mut c, t.ns, &t.events, 64, &mut backoff).unwrap()
            })
        })
        .collect();
    for h in senders {
        h.join().unwrap();
    }
    let mut fin = Client::connect_retry(&addr, Duration::from_secs(5)).unwrap();
    fin.request(&Request::Fin).unwrap();

    let rs = rh.join().unwrap();
    let ws = handles.into_iter().map(|h| h.join().unwrap()).collect();
    (rs, ws)
}

#[test]
fn namespace_isolation_is_byte_identical_per_tenant() {
    let dir = temp_dir("isolation");
    let trace_a = make_trace(&dir, "a.trace", 11);
    let trace_b = make_trace(&dir, "b.trace", 23);
    let n_shards = 2;

    let (rs_both, ws_both) = run_cluster(&[trace_a.clone(), trace_b.clone()], n_shards);
    let (rs_a, ws_a) = run_cluster(&[trace_a], n_shards);
    let (rs_b, ws_b) = run_cluster(&[trace_b], n_shards);

    for rs in [&rs_both, &rs_a, &rs_b] {
        assert!(rs.conserved(), "unaccounted events: {rs:?}");
        assert!(rs.poisoned.iter().all(|&p| !p));
        assert_eq!(rs.degraded, 0);
    }
    for ws in [&ws_both, &ws_a, &ws_b] {
        for w in ws.iter() {
            assert_eq!(w.violations(), 0, "shard {} violated capacity", w.shard);
            assert_eq!(w.foreign_events(), 0, "router/worker routing disagreed");
            assert_eq!(w.unknown_namespace, 0);
        }
    }

    // Tenant A's logs with B interleaved == tenant A's logs alone, on
    // every worker — and symmetrically for B.
    for s in 0..n_shards {
        assert_eq!(
            ws_both[s].decision_logs[0], ws_a[s].decision_logs[0],
            "tenant A's shard-{s} log changed when tenant B ran alongside"
        );
        assert_eq!(
            ws_both[s].decision_logs[1], ws_b[s].decision_logs[0],
            "tenant B's shard-{s} log changed when tenant A ran alongside"
        );
    }

    // Both tenants actually produced decisions somewhere.
    let decided: u64 = ws_both
        .iter()
        .flat_map(|w| &w.reports)
        .map(|r| r.decisions)
        .sum();
    assert!(decided > 0, "cluster made no decisions at all");
}

#[test]
fn dead_owner_poisons_its_shard_and_the_run_finishes() {
    let dir = temp_dir("dead_owner");
    let trace = make_trace(&dir, "t.trace", 7);
    let traces = vec![trace];

    // Shard 0 is a live worker; shard 1 is an address nobody listens on.
    let mut wc = WorkerConfig::new(traces.clone(), 0, 2);
    wc.budget_ms = 0;
    wc.threads = 1;
    wc.linger_ms = 400;
    let live = worker::spawn(wc).unwrap();
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
        // listener dropped: connections now refused
    };

    let mut rc = RouterConfig::new(traces.clone(), vec![live.addr().to_string(), dead_addr]);
    rc.owner_retry_ms = 250;
    let rh = router::spawn(rc).unwrap();
    let addr = rh.addr().to_string();

    let tenants = load_tenants(&traces).unwrap();
    let mut c = Client::connect_retry(&addr, Duration::from_secs(5)).unwrap();
    let mut backoff = DeferBackoff::new(5, 200, 1);
    send_events(&mut c, 0, &tenants[0].events, 64, &mut backoff).unwrap();
    c.request(&Request::Fin).unwrap();

    let rs = rh.join().unwrap();
    let ws = live.join().unwrap();

    assert!(rs.poisoned[1], "dead owner's shard was not poisoned");
    assert!(!rs.poisoned[0], "live owner's shard was poisoned");
    assert!(rs.degraded > 0, "no events were degraded: {rs:?}");
    assert!(rs.conserved(), "unaccounted events: {rs:?}");
    assert!(rs.owner_reports[0].is_some(), "live owner's report missing");
    assert!(rs.owner_reports[1].is_none());
    assert_eq!(rs.per_owner_sent[0], ws.events, "live owner lost events");
    assert_eq!(ws.violations(), 0);
    assert_eq!(ws.foreign_events(), 0);
}

#[test]
fn poisoned_shard_rejoins_when_its_owner_returns() {
    let dir = temp_dir("rejoin");
    let trace = make_trace(&dir, "t.trace", 13);
    let traces = vec![trace];

    // Shard 0 is live from the start; shard 1's address is reserved (and
    // refused) until we bring its owner up mid-run.
    let mut wc = WorkerConfig::new(traces.clone(), 0, 2);
    wc.budget_ms = 0;
    wc.threads = 1;
    wc.linger_ms = 400;
    let live = worker::spawn(wc).unwrap();
    let late_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };

    let mut rc = RouterConfig::new(
        traces.clone(),
        vec![live.addr().to_string(), late_addr.clone()],
    );
    rc.owner_retry_ms = 150;
    let rh = router::spawn(rc).unwrap();
    let addr = rh.addr().to_string();

    let tenants = load_tenants(&traces).unwrap();
    let events = &tenants[0].events;
    let half = events.len() / 2;
    let mut c = Client::connect_retry(&addr, Duration::from_secs(5)).unwrap();
    let mut backoff = DeferBackoff::new(5, 200, 1);

    // First half: shard 1's owner is down, so its share poisons and
    // degrades once the retry window closes.
    send_events(&mut c, 0, &events[..half], 32, &mut backoff).unwrap();
    std::thread::sleep(Duration::from_millis(500));

    // The owner comes back on the *same* address; wait out the probe
    // interval so the next shard-1 flush reconnects.
    let mut wc = WorkerConfig::new(traces.clone(), 1, 2);
    wc.listen = late_addr;
    wc.budget_ms = 0;
    wc.threads = 1;
    wc.linger_ms = 400;
    let returned = worker::spawn(wc).unwrap();
    std::thread::sleep(router::PROBE_INTERVAL + Duration::from_millis(200));

    send_events(&mut c, 0, &events[half..], 32, &mut backoff).unwrap();
    c.request(&Request::Fin).unwrap();

    let rs = rh.join().unwrap();
    let ws_live = live.join().unwrap();
    let ws_ret = returned.join().unwrap();

    assert!(!rs.poisoned[1], "shard 1 still poisoned after owner rejoin");
    assert!(!rs.poisoned[0]);
    assert!(rs.degraded > 0, "outage degraded nothing: {rs:?}");
    assert!(rs.per_owner_sent[1] > 0, "rejoined owner got no events");
    assert!(rs.conserved(), "unaccounted events: {rs:?}");
    assert!(
        rs.owner_reports[1].is_some(),
        "rejoined owner never reported"
    );
    for w in [&ws_live, &ws_ret] {
        assert_eq!(w.violations(), 0, "shard {} violated capacity", w.shard);
        assert_eq!(w.foreign_events(), 0);
    }
}

#[test]
fn placement_file_pins_the_plans_across_processes() {
    let dir = temp_dir("placement");
    let trace = make_trace(&dir, "t.trace", 5);
    let tenants = load_tenants(&[trace]).unwrap();

    let built = build_plans(&tenants, 3, Routing::MinCut, None).unwrap();
    let path = dir.join("cluster.plc");
    save_plans(&built, &path).unwrap();
    let imported = build_plans(&tenants, 3, Routing::MinCut, Some(&path)).unwrap();

    for (a, b) in built.iter().zip(&imported) {
        assert_eq!(a.task_shard, b.task_shard);
        assert_eq!(a.worker_shard, b.worker_shard);
        assert_eq!(a.edge_shard, b.edge_shard);
        assert_eq!(a.cross_edges, b.cross_edges);
    }

    // Dimension mismatches are deployment errors, reported not panicked.
    assert!(build_plans(&tenants, 4, Routing::MinCut, Some(&path)).is_err());
}
