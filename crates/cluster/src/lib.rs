//! Multi-process shard-owner cluster: a router process owning admission
//! and placement, and shard-owner workers each running a single-shard
//! dispatch service behind the CRC-framed `mbta-net` protocol.
//!
//! # Topology
//!
//! ```text
//!   clients ──TCP──► router (mbta route)
//!                      │  admission (bounded queue, RETRY-AFTER)
//!                      │  per-namespace ShardPlan routing
//!                      ├──TCP──► shard-worker 0   (owns shard 0, own WAL dir)
//!                      ├──TCP──► shard-worker 1   (owns shard 1, own WAL dir)
//!                      └──TCP──► shard-worker N-1
//! ```
//!
//! Every process loads the *same ordered tenant trace list*, so tenant
//! `i`'s universe, edge weights, and [`ShardPlan`] are reconstructed
//! identically everywhere (the plan build is deterministic; a shared
//! placement file via `mbta-partition` pins it explicitly). The router
//! routes each admitted event to the shard that owns its node and forwards
//! it over a per-owner connection; the worker re-routes on arrival with
//! [`ServiceConfig::owned_shard`] set, so any router/worker disagreement
//! surfaces as a `foreign_events` counter instead of silent misplacement.
//!
//! # Tenant namespaces
//!
//! The wire protocol scopes every `EVENT_BATCH` by a `u32` namespace id —
//! the tenant's index into the ordered trace list. Each worker runs one
//! [`DispatchService`] *per namespace*, each with its own WAL subdirectory
//! (`ns-<i>`), its own decision log, and its own capacity state: tenants
//! share processes and sockets but no dispatch state, which is what the
//! namespace-isolation test asserts byte-for-byte.
//!
//! # Failure model
//!
//! Admission is exactly-once at the router (all-or-nothing batch pushes);
//! router → owner forwarding is *at-least-once* (a reply lost to a broken
//! connection is retried, and every event is idempotent under replay at
//! the service layer). A dead owner — send failure that outlives the
//! reconnect window — poisons its shard at the router: events routed to it
//! are degraded (counted, surfaced in the final report, `POISONED` printed
//! once) and the run still finishes. Admitted events are therefore never
//! silently lost: they are either applied by a live owner or counted as
//! poisoned-shard degradations.
//!
//! [`DispatchService`]: mbta_service::DispatchService
//! [`ServiceConfig::owned_shard`]: mbta_service::ServiceConfig::owned_shard
//! [`ShardPlan`]: mbta_service::ShardPlan

pub mod router;
pub mod topology;
pub mod worker;

pub use router::{RouterConfig, RouterHandle, RouterSummary};
pub use topology::{build_plans, load_tenants, save_plans, Tenant};
pub use worker::{WorkerConfig, WorkerHandle, WorkerSummary};
