//! The cluster router: admission, placement-based routing, owner fan-out.
//!
//! The router owns the client-facing endpoint. Admission reuses the
//! `mbta-net` ingress — bounded queue, all-or-nothing batch pushes,
//! RETRY-AFTER backpressure — so a client's event is either admitted
//! exactly once or never admitted at all. Each admitted `(namespace,
//! event)` pair is routed with the namespace's [`ShardPlan`] (the same
//! node→shard maps the workers hold) and handed to the owning shard's
//! sender thread, which batches and forwards it over a persistent
//! connection.
//!
//! Forwarding is at-least-once: a reply lost to a broken connection is
//! retried after reconnecting. A send failure that outlives the reconnect
//! window (`owner_retry_ms`) marks the shard *poisoned* — a `POISONED`
//! line is printed, buffered and subsequent events for that shard are
//! counted as degraded — but not forever: the sender keeps probing the
//! owner address (at most once per [`PROBE_INTERVAL`]) and resumes
//! forwarding the moment a probe connects, so a restarted owner rejoins
//! the cluster without router intervention. Events degraded during the
//! outage stay degraded; only the flag clears. Cross-shard benefit
//! updates are dropped and counted here (single-shard owners cannot
//! apply them; the boundary-rescue overlay is a single-process
//! construct), matching the online path's `CrossBenefit` accounting.
//!
//! On FIN the router flushes every sender, FINs the live owners, and polls
//! `QUERY_REPORT` until each owner's admitted-event count matches what was
//! forwarded to it (or a deadline passes), so the final report reflects
//! fully-drained owners.
//!
//! [`ShardPlan`]: mbta_service::ShardPlan

use crate::topology::{build_plans, load_tenants, save_plans};
use mbta_net::{Client, NetConfig, NetIngress, Reply, Request, ShardReportInfo};
use mbta_service::shard::UNMAPPED;
use mbta_service::{Arrival, Routing, ServiceEvent, ShardPlan};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Client-facing listen address (`127.0.0.1:0` binds an ephemeral
    /// port).
    pub listen: String,
    /// Owner addresses, indexed by shard id (`len` = shard count).
    pub owners: Vec<String>,
    /// Ordered tenant trace list (must match the workers').
    pub traces: Vec<PathBuf>,
    /// Task-to-shard routing (must match the workers').
    pub routing: Routing,
    /// Optional placement file pinning the plans.
    pub placements: Option<PathBuf>,
    /// Export the built plans to this placement file before serving.
    pub save_placements: Option<PathBuf>,
    /// Admission queue capacity.
    pub queue_cap: usize,
    /// Events per forwarded `EVENT_BATCH` frame.
    pub batch: usize,
    /// Reconnect window before a failing owner poisons its shard.
    pub owner_retry_ms: u64,
    /// Max wait for each owner's final report after FIN.
    pub report_wait_ms: u64,
}

impl RouterConfig {
    /// A router over the given owner list and tenant traces, with
    /// defaults sized for the in-process bench and CI topologies.
    pub fn new(traces: Vec<PathBuf>, owners: Vec<String>) -> RouterConfig {
        RouterConfig {
            listen: "127.0.0.1:0".to_string(),
            owners,
            traces,
            routing: Routing::HashId,
            placements: None,
            save_placements: None,
            queue_cap: 4096,
            batch: 128,
            owner_retry_ms: 2000,
            report_wait_ms: 10_000,
        }
    }
}

/// What a router run produced.
#[derive(Debug)]
pub struct RouterSummary {
    /// Events admitted from clients (exactly-once).
    pub admitted: u64,
    /// Events accepted by owners (at-least-once forwarding).
    pub forwarded: u64,
    /// Events degraded because their shard was poisoned.
    pub degraded: u64,
    /// Events dropped as malformed (unknown ids, bad weights).
    pub invalid: u64,
    /// Cross-shard benefit updates dropped (counted, never applied).
    pub cross_benefit: u64,
    /// Events carrying a namespace id outside the tenant list.
    pub unknown_namespace: u64,
    /// Final poisoned flag per shard.
    pub poisoned: Vec<bool>,
    /// Final per-owner reports (`None` for poisoned/unreachable owners).
    pub owner_reports: Vec<Option<ShardReportInfo>>,
    /// Events forwarded per owner (the FIN drain target).
    pub per_owner_sent: Vec<u64>,
}

impl RouterSummary {
    /// True when every admitted event was either applied by an owner or
    /// explicitly accounted (degraded / invalid / cross / unknown-ns).
    pub fn conserved(&self) -> bool {
        self.admitted
            == self.forwarded
                + self.degraded
                + self.invalid
                + self.cross_benefit
                + self.unknown_namespace
    }
}

/// A router running on a background thread.
pub struct RouterHandle {
    addr: SocketAddr,
    thread: JoinHandle<Result<RouterSummary, String>>,
}

impl RouterHandle {
    /// The bound client-facing address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the router to drain, FIN its owners, and finish.
    pub fn join(self) -> Result<RouterSummary, String> {
        self.thread
            .join()
            .unwrap_or_else(|_| Err("router thread panicked".into()))
    }
}

/// Binds the client endpoint, then runs the router on a background
/// thread. Binding happens first so the caller has the address
/// immediately.
pub fn spawn(cfg: RouterConfig) -> Result<RouterHandle, String> {
    let ingress = bind(&cfg)?;
    let addr = ingress.local_addr();
    let thread = std::thread::spawn(move || run_with_ingress(cfg, ingress));
    Ok(RouterHandle { addr, thread })
}

/// Runs the router to completion on the calling thread, reporting the
/// bound address through `on_ready` before serving.
pub fn run(cfg: RouterConfig, on_ready: impl FnOnce(SocketAddr)) -> Result<RouterSummary, String> {
    let ingress = bind(&cfg)?;
    on_ready(ingress.local_addr());
    run_with_ingress(cfg, ingress)
}

fn bind(cfg: &RouterConfig) -> Result<NetIngress, String> {
    if cfg.owners.is_empty() {
        return Err("need at least one owner address".into());
    }
    NetIngress::bind(NetConfig {
        addr: cfg.listen.clone(),
        queue_cap: cfg.queue_cap,
        ..NetConfig::default()
    })
    .map_err(|e| format!("cannot bind {}: {e}", cfg.listen))
}

/// Where one event goes.
enum Route {
    Shard(usize),
    CrossBenefit,
    Invalid,
}

/// Routes one event with the namespace's plan — the same maps
/// `DispatchService` routes with, so owners see zero foreign events when
/// router and worker agree on the topology.
fn route_event(plan: &ShardPlan, ev: &ServiceEvent) -> Route {
    match *ev {
        ServiceEvent::WorkerJoin(w) | ServiceEvent::WorkerLeave(w) => plan
            .worker_shard
            .get(w as usize)
            .map_or(Route::Invalid, |&s| Route::Shard(s as usize)),
        ServiceEvent::TaskPost(t) | ServiceEvent::TaskCancel(t) | ServiceEvent::TaskComplete(t) => {
            plan.task_shard
                .get(t as usize)
                .map_or(Route::Invalid, |&s| Route::Shard(s as usize))
        }
        ServiceEvent::BenefitUpdate { edge, weight } => {
            if !weight.is_finite() || weight < 0.0 {
                return Route::Invalid;
            }
            match plan.edge_shard.get(edge as usize) {
                None => Route::Invalid,
                Some(&s) if s == UNMAPPED => Route::CrossBenefit,
                Some(&s) => Route::Shard(s as usize),
            }
        }
    }
}

/// Minimum spacing between reconnect probes to a poisoned owner. Keeps
/// the degrade path fast (no per-flush connect attempts against a dead
/// address) while bounding how long a restarted owner waits to rejoin.
pub const PROBE_INTERVAL: Duration = Duration::from_millis(500);

/// State shared between the main loop and one owner's sender thread.
struct OwnerShared {
    poisoned: AtomicBool,
    sent: AtomicU64,
    degraded: AtomicU64,
}

enum SenderMsg {
    Event(u32, Arrival),
    Finish,
}

fn run_with_ingress(cfg: RouterConfig, ingress: NetIngress) -> Result<RouterSummary, String> {
    let tenants = load_tenants(&cfg.traces)?;
    let n_shards = cfg.owners.len();
    let plans = build_plans(&tenants, n_shards, cfg.routing, cfg.placements.as_deref())?;
    if let Some(path) = &cfg.save_placements {
        save_plans(&plans, path)
            .map_err(|e| format!("cannot save placements {}: {e}", path.display()))?;
    }
    let n_ns = tenants.len();
    drop(tenants); // the router only needs the plans

    let shared: Vec<Arc<OwnerShared>> = (0..n_shards)
        .map(|_| {
            Arc::new(OwnerShared {
                poisoned: AtomicBool::new(false),
                sent: AtomicU64::new(0),
                degraded: AtomicU64::new(0),
            })
        })
        .collect();

    let mut txs = Vec::with_capacity(n_shards);
    let mut senders = Vec::with_capacity(n_shards);
    for (s, addr) in cfg.owners.iter().enumerate() {
        let (tx, rx) = mpsc::channel::<SenderMsg>();
        let link = OwnerLink {
            shard: s,
            addr: addr.clone(),
            n_ns,
            batch: cfg.batch.max(1),
            retry_window: Duration::from_millis(cfg.owner_retry_ms),
            report_wait: Duration::from_millis(cfg.report_wait_ms),
            shared: Arc::clone(&shared[s]),
        };
        txs.push(tx);
        senders.push(std::thread::spawn(move || link.run(rx)));
    }

    let mut admitted: u64 = 0;
    let mut invalid: u64 = 0;
    let mut cross_benefit: u64 = 0;
    let mut unknown_namespace: u64 = 0;
    let mut channel_degraded: u64 = 0;
    loop {
        match ingress.pop_wait(Duration::from_millis(50)) {
            Some((ns, a)) => {
                admitted += 1;
                let i = ns as usize;
                if i >= plans.len() {
                    unknown_namespace += 1;
                    continue;
                }
                match route_event(&plans[i], &a.event) {
                    Route::Shard(s) => {
                        // A dead sender thread can no longer receive; its
                        // shard is (or is about to be) poisoned.
                        if txs[s].send(SenderMsg::Event(ns, a)).is_err() {
                            channel_degraded += 1;
                        }
                    }
                    Route::CrossBenefit => cross_benefit += 1,
                    Route::Invalid => invalid += 1,
                }
            }
            None => {
                if ingress.fin_received() && ingress.is_drained() {
                    break;
                }
            }
        }
        ingress.set_status(admitted, 0, 0.0);
    }

    for tx in &txs {
        let _ = tx.send(SenderMsg::Finish);
    }
    drop(txs);
    let owner_reports: Vec<Option<ShardReportInfo>> = senders
        .into_iter()
        .map(|h| h.join().unwrap_or(None))
        .collect();

    let poisoned: Vec<bool> = shared
        .iter()
        .map(|s| s.poisoned.load(Ordering::SeqCst))
        .collect();
    let per_owner_sent: Vec<u64> = shared
        .iter()
        .map(|s| s.sent.load(Ordering::SeqCst))
        .collect();
    let forwarded: u64 = per_owner_sent.iter().sum();
    let degraded: u64 = shared
        .iter()
        .map(|s| s.degraded.load(Ordering::SeqCst))
        .sum::<u64>()
        + channel_degraded;

    let live = owner_reports.iter().flatten();
    ingress.set_report(ShardReportInfo {
        shard: 0,
        n_shards: n_shards as u32,
        poisoned: poisoned.iter().any(|&p| p),
        namespaces: n_ns as u32,
        events: admitted,
        foreign_events: live.clone().map(|r| r.foreign_events).sum(),
        decisions: live.clone().map(|r| r.decisions).sum(),
        assignments: live.clone().map(|r| r.assignments).sum(),
        total_weight: live.map(|r| r.total_weight).sum(),
    });

    Ok(RouterSummary {
        admitted,
        forwarded,
        degraded,
        invalid,
        cross_benefit,
        unknown_namespace,
        poisoned,
        owner_reports,
        per_owner_sent,
    })
}

/// One owner's sender: buffers per namespace, forwards batches, detects
/// death, and drains the final report after FIN.
struct OwnerLink {
    shard: usize,
    addr: String,
    n_ns: usize,
    batch: usize,
    retry_window: Duration,
    report_wait: Duration,
    shared: Arc<OwnerShared>,
}

impl OwnerLink {
    fn run(self, rx: mpsc::Receiver<SenderMsg>) -> Option<ShardReportInfo> {
        let mut bufs: Vec<Vec<Arrival>> = vec![Vec::new(); self.n_ns];
        let mut client: Option<Client> = None;
        let mut last_probe: Option<Instant> = None;
        loop {
            match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(SenderMsg::Event(ns, a)) => {
                    let buf = &mut bufs[ns as usize];
                    buf.push(a);
                    if buf.len() >= self.batch {
                        self.flush_ns(&mut client, &mut last_probe, ns, buf);
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    self.flush_all(&mut client, &mut last_probe, &mut bufs);
                }
                Ok(SenderMsg::Finish) | Err(mpsc::RecvTimeoutError::Disconnected) => {
                    self.flush_all(&mut client, &mut last_probe, &mut bufs);
                    break;
                }
            }
        }
        if self.shared.poisoned.load(Ordering::SeqCst) {
            // Best-effort Fin so an owner that came back after the last
            // event (and was never probed again) still shuts down; a dead
            // address refuses instantly, so this never stalls the drain.
            if let Ok(mut c) = Client::connect(&self.addr, Duration::from_millis(200)) {
                let _ = c.request(&Request::Fin);
            }
            return None;
        }
        self.fin_and_report(client)
    }

    fn flush_all(
        &self,
        client: &mut Option<Client>,
        last_probe: &mut Option<Instant>,
        bufs: &mut [Vec<Arrival>],
    ) {
        for (ns, buf) in bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                self.flush_ns(client, last_probe, ns as u32, buf);
            }
        }
    }

    fn flush_ns(
        &self,
        client: &mut Option<Client>,
        last_probe: &mut Option<Instant>,
        ns: u32,
        buf: &mut Vec<Arrival>,
    ) {
        if buf.is_empty() {
            return;
        }
        if self.shared.poisoned.load(Ordering::SeqCst) && !self.try_rejoin(client, last_probe) {
            self.shared
                .degraded
                .fetch_add(buf.len() as u64, Ordering::SeqCst);
            buf.clear();
            return;
        }
        match self.deliver(client, ns, buf) {
            Ok(accepted) => {
                self.shared.sent.fetch_add(accepted, Ordering::SeqCst);
                buf.clear();
            }
            Err(reason) => {
                self.shared.poisoned.store(true, Ordering::SeqCst);
                println!(
                    "POISONED shard {}: owner {} unreachable ({reason}); degrading its events",
                    self.shard, self.addr
                );
                self.shared
                    .degraded
                    .fetch_add(buf.len() as u64, Ordering::SeqCst);
                buf.clear();
            }
        }
    }

    /// One reconnect probe against a poisoned owner, rate-limited to
    /// [`PROBE_INTERVAL`]. A successful connect clears the poisoned flag
    /// and hands the fresh connection to the delivery path; a refused or
    /// skipped probe leaves the shard degrading.
    fn try_rejoin(&self, client: &mut Option<Client>, last_probe: &mut Option<Instant>) -> bool {
        if last_probe.is_some_and(|t| t.elapsed() < PROBE_INTERVAL) {
            return false;
        }
        *last_probe = Some(Instant::now());
        match Client::connect(&self.addr, Duration::from_millis(250)) {
            Ok(c) => {
                *client = Some(c);
                self.shared.poisoned.store(false, Ordering::SeqCst);
                println!(
                    "shard {} owner {} rejoined; resuming forwarding",
                    self.shard, self.addr
                );
                true
            }
            Err(_) => false,
        }
    }

    /// Sends one batch, reconnecting on failure until the retry window
    /// closes. RETRY-AFTER replies reset the window: a backpressuring
    /// owner is alive, not dead.
    fn deliver(
        &self,
        client: &mut Option<Client>,
        ns: u32,
        events: &[Arrival],
    ) -> Result<u64, String> {
        let mut deadline = Instant::now() + self.retry_window;
        loop {
            if client.is_none() {
                match Client::connect(&self.addr, Duration::from_secs(5)) {
                    Ok(c) => *client = Some(c),
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(format!("connect: {e}"));
                        }
                        std::thread::sleep(Duration::from_millis(50));
                        continue;
                    }
                }
            }
            let req = Request::EventBatch {
                ns,
                events: events.to_vec(),
            };
            match client
                .as_mut()
                .expect("client connected above")
                .request(&req)
            {
                Ok(Reply::Ok { accepted }) => return Ok(accepted as u64),
                Ok(Reply::RetryAfter { hint_ms }) => {
                    std::thread::sleep(Duration::from_millis(hint_ms.max(1) as u64));
                    deadline = Instant::now() + self.retry_window;
                }
                Ok(other) => return Err(format!("owner rejected batch: {other:?}")),
                Err(e) => {
                    *client = None;
                    if Instant::now() >= deadline {
                        return Err(format!("send: {e}"));
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// FINs the owner, then polls its report until the admitted count
    /// matches what we forwarded (the owner lingers after finishing
    /// exactly so this poll can land).
    fn fin_and_report(&self, mut client: Option<Client>) -> Option<ShardReportInfo> {
        let sent = self.shared.sent.load(Ordering::SeqCst);
        if client.is_none() {
            client = Client::connect(&self.addr, Duration::from_secs(5)).ok();
        }
        if let Some(c) = client.as_mut() {
            let _ = c.request(&Request::Fin); // Fin reply closes the conn
        }
        let deadline = Instant::now() + self.report_wait;
        let mut last: Option<ShardReportInfo> = None;
        loop {
            if let Ok(mut c) = Client::connect(&self.addr, Duration::from_secs(5)) {
                if let Ok(Reply::ShardReport(info)) = c.request(&Request::QueryReport) {
                    let drained = info.events >= sent;
                    last = Some(info);
                    if drained {
                        return last;
                    }
                }
            }
            if Instant::now() >= deadline {
                return last;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}
