//! Shared cluster topology: tenant universes and per-namespace plans.
//!
//! Router, workers, and the client simulator all call [`load_tenants`]
//! with the *same ordered trace list* and [`build_plans`] with the same
//! shard count and routing, so every process reconstructs identical
//! universes and identical [`ShardPlan`]s without any cluster-membership
//! protocol: the trace list *is* the cluster configuration. A placement
//! file (see `mbta-partition`) can pin the plans explicitly — useful when
//! a min-cut plan should survive re-planning on one node without the
//! others noticing.

use mbta_market::benefit::edge_weights;
use mbta_market::{BenefitParams, Combiner};
use mbta_partition::{load_placements, save_placements, PlacementMap};
use mbta_service::{Arrival, Routing, ShardPlan};
use mbta_workload::trace::TraceFile;
use std::path::{Path, PathBuf};

/// One tenant: a realized universe plus its normalized event stream.
pub struct Tenant {
    /// Namespace id — the tenant's index in the ordered trace list.
    pub ns: u32,
    /// The realized worker–task universe.
    pub graph: mbta_graph::BipartiteGraph,
    /// Balanced mutual-benefit edge weights over `graph`.
    pub weights: Vec<f64>,
    /// The trace's event stream as service arrivals.
    pub events: Vec<Arrival>,
    /// The trace's generator seed (drives ingress jitter and drift).
    pub seed: u64,
}

impl Tenant {
    /// Builds a tenant from a parsed trace file.
    pub fn from_trace_file(ns: u32, tf: TraceFile) -> Result<Tenant, String> {
        let seed = tf.spec.seed;
        let market = tf.spec.generate();
        let graph = market
            .realize(&BenefitParams::default())
            .map_err(|e| format!("tenant {ns}: {e}"))?;
        let weights = edge_weights(&graph, Combiner::balanced());
        let events = tf.events.into_iter().map(Arrival::from_trace).collect();
        Ok(Tenant {
            ns,
            graph,
            weights,
            events,
            seed,
        })
    }
}

/// Loads the ordered tenant list from trace files on disk.
///
/// The order defines the namespace ids; every cluster process must be
/// given the identical list.
pub fn load_tenants(traces: &[PathBuf]) -> Result<Vec<Tenant>, String> {
    if traces.is_empty() {
        return Err("at least one tenant trace is required".into());
    }
    traces
        .iter()
        .enumerate()
        .map(|(i, path)| {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read trace {}: {e}", path.display()))?;
            let tf = TraceFile::parse(&text)
                .map_err(|e| format!("cannot parse trace {}: {e}", path.display()))?;
            Tenant::from_trace_file(i as u32, tf)
        })
        .collect()
}

/// Builds (or imports) one [`ShardPlan`] per tenant.
///
/// Without a placement file the plan is rebuilt deterministically from the
/// tenant universe — identical on every process. With one, the node→shard
/// maps are imported verbatim, after validating that the file's tenant
/// count, shard count, and universe dimensions match this topology.
pub fn build_plans(
    tenants: &[Tenant],
    n_shards: usize,
    routing: Routing,
    placements: Option<&Path>,
) -> Result<Vec<ShardPlan>, String> {
    if n_shards == 0 {
        return Err("need at least one shard".into());
    }
    let Some(path) = placements else {
        return Ok(tenants
            .iter()
            .map(|t| ShardPlan::build(&t.graph, &t.weights, n_shards, routing))
            .collect());
    };
    let maps = load_placements(path)
        .map_err(|e| format!("cannot load placements {}: {e}", path.display()))?;
    if maps.len() != tenants.len() {
        return Err(format!(
            "placement file {} holds {} namespaces, topology has {}",
            path.display(),
            maps.len(),
            tenants.len()
        ));
    }
    tenants
        .iter()
        .zip(&maps)
        .map(|(t, map)| {
            if map.n_shards as usize != n_shards {
                return Err(format!(
                    "namespace {}: placement has {} shards, topology has {n_shards}",
                    t.ns, map.n_shards
                ));
            }
            if map.task_shard.len() != t.graph.n_tasks()
                || map.worker_shard.len() != t.graph.n_workers()
            {
                return Err(format!(
                    "namespace {}: placement dimensions {}x{} do not match universe {}x{}",
                    t.ns,
                    map.worker_shard.len(),
                    map.task_shard.len(),
                    t.graph.n_workers(),
                    t.graph.n_tasks()
                ));
            }
            Ok(ShardPlan::from_placement(&t.graph, &t.weights, map))
        })
        .collect()
}

/// Exports the per-tenant plans to a placement file other processes can
/// import via [`build_plans`].
pub fn save_plans(plans: &[ShardPlan], path: &Path) -> std::io::Result<()> {
    let maps: Vec<PlacementMap> = plans.iter().map(|p| p.placement()).collect();
    save_placements(path, &maps)
}
