//! The shard-owner worker: one process, one shard, N tenant namespaces.
//!
//! A worker binds a `mbta-net` ingress, reconstructs every tenant's
//! universe and plan from the shared topology, and runs one
//! [`DispatchService`] per namespace with
//! [`ServiceConfig::owned_shard`] pinned to its shard. Events arrive
//! already routed by the router; the service re-routes on arrival, so a
//! misrouted event lands in the `foreign_events` counter instead of a
//! foreign shard's state. Each namespace gets its own WAL subdirectory
//! (`<wal_dir>/ns-<i>`) and its own decision log — tenants share the
//! process, never dispatch state.
//!
//! After the FIN drain the worker publishes its final [`ShardReportInfo`]
//! and *lingers* for a configurable window, still answering
//! `QUERY_REPORT`, so the router can confirm delivery counts before the
//! process exits.
//!
//! [`DispatchService`]: mbta_service::DispatchService
//! [`ServiceConfig::owned_shard`]: mbta_service::ServiceConfig::owned_shard

use crate::topology::{build_plans, load_tenants};
use mbta_net::{NetConfig, NetIngress, ShardReportInfo};
use mbta_service::{
    BatchStats, BudgetMode, Decision, DecisionSink, DispatchService, FsyncPolicy, NullSink,
    OfferOutcome, OnlineConfig, Routing, ServiceConfig, ServiceReport, StoreConfig, WriteSink,
};
use mbta_store::store::DurableStore;
use std::io::{BufWriter, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shard-owner worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Listen address (`127.0.0.1:0` binds an ephemeral port).
    pub listen: String,
    /// The one shard this worker owns.
    pub shard: usize,
    /// Total shards in the cluster plan.
    pub n_shards: usize,
    /// Task-to-shard routing (must match the router's).
    pub routing: Routing,
    /// Ordered tenant trace list (must match the router's).
    pub traces: Vec<PathBuf>,
    /// Optional placement file pinning the plans.
    pub placements: Option<PathBuf>,
    /// Per-owner WAL root; namespace `i` journals under `ns-<i>`.
    pub wal_dir: Option<PathBuf>,
    /// WAL fsync policy.
    pub fsync: FsyncPolicy,
    /// Group-commit window (records per combined WAL write).
    pub group_commit: u64,
    /// Snapshot cadence in committed batches (`0` = final only).
    pub snapshot_every: u64,
    /// Ingress queue capacity.
    pub queue_cap: usize,
    /// Solver threads per service (`0` = available parallelism).
    pub threads: usize,
    /// Per-event online dispatch with this drift threshold, instead of
    /// micro-batching.
    pub online: Option<f64>,
    /// Per-batch wall-clock solve budget; `0` = deterministic (exact).
    pub budget_ms: u64,
    /// How long to keep answering `QUERY_REPORT` after the FIN drain.
    pub linger_ms: u64,
    /// Directory for per-namespace decision logs (`ns-<i>.log`).
    pub decisions_dir: Option<PathBuf>,
    /// Capture per-namespace decision logs in the summary (tests).
    pub collect_decisions: bool,
}

impl WorkerConfig {
    /// A worker for `shard` of `n_shards` over the given tenant list,
    /// with defaults matching the single-process `serve` path.
    pub fn new(traces: Vec<PathBuf>, shard: usize, n_shards: usize) -> WorkerConfig {
        WorkerConfig {
            listen: "127.0.0.1:0".to_string(),
            shard,
            n_shards,
            routing: Routing::HashId,
            traces,
            placements: None,
            wal_dir: None,
            fsync: FsyncPolicy::Batch,
            group_commit: 1,
            snapshot_every: 0,
            queue_cap: 4096,
            threads: 0,
            online: None,
            budget_ms: 50,
            linger_ms: 3000,
            decisions_dir: None,
            collect_decisions: false,
        }
    }
}

/// What a worker run produced.
#[derive(Debug)]
pub struct WorkerSummary {
    /// The shard this worker owned.
    pub shard: usize,
    /// Per-namespace service reports, in namespace order.
    pub reports: Vec<ServiceReport>,
    /// Events popped from the ingress across all namespaces.
    pub events: u64,
    /// Events carrying a namespace id outside the tenant list (dropped).
    pub unknown_namespace: u64,
    /// Per-namespace decision logs, when
    /// [`WorkerConfig::collect_decisions`] was set (empty otherwise).
    pub decision_logs: Vec<Vec<u8>>,
}

impl WorkerSummary {
    /// Capacity violations summed across namespaces.
    pub fn violations(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.capacity_violations as u64)
            .sum()
    }

    /// Foreign (misrouted) events summed across namespaces.
    pub fn foreign_events(&self) -> u64 {
        self.reports.iter().map(|r| r.foreign_events).sum()
    }
}

/// A worker running on a background thread.
pub struct WorkerHandle {
    addr: SocketAddr,
    thread: JoinHandle<Result<WorkerSummary, String>>,
}

impl WorkerHandle {
    /// The bound ingress address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the worker to drain and finish.
    pub fn join(self) -> Result<WorkerSummary, String> {
        self.thread
            .join()
            .unwrap_or_else(|_| Err("worker thread panicked".into()))
    }
}

/// Binds the ingress, then runs the worker on a background thread.
///
/// Binding happens before the thread starts so the caller has the
/// ephemeral address immediately — the in-process tests and the client
/// simulator wire topologies together this way.
pub fn spawn(cfg: WorkerConfig) -> Result<WorkerHandle, String> {
    let ingress = bind(&cfg)?;
    let addr = ingress.local_addr();
    let thread = std::thread::spawn(move || run_with_ingress(cfg, ingress));
    Ok(WorkerHandle { addr, thread })
}

/// Runs a worker to completion on the calling thread, reporting the bound
/// address through `on_ready` before serving (the CLI prints it so shell
/// scripts can capture ephemeral ports).
pub fn run(cfg: WorkerConfig, on_ready: impl FnOnce(SocketAddr)) -> Result<WorkerSummary, String> {
    let ingress = bind(&cfg)?;
    on_ready(ingress.local_addr());
    run_with_ingress(cfg, ingress)
}

fn bind(cfg: &WorkerConfig) -> Result<NetIngress, String> {
    if cfg.shard >= cfg.n_shards {
        return Err(format!(
            "shard {} out of range for {} shards",
            cfg.shard, cfg.n_shards
        ));
    }
    NetIngress::bind(NetConfig {
        addr: cfg.listen.clone(),
        queue_cap: cfg.queue_cap,
        seed: cfg.shard as u64,
        ..NetConfig::default()
    })
    .map_err(|e| format!("cannot bind {}: {e}", cfg.listen))
}

/// Per-namespace decision sink: memory capture, file log, or discard.
enum WorkerSink {
    Null(NullSink),
    Collect(WriteSink<Vec<u8>>),
    File(WriteSink<BufWriter<std::fs::File>>),
}

impl DecisionSink for WorkerSink {
    fn on_batch(&mut self, stats: &BatchStats, decisions: &[Decision]) {
        match self {
            WorkerSink::Null(s) => s.on_batch(stats, decisions),
            WorkerSink::Collect(s) => s.on_batch(stats, decisions),
            WorkerSink::File(s) => s.on_batch(stats, decisions),
        }
    }
}

fn run_with_ingress(cfg: WorkerConfig, ingress: NetIngress) -> Result<WorkerSummary, String> {
    let tenants = load_tenants(&cfg.traces)?;
    let plans = build_plans(
        &tenants,
        cfg.n_shards,
        cfg.routing,
        cfg.placements.as_deref(),
    )?;

    let svc_cfg = ServiceConfig {
        queue_cap: cfg.queue_cap,
        threads: cfg.threads,
        budget: if cfg.budget_ms == 0 {
            BudgetMode::Deterministic
        } else {
            BudgetMode::Wallclock(cfg.budget_ms)
        },
        online: cfg
            .online
            .map(|drift_threshold| OnlineConfig { drift_threshold }),
        owned_shard: Some(cfg.shard),
        ..ServiceConfig::default()
    };

    let mut svcs: Vec<DispatchService> = tenants
        .iter()
        .zip(&plans)
        .map(|(t, plan)| DispatchService::new(&t.graph, plan, svc_cfg.clone()))
        .collect();

    if let Some(root) = &cfg.wal_dir {
        for (i, svc) in svcs.iter_mut().enumerate() {
            let dir = root.join(format!("ns-{i}"));
            // A fresh run per invocation: recovery agreement is checked
            // offline with `mbta recover` against the same WAL dir.
            let (store, _recovered) = DurableStore::open(
                &dir,
                StoreConfig {
                    fsync: cfg.fsync,
                    snapshot_every: cfg.snapshot_every,
                    group_every: cfg.group_commit,
                    ..StoreConfig::default()
                },
            )
            .map_err(|e| format!("cannot open WAL dir {}: {e}", dir.display()))?;
            svc.attach_store(store);
        }
    }

    let mut sinks: Vec<WorkerSink> = (0..svcs.len())
        .map(|i| {
            if cfg.collect_decisions {
                Ok(WorkerSink::Collect(WriteSink::new(Vec::new())))
            } else if let Some(dir) = &cfg.decisions_dir {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
                let path = dir.join(format!("ns-{i}.log"));
                let file = std::fs::File::create(&path)
                    .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
                Ok(WorkerSink::File(WriteSink::new(BufWriter::new(file))))
            } else {
                Ok(WorkerSink::Null(NullSink))
            }
        })
        .collect::<Result<_, String>>()?;

    let mut popped: u64 = 0;
    let mut unknown_namespace: u64 = 0;
    loop {
        match ingress.pop_wait(Duration::from_millis(50)) {
            Some((ns, a)) => {
                let i = ns as usize;
                if i >= svcs.len() {
                    unknown_namespace += 1;
                } else {
                    popped += 1;
                    while let OfferOutcome::Deferred = svcs[i].offer(a) {
                        svcs[i].pump(&mut sinks[i]);
                    }
                    svcs[i].pump(&mut sinks[i]);
                }
            }
            None => {
                for (svc, sink) in svcs.iter_mut().zip(sinks.iter_mut()) {
                    svc.pump(sink);
                }
                if ingress.fin_received() && ingress.is_drained() {
                    break;
                }
            }
        }
        publish_live(&ingress, &cfg, &svcs, popped);
    }

    let reports: Vec<ServiceReport> = svcs
        .into_iter()
        .zip(sinks.iter_mut())
        .map(|(svc, sink)| svc.finish(sink))
        .collect();

    ingress.set_report(ShardReportInfo {
        shard: cfg.shard as u32,
        n_shards: cfg.n_shards as u32,
        poisoned: false,
        namespaces: reports.len() as u32,
        events: popped,
        foreign_events: reports.iter().map(|r| r.foreign_events).sum(),
        decisions: reports.iter().map(|r| r.decisions).sum(),
        assignments: reports.iter().map(|r| r.final_assignments as u64).sum(),
        total_weight: reports.iter().map(|r| r.final_value).sum(),
    });

    // Linger so the router can poll the final report before we exit.
    let deadline = Instant::now() + Duration::from_millis(cfg.linger_ms);
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }

    let decision_logs = sinks
        .into_iter()
        .map(|sink| match sink {
            WorkerSink::Collect(s) => {
                if let Some(e) = &s.error {
                    return Err(format!("decision log write failed: {e}"));
                }
                Ok(s.into_inner())
            }
            WorkerSink::File(s) => {
                if let Some(e) = &s.error {
                    return Err(format!("decision log write failed: {e}"));
                }
                s.into_inner()
                    .flush()
                    .map_err(|e| format!("decision log flush failed: {e}"))?;
                Ok(Vec::new())
            }
            WorkerSink::Null(_) => Ok(Vec::new()),
        })
        .collect::<Result<Vec<_>, String>>()?;

    Ok(WorkerSummary {
        shard: cfg.shard,
        reports,
        events: popped,
        unknown_namespace,
        decision_logs,
    })
}

fn publish_live(ingress: &NetIngress, cfg: &WorkerConfig, svcs: &[DispatchService], popped: u64) {
    let assignments: usize = svcs.iter().map(|s| s.current_assignments()).sum();
    let total_weight: f64 = svcs.iter().map(|s| s.current_value()).sum();
    let batches: u64 = svcs.iter().map(|s| s.batches_committed()).sum();
    ingress.set_status(batches, assignments, total_weight);
    ingress.set_report(ShardReportInfo {
        shard: cfg.shard as u32,
        n_shards: cfg.n_shards as u32,
        poisoned: false,
        namespaces: svcs.len() as u32,
        events: popped,
        foreign_events: 0,
        decisions: 0,
        assignments: assignments as u64,
        total_weight,
    });
}
