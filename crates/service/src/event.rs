//! The service's ingress event model and adapters.
//!
//! [`ServiceEvent`] is the union of everything a running market can tell
//! the dispatcher: lifecycle churn (join/leave, post/cancel/complete) and
//! benefit drift (an edge's mutual-benefit estimate changed — ratings
//! arrived, a price moved). Workload traces ([`mbta_workload::trace`])
//! only carry lifecycle events, so [`Arrival::from_trace`] adapts them and
//! [`BenefitDrift`] can weave deterministic drift events into any stream
//! for testing and benchmarking.

use mbta_graph::BipartiteGraph;
use mbta_util::SplitMix64;
use mbta_workload::trace::{Event as TraceEvent, TimedEvent};

/// One market event, in universe (parent-graph) ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceEvent {
    /// Worker comes online and can take assignments.
    WorkerJoin(u32),
    /// Worker goes offline; its assignments are dropped and repaired.
    WorkerLeave(u32),
    /// Task is posted and needs workers.
    TaskPost(u32),
    /// Task is cancelled by the requester.
    TaskCancel(u32),
    /// Task completed (same churn effect as cancel, tallied separately).
    TaskComplete(u32),
    /// The mutual-benefit estimate of an edge changed.
    BenefitUpdate {
        /// Universe edge id.
        edge: u32,
        /// New combined weight.
        weight: f64,
    },
}

impl ServiceEvent {
    /// Approximate wire size of the event in bytes, used by the byte
    /// watermark. Matches the decision-log text encoding closely enough
    /// for admission control (exactness is not the point; monotonicity in
    /// payload is).
    pub fn encoded_size(&self) -> usize {
        match self {
            ServiceEvent::BenefitUpdate { .. } => 24,
            _ => 12,
        }
    }

    /// Short keyword for logs and reports.
    pub fn keyword(&self) -> &'static str {
        match self {
            ServiceEvent::WorkerJoin(_) => "join",
            ServiceEvent::WorkerLeave(_) => "leave",
            ServiceEvent::TaskPost(_) => "post",
            ServiceEvent::TaskCancel(_) => "cancel",
            ServiceEvent::TaskComplete(_) => "complete",
            ServiceEvent::BenefitUpdate { .. } => "benefit",
        }
    }
}

/// A service event stamped with its (virtual) arrival time.
///
/// Virtual time is whatever clock the producing trace uses; the service
/// only ever compares differences against its flush watermark, so the unit
/// is opaque (the CLI treats it as milliseconds when `--flush-ms` is
/// given... see `BatchConfig::flush_interval`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival timestamp (strictly monotone within a normalized stream).
    pub time: f64,
    /// The event.
    pub event: ServiceEvent,
}

impl Arrival {
    /// Adapts a workload-trace event to the service's ingress model.
    pub fn from_trace(e: TimedEvent) -> Arrival {
        let event = match e.event {
            TraceEvent::WorkerOn(w) => ServiceEvent::WorkerJoin(w),
            TraceEvent::WorkerOff(w) => ServiceEvent::WorkerLeave(w),
            TraceEvent::TaskPosted(t) => ServiceEvent::TaskPost(t),
            TraceEvent::TaskExpired(t) => ServiceEvent::TaskCancel(t),
        };
        Arrival {
            time: e.time,
            event,
        }
    }
}

/// Deterministically interleaves benefit-drift events into a stream.
///
/// After each upstream event, with probability `rate` a random universe
/// edge gets a fresh weight drawn uniformly from `[0, 1]` and stamped with
/// the same timestamp (normalized streams are strictly monotone, so the
/// drift event is nudged one ULP later to preserve the invariant).
/// Everything is a pure function of `seed`, so replays stay byte-identical.
pub struct BenefitDrift {
    rng: SplitMix64,
    rate: f64,
    n_edges: usize,
}

impl BenefitDrift {
    /// A drift source over `g`'s edges at the given per-event rate.
    pub fn new(g: &BipartiteGraph, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        BenefitDrift {
            rng: SplitMix64::new(seed ^ 0xD81F_7B1C_55E0_93A7),
            rate,
            n_edges: g.n_edges(),
        }
    }

    /// Applies drift to a full stream, returning the interleaved result.
    pub fn weave(mut self, events: impl IntoIterator<Item = Arrival>) -> Vec<Arrival> {
        let mut out = Vec::new();
        for a in events {
            out.push(a);
            if self.n_edges > 0 && self.rng.next_bool(self.rate) {
                let edge = self.rng.next_index(self.n_edges) as u32;
                let weight = self.rng.next_f64();
                out.push(Arrival {
                    time: nudge_after(a.time),
                    event: ServiceEvent::BenefitUpdate { edge, weight },
                });
            }
        }
        out
    }
}

/// One-ULP nudge so woven events keep strict stream monotonicity.
fn nudge_after(x: f64) -> f64 {
    if !x.is_finite() {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::{random_bipartite, RandomGraphSpec};
    use mbta_workload::trace::TraceSpec;

    #[test]
    fn trace_adapter_maps_all_kinds() {
        let cases = [
            (TraceEvent::WorkerOn(1), ServiceEvent::WorkerJoin(1)),
            (TraceEvent::WorkerOff(2), ServiceEvent::WorkerLeave(2)),
            (TraceEvent::TaskPosted(3), ServiceEvent::TaskPost(3)),
            (TraceEvent::TaskExpired(4), ServiceEvent::TaskCancel(4)),
        ];
        for (from, to) in cases {
            let a = Arrival::from_trace(TimedEvent {
                time: 1.5,
                event: from,
            });
            assert_eq!(a.event, to);
            assert_eq!(a.time, 1.5);
        }
    }

    #[test]
    fn drift_is_deterministic_and_rate_bounded() {
        let g = random_bipartite(&RandomGraphSpec::default(), 3);
        let trace = TraceSpec {
            horizon: 24.0,
            mean_session: 4.0,
            mean_task_lifetime: 6.0,
            seed: 5,
        }
        .generate(100, 80);
        let stream: Vec<Arrival> = trace.into_iter().map(Arrival::from_trace).collect();
        let n = stream.len();

        let a = BenefitDrift::new(&g, 0.3, 9).weave(stream.clone());
        let b = BenefitDrift::new(&g, 0.3, 9).weave(stream.clone());
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.time.to_bits() == y.time.to_bits() && x.event == y.event));

        let drifts = a.len() - n;
        assert!(drifts > n / 6 && drifts < n / 2, "drifts {drifts} of {n}");
        // Strict monotonicity preserved.
        assert!(a.windows(2).all(|w| w[0].time < w[1].time));
        // Drift weights healthy, edges in range.
        for ev in &a {
            if let ServiceEvent::BenefitUpdate { edge, weight } = ev.event {
                assert!((edge as usize) < g.n_edges());
                assert!((0.0..=1.0).contains(&weight));
            }
        }

        let zero = BenefitDrift::new(&g, 0.0, 9).weave(stream);
        assert_eq!(zero.len(), n);
    }
}
