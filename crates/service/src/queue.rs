//! Bounded ingress queue with an explicit overload policy.
//!
//! The dispatcher's admission boundary: producers `offer` arrivals, the
//! pump drains them into the batcher. The queue is *bounded* — a dispatch
//! service that buffers without limit converts overload into unbounded
//! memory growth and unbounded staleness, the two failure modes this
//! subsystem exists to prevent. When full, one of three documented things
//! happens, chosen at construction:
//!
//! * [`DropPolicy::DropNewest`] — the offered event is discarded. Keeps
//!   the oldest (most-overdue) work; best when events are independent and
//!   late data is better than lost history. The default.
//! * [`DropPolicy::DropOldest`] — the head of the queue is discarded to
//!   admit the new event. Keeps the freshest view; best when newer events
//!   supersede older ones (benefit updates).
//! * [`DropPolicy::Defer`] — nothing is enqueued; the producer is told to
//!   drain first ([`OfferOutcome::Deferred`]). True backpressure: no event
//!   loss, at the cost of stalling the producer.
//!
//! Every drop and deferral is counted — overload is an operating condition
//! to be measured, never a silent data-quality bug.

use crate::event::Arrival;
use mbta_util::SplitMix64;
use std::collections::VecDeque;
use std::time::Duration;

/// What to do when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPolicy {
    /// Discard the offered (newest) event.
    DropNewest,
    /// Discard the queue head (oldest) to admit the offered event.
    DropOldest,
    /// Admit nothing; tell the producer to drain and retry.
    Defer,
}

impl DropPolicy {
    /// Stable parse keyword.
    pub fn name(&self) -> &'static str {
        match self {
            DropPolicy::DropNewest => "drop-newest",
            DropPolicy::DropOldest => "drop-oldest",
            DropPolicy::Defer => "defer",
        }
    }

    /// Parses a policy keyword.
    pub fn parse(s: &str) -> Option<DropPolicy> {
        match s {
            "drop-newest" => Some(DropPolicy::DropNewest),
            "drop-oldest" => Some(DropPolicy::DropOldest),
            "defer" => Some(DropPolicy::Defer),
            _ => None,
        }
    }
}

/// Result of an [`BoundedQueue::offer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// Enqueued; capacity remained.
    Accepted,
    /// Queue was full; the offered event was discarded.
    DroppedNewest,
    /// Queue was full; the oldest event was discarded, the offer admitted.
    DroppedOldest,
    /// Queue was full; nothing changed — drain and retry.
    Deferred,
}

/// A bounded FIFO of arrivals with drop accounting.
#[derive(Debug)]
pub struct BoundedQueue {
    buf: VecDeque<Arrival>,
    cap: usize,
    policy: DropPolicy,
    dropped_newest: u64,
    dropped_oldest: u64,
    deferrals: u64,
    high_watermark: usize,
}

impl BoundedQueue {
    /// A queue holding at most `cap` events (`cap >= 1`).
    pub fn new(cap: usize, policy: DropPolicy) -> Self {
        assert!(cap >= 1, "queue capacity must be >= 1");
        BoundedQueue {
            buf: VecDeque::with_capacity(cap.min(4096)),
            cap,
            policy,
            dropped_newest: 0,
            dropped_oldest: 0,
            deferrals: 0,
            high_watermark: 0,
        }
    }

    /// Offers an arrival under the queue's overload policy.
    pub fn offer(&mut self, a: Arrival) -> OfferOutcome {
        if self.buf.len() < self.cap {
            self.buf.push_back(a);
            self.high_watermark = self.high_watermark.max(self.buf.len());
            return OfferOutcome::Accepted;
        }
        match self.policy {
            DropPolicy::DropNewest => {
                self.dropped_newest += 1;
                OfferOutcome::DroppedNewest
            }
            DropPolicy::DropOldest => {
                self.buf.pop_front();
                self.dropped_oldest += 1;
                self.buf.push_back(a);
                OfferOutcome::DroppedOldest
            }
            DropPolicy::Defer => {
                self.deferrals += 1;
                OfferOutcome::Deferred
            }
        }
    }

    /// Dequeues the oldest arrival.
    pub fn pop(&mut self) -> Option<Arrival> {
        self.buf.pop_front()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events discarded under [`DropPolicy::DropNewest`].
    pub fn dropped_newest(&self) -> u64 {
        self.dropped_newest
    }

    /// Events discarded under [`DropPolicy::DropOldest`].
    pub fn dropped_oldest(&self) -> u64 {
        self.dropped_oldest
    }

    /// Full-queue offers bounced under [`DropPolicy::Defer`].
    pub fn deferrals(&self) -> u64 {
        self.deferrals
    }

    /// Records a deferral decided *outside* [`BoundedQueue::offer`] —
    /// e.g. an all-or-nothing batch bounced by admission control because
    /// the whole batch did not fit, even though the queue itself was not
    /// full. Keeps the ingress accounting identity intact without
    /// enqueuing anything.
    pub fn note_deferral(&mut self) {
        self.deferrals += 1;
    }

    /// Deepest the queue has ever been.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }
}

/// Capped exponential backoff with jitter for retrying a deferred offer.
///
/// [`DropPolicy::Defer`] tells the producer "drain and retry" — but a
/// producer that retries *immediately* spins: under sustained saturation
/// every retry bounces again and the producer burns a core learning
/// nothing. This schedule spaces the retries out. The k-th consecutive
/// bounce waits on a floor of `min(base · 2^k, cap)` plus a jitter drawn
/// uniformly from `[0, floor/2)` (so the delay lies in
/// `[floor, 1.5·floor)`), and an accepted offer resets the schedule.
/// Jitter comes from [`mbta_util::SplitMix64`], keeping retry timing
/// deterministic in the seed and de-synchronizing producers that
/// saturated at the same instant.
///
/// The same schedule drives the network ingress's RETRY-AFTER hints and
/// the `mbta send` client's retry loop.
///
/// # Example
/// ```
/// use mbta_service::DeferBackoff;
/// let mut b = DeferBackoff::new(1, 64, 42);
/// let first = b.next_delay();
/// let second = b.next_delay();
/// assert!(second >= first || second.as_millis() as u64 >= 64);
/// b.reset(); // an accepted offer starts the schedule over
/// assert_eq!(b.attempts(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct DeferBackoff {
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
    rng: SplitMix64,
}

impl DeferBackoff {
    /// A schedule starting at `base_ms` and saturating at `cap_ms`
    /// (both clamped to at least 1 ms), jittered from `seed`.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> DeferBackoff {
        let base_ms = base_ms.max(1);
        DeferBackoff {
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            attempt: 0,
            rng: SplitMix64::new(seed).derive("defer-backoff"),
        }
    }

    /// The deterministic floor of the delay for the current attempt:
    /// `min(base · 2^attempt, cap)`, before jitter.
    pub fn current_floor(&self) -> Duration {
        let shifted = if self.attempt >= 63 {
            self.cap_ms
        } else {
            self.base_ms.saturating_mul(1u64 << self.attempt)
        };
        Duration::from_millis(shifted.min(self.cap_ms))
    }

    /// Draws the next delay and advances the schedule. The returned
    /// delay is in `[floor, 1.5·floor)` for the current attempt's floor.
    pub fn next_delay(&mut self) -> Duration {
        let floor = self.current_floor().as_millis() as u64;
        let jitter = self.rng.next_below(floor / 2 + 1);
        self.attempt = self.attempt.saturating_add(1);
        Duration::from_millis(floor + jitter)
    }

    /// Consecutive bounces since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Starts the schedule over; call when an offer is accepted.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ServiceEvent;

    fn ev(id: u32) -> Arrival {
        Arrival {
            time: id as f64,
            event: ServiceEvent::TaskPost(id),
        }
    }

    #[test]
    fn drop_newest_keeps_oldest() {
        let mut q = BoundedQueue::new(2, DropPolicy::DropNewest);
        assert_eq!(q.offer(ev(0)), OfferOutcome::Accepted);
        assert_eq!(q.offer(ev(1)), OfferOutcome::Accepted);
        assert_eq!(q.offer(ev(2)), OfferOutcome::DroppedNewest);
        assert_eq!(q.dropped_newest(), 1);
        assert_eq!(q.pop().unwrap().event, ServiceEvent::TaskPost(0));
        assert_eq!(q.pop().unwrap().event, ServiceEvent::TaskPost(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn drop_oldest_keeps_newest() {
        let mut q = BoundedQueue::new(2, DropPolicy::DropOldest);
        q.offer(ev(0));
        q.offer(ev(1));
        assert_eq!(q.offer(ev(2)), OfferOutcome::DroppedOldest);
        assert_eq!(q.dropped_oldest(), 1);
        assert_eq!(q.pop().unwrap().event, ServiceEvent::TaskPost(1));
        assert_eq!(q.pop().unwrap().event, ServiceEvent::TaskPost(2));
    }

    #[test]
    fn defer_admits_nothing_and_counts() {
        let mut q = BoundedQueue::new(1, DropPolicy::Defer);
        assert_eq!(q.offer(ev(0)), OfferOutcome::Accepted);
        assert_eq!(q.offer(ev(1)), OfferOutcome::Deferred);
        assert_eq!(q.offer(ev(1)), OfferOutcome::Deferred);
        assert_eq!(q.deferrals(), 2);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.offer(ev(1)), OfferOutcome::Accepted);
    }

    #[test]
    fn defer_with_zero_retry_budget_loses_nothing() {
        // Policy edge: a producer with no retry budget gives up after the
        // first Deferred instead of pumping. However many times that
        // happens, Defer must stay lossless — the queued events are
        // untouched and every bounce is counted, so the report can show
        // overload even when the producer walked away.
        let mut q = BoundedQueue::new(2, DropPolicy::Defer);
        assert_eq!(q.offer(ev(0)), OfferOutcome::Accepted);
        assert_eq!(q.offer(ev(1)), OfferOutcome::Accepted);
        for i in 2..7 {
            assert_eq!(q.offer(ev(i)), OfferOutcome::Deferred);
        }
        assert_eq!(q.deferrals(), 5);
        assert_eq!(q.dropped_newest() + q.dropped_oldest(), 0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_watermark(), 2);
        // The original admissions are intact and in FIFO order.
        assert_eq!(q.pop().unwrap().event, ServiceEvent::TaskPost(0));
        assert_eq!(q.pop().unwrap().event, ServiceEvent::TaskPost(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn drop_oldest_when_oldest_is_the_only_entry() {
        // Policy edge: cap 1, so "the oldest" and "the only" entry are the
        // same event. The offer must still be admitted (never deferred or
        // bounced), each displacement counted, and the survivor is always
        // the newest offer.
        let mut q = BoundedQueue::new(1, DropPolicy::DropOldest);
        assert_eq!(q.offer(ev(0)), OfferOutcome::Accepted);
        assert_eq!(q.offer(ev(1)), OfferOutcome::DroppedOldest);
        assert_eq!(q.offer(ev(2)), OfferOutcome::DroppedOldest);
        assert_eq!(q.dropped_oldest(), 2);
        assert_eq!(q.len(), 1, "displacement must not change the depth");
        assert_eq!(q.high_watermark(), 1);
        assert_eq!(q.pop().unwrap().event, ServiceEvent::TaskPost(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn high_watermark_tracks_peak_depth() {
        let mut q = BoundedQueue::new(8, DropPolicy::DropNewest);
        for i in 0..5 {
            q.offer(ev(i));
        }
        q.pop();
        q.pop();
        assert_eq!(q.len(), 3);
        assert_eq!(q.high_watermark(), 5);
    }

    #[test]
    fn backoff_floors_are_monotone_up_to_cap() {
        let mut b = DeferBackoff::new(2, 100, 7);
        let mut floors = Vec::new();
        for _ in 0..12 {
            let floor = b.current_floor();
            let delay = b.next_delay();
            // Jitter never dips below the floor and never reaches 1.5×.
            assert!(delay >= floor, "delay {delay:?} below floor {floor:?}");
            assert!(
                delay.as_millis() < floor.as_millis() + floor.as_millis() / 2 + 1,
                "delay {delay:?} exceeds 1.5× floor {floor:?}"
            );
            floors.push(floor.as_millis() as u64);
        }
        // The retry-interval floor sequence is monotone non-decreasing,
        // doubling (2, 4, 8, …) until it pins at the cap.
        assert!(floors.windows(2).all(|w| w[0] <= w[1]), "floors {floors:?}");
        assert_eq!(&floors[..6], &[2, 4, 8, 16, 32, 64]);
        assert!(floors[6..].iter().all(|&f| f == 100), "cap not reached");
    }

    #[test]
    fn backoff_resets_on_accept_and_is_deterministic() {
        let mut a = DeferBackoff::new(1, 64, 99);
        let mut b = DeferBackoff::new(1, 64, 99);
        let first: Vec<_> = (0..5).map(|_| a.next_delay()).collect();
        let again: Vec<_> = (0..5).map(|_| b.next_delay()).collect();
        assert_eq!(first, again, "same seed must give the same schedule");
        assert_eq!(a.attempts(), 5);
        a.reset();
        assert_eq!(a.attempts(), 0);
        assert_eq!(a.current_floor(), Duration::from_millis(1));
    }

    #[test]
    fn backoff_survives_extreme_attempts_and_degenerate_config() {
        // Attempt counts far past the doubling range must pin at the cap,
        // never overflow; base 0 is clamped to 1 ms.
        let mut b = DeferBackoff::new(0, 50, 1);
        for _ in 0..200 {
            let d = b.next_delay();
            assert!(d.as_millis() as u64 <= 50 + 25);
        }
        assert_eq!(b.current_floor(), Duration::from_millis(50));
        // cap below base is clamped up to base.
        let c = DeferBackoff::new(10, 3, 1);
        assert_eq!(c.current_floor(), Duration::from_millis(10));
    }

    #[test]
    fn policy_keywords_round_trip() {
        for p in [
            DropPolicy::DropNewest,
            DropPolicy::DropOldest,
            DropPolicy::Defer,
        ] {
            assert_eq!(DropPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(DropPolicy::parse("yolo"), None);
    }
}
