//! End-of-run service telemetry.
//!
//! [`ServiceReport`] is what `DispatchService::finish` hands back: ingress
//! accounting (drops, deferrals and their retry successes, invalid
//! events), batch/flush breakdowns, solve-quality tier tallies, batch
//! solve-latency percentiles (derived from the shared
//! `mbta_telemetry::Histogram` bucket layout, not a private sample
//! buffer), throughput, and — the acceptance invariant — the
//! capacity-violation count from the cross-shard reconciliation, which
//! must be zero on every run.

use mbta_util::table::{fnum, Table};

/// Aggregated statistics for one service run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Shard count the service ran with.
    pub n_shards: usize,
    /// Universe edges unreachable under the shard plan.
    pub cross_edges: usize,
    /// Fraction of **live** edge weight on intra-shard edges at run end
    /// (plan quality under the weights as they drifted, not as planned).
    pub retained_weight: f64,
    /// Like `retained_weight`, but also crediting cross edges whose
    /// endpoints were ever concurrently live — weight the boundary-rescue
    /// market could reach, so the partition is charged only for what it
    /// made unreachable (equals `retained_weight` with the boundary pass
    /// off).
    pub effective_retained: f64,
    /// Live weight held by the rescue overlay at run end.
    pub rescued_weight: f64,
    /// Boundary-rescue solves executed (≤ batches).
    pub rescue_solves: u64,
    /// Assign decisions the rescue overlay emitted across the run.
    pub rescue_assigns: u64,
    /// Drift-driven re-plans applied (detach → rebuild → resume cycles).
    pub replans: u64,
    /// Workers whose home shard changed across all re-plans.
    pub migrated_workers: u64,
    /// Tasks whose shard changed across all re-plans.
    pub migrated_tasks: u64,

    /// Events offered to the service (before admission control).
    pub events_in: u64,
    /// Events actually applied to shard states.
    pub events_processed: u64,
    /// Events discarded by the `DropNewest` policy.
    pub dropped_newest: u64,
    /// Events discarded by the `DropOldest` policy.
    pub dropped_oldest: u64,
    /// Full-queue offers bounced back under the `Defer` policy.
    pub deferrals: u64,
    /// Offers admitted on the retry immediately after a deferral — the
    /// backpressure loop's success count (previously uncounted).
    pub defer_retry_ok: u64,
    /// Events rejected as malformed (unknown ids, non-finite weights).
    pub invalid_events: u64,
    /// Benefit updates dropped because their edge crosses shards.
    pub cross_benefit_drops: u64,
    /// Events that routed to a shard this process does not own (nonzero
    /// only in the cluster's single-shard ownership mode; a correctly
    /// routing upstream sends none).
    pub foreign_events: u64,
    /// Deepest the ingress queue ever got.
    pub queue_high_watermark: usize,

    /// Batches dispatched.
    pub batches: u64,
    /// Batches closed by the count watermark.
    pub flush_count: u64,
    /// Batches closed by the byte watermark.
    pub flush_bytes: u64,
    /// Batches closed by the time watermark.
    pub flush_watermark: u64,
    /// Final partial batches flushed at end of stream.
    pub flush_drain: u64,
    /// Per-event flushes from the online decision path (one per event
    /// that produced decisions or weight deltas; always zero in batch
    /// mode).
    pub flush_online: u64,

    /// Events decided by the online path (zero in batch mode).
    pub online_events: u64,
    /// Drift-threshold crossings that triggered an exact re-solve (or,
    /// for a poisoned shard, an accumulator reset without one).
    pub online_fallbacks: u64,
    /// Depth-1 exchanges that displaced a weaker assigned edge.
    pub online_exchanges: u64,
    /// Warm-solver re-solves across all shards and plan epochs.
    pub online_warm_solves: u64,
    /// Warm-solver runs that kept the seeded flow (pure warm or
    /// cycle-repaired) instead of redoing the solve cold.
    pub online_warm_hits: u64,
    /// Median per-event online decision latency (wall-clock ms).
    pub p50_online_ms: f64,
    /// 99th-percentile per-event online decision latency (ms).
    pub p99_online_ms: f64,
    /// Worst per-event online decision latency (ms).
    pub max_online_ms: f64,

    /// Per-shard engine solves executed.
    pub solves: u64,
    /// Solves that achieved the exact tier.
    pub tier_exact: u64,
    /// Solves that achieved the approximate tier.
    pub tier_approximate: u64,
    /// Solves that degraded to the greedy floor.
    pub tier_degraded: u64,
    /// Degraded-solve count per shard (poisoned shards show up here).
    pub degraded_by_shard: Vec<u64>,
    /// Solves whose improvement was adopted via incremental reseed.
    pub reseeds: u64,
    /// Assignment deltas emitted.
    pub decisions: u64,

    /// Median per-batch solve latency (wall-clock ms).
    pub p50_solve_ms: f64,
    /// 99th-percentile per-batch solve latency (wall-clock ms).
    pub p99_solve_ms: f64,
    /// Worst per-batch solve latency (wall-clock ms).
    pub max_solve_ms: f64,
    /// Total run wall-clock milliseconds.
    pub wall_ms: f64,
    /// Processed events per wall-clock second.
    pub events_per_sec: f64,

    /// Total weight of the final reconciled assignment.
    pub final_value: f64,
    /// Edges in the final reconciled assignment.
    pub final_assignments: usize,
    /// Capacity violations found when validating the union of shard
    /// assignments against the universe graph. **Must be zero**; a nonzero
    /// value means the node-disjoint shard invariant was broken.
    pub capacity_violations: usize,

    /// Solver-pool width the run used (resolved: `--threads 0` reports the
    /// host's available parallelism, not 0).
    pub pool_threads: usize,
    /// Shard jobs a pool worker took from a sibling's deque; always zero
    /// with one thread, and a load-imbalance signal otherwise.
    pub steals: u64,

    /// Batch records journaled to the WAL (0 when no store is attached).
    pub wal_records: u64,
    /// Frame bytes appended to the WAL.
    pub wal_bytes: u64,
    /// Snapshots written (periodic + the final seal).
    pub snapshots: u64,
    /// First store I/O error, if journaling failed mid-run. The durable
    /// prefix on disk is still valid; everything after the error exists
    /// only in this process's memory.
    pub store_error: Option<String>,
}

impl ServiceReport {
    /// Renders the operator-facing summary tables.
    pub fn render(&self) -> String {
        let mut ingress = Table::new(
            "service: ingress",
            &[
                "events in",
                "processed",
                "dropped",
                "deferred",
                "retry ok",
                "invalid",
                "x-shard benefit",
                "foreign",
                "queue peak",
            ],
        );
        ingress.row(vec![
            self.events_in.to_string(),
            self.events_processed.to_string(),
            (self.dropped_newest + self.dropped_oldest).to_string(),
            self.deferrals.to_string(),
            self.defer_retry_ok.to_string(),
            self.invalid_events.to_string(),
            self.cross_benefit_drops.to_string(),
            self.foreign_events.to_string(),
            self.queue_high_watermark.to_string(),
        ]);

        let mut batches = Table::new(
            "service: batches & solves",
            &[
                "batches",
                "count/bytes/time/drain/online",
                "solves",
                "exact",
                "approx",
                "degraded",
                "reseeds",
                "decisions",
            ],
        );
        batches.row(vec![
            self.batches.to_string(),
            format!(
                "{}/{}/{}/{}/{}",
                self.flush_count,
                self.flush_bytes,
                self.flush_watermark,
                self.flush_drain,
                self.flush_online
            ),
            self.solves.to_string(),
            self.tier_exact.to_string(),
            self.tier_approximate.to_string(),
            self.tier_degraded.to_string(),
            self.reseeds.to_string(),
            self.decisions.to_string(),
        ]);

        let mut perf = Table::new(
            "service: throughput & latency",
            &[
                "shards",
                "threads",
                "steals",
                "retained wt",
                "events/sec",
                "p50 ms",
                "p99 ms",
                "max ms",
                "wall ms",
            ],
        );
        perf.row(vec![
            self.n_shards.to_string(),
            self.pool_threads.to_string(),
            self.steals.to_string(),
            fnum(self.retained_weight, 3),
            fnum(self.events_per_sec, 0),
            fnum(self.p50_solve_ms, 3),
            fnum(self.p99_solve_ms, 3),
            fnum(self.max_solve_ms, 3),
            fnum(self.wall_ms, 1),
        ]);

        let mut fin = Table::new(
            "service: final state",
            &["assignments", "total value", "capacity violations"],
        );
        fin.row(vec![
            self.final_assignments.to_string(),
            fnum(self.final_value, 4),
            self.capacity_violations.to_string(),
        ]);

        let mut out = format!(
            "{}\n{}\n{}\n{}",
            ingress.render(),
            batches.render(),
            perf.render(),
            fin.render()
        );

        if self.online_events > 0 {
            let mut online = Table::new(
                "service: online path",
                &[
                    "events",
                    "exchanges",
                    "fallbacks",
                    "warm solves",
                    "warm hits",
                    "p50 ev ms",
                    "p99 ev ms",
                    "max ev ms",
                ],
            );
            online.row(vec![
                self.online_events.to_string(),
                self.online_exchanges.to_string(),
                self.online_fallbacks.to_string(),
                self.online_warm_solves.to_string(),
                self.online_warm_hits.to_string(),
                fnum(self.p50_online_ms, 3),
                fnum(self.p99_online_ms, 3),
                fnum(self.max_online_ms, 3),
            ]);
            out.push('\n');
            out.push_str(&online.render());
        }

        if self.rescue_solves > 0 || self.replans > 0 {
            let mut quality = Table::new(
                "service: sharding quality",
                &[
                    "effective retained",
                    "rescued wt",
                    "rescue solves",
                    "rescue assigns",
                    "replans",
                    "migrated w/t",
                ],
            );
            quality.row(vec![
                fnum(self.effective_retained, 3),
                fnum(self.rescued_weight, 4),
                self.rescue_solves.to_string(),
                self.rescue_assigns.to_string(),
                self.replans.to_string(),
                format!("{}/{}", self.migrated_workers, self.migrated_tasks),
            ]);
            out.push('\n');
            out.push_str(&quality.render());
        }

        if self.wal_records > 0 || self.snapshots > 0 || self.store_error.is_some() {
            let mut dur = Table::new(
                "service: durability",
                &["wal records", "wal bytes", "snapshots", "store error"],
            );
            dur.row(vec![
                self.wal_records.to_string(),
                self.wal_bytes.to_string(),
                self.snapshots.to_string(),
                self.store_error.clone().unwrap_or_else(|| "none".into()),
            ]);
            out.push('\n');
            out.push_str(&dur.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_mentions_the_invariants() {
        let r = ServiceReport {
            n_shards: 4,
            cross_edges: 10,
            retained_weight: 0.82,
            effective_retained: 0.91,
            rescued_weight: 1.25,
            rescue_solves: 6,
            rescue_assigns: 4,
            replans: 1,
            migrated_workers: 12,
            migrated_tasks: 9,
            events_in: 100,
            events_processed: 95,
            dropped_newest: 5,
            dropped_oldest: 0,
            deferrals: 2,
            defer_retry_ok: 2,
            invalid_events: 1,
            cross_benefit_drops: 3,
            foreign_events: 0,
            queue_high_watermark: 17,
            batches: 7,
            flush_count: 4,
            flush_bytes: 1,
            flush_watermark: 1,
            flush_drain: 1,
            flush_online: 0,
            online_events: 55,
            online_fallbacks: 3,
            online_exchanges: 8,
            online_warm_solves: 3,
            online_warm_hits: 2,
            p50_online_ms: 0.12,
            p99_online_ms: 0.9,
            max_online_ms: 1.4,
            solves: 12,
            tier_exact: 9,
            tier_approximate: 2,
            tier_degraded: 1,
            degraded_by_shard: vec![1, 0, 0, 0],
            reseeds: 6,
            decisions: 40,
            p50_solve_ms: 0.8,
            p99_solve_ms: 2.5,
            max_solve_ms: 3.0,
            wall_ms: 120.0,
            events_per_sec: 791.7,
            final_value: 12.5,
            final_assignments: 33,
            capacity_violations: 0,
            pool_threads: 4,
            steals: 3,
            wal_records: 7,
            wal_bytes: 1024,
            snapshots: 2,
            store_error: None,
        };
        let s = r.render();
        assert!(s.contains("capacity violations"));
        assert!(s.contains("wal records"));
        assert!(s.contains("snapshots"));
        assert!(s.contains("events/sec"));
        assert!(s.contains("threads"));
        assert!(s.contains("steals"));
        assert!(
            s.contains("792") || s.contains("791"),
            "events/sec rendered: {s}"
        );
        assert!(s.contains("0.820"));
        assert!(s.contains("sharding quality"));
        assert!(s.contains("0.910"));
        assert!(s.contains("12/9"));
        assert!(s.contains("online path"));
        assert!(s.contains("warm hits"));
        assert!(s.contains("0.120"));
    }
}
