//! Market sharding: routing keys and the induced per-shard subgraphs.
//!
//! The dispatcher never solves the whole market at once — it routes each
//! micro-batch to a *shard*, a node-disjoint slice of the universe keyed by
//! task routing key (skill/region in a real deployment; deterministic
//! hash- or range-of-id here, since the synthetic universe carries no
//! region labels). Workers are placed on their **home shard**, the shard
//! holding the plurality of their eligible tasks — the same
//! locality-maximizing heuristic gig platforms use when they pin a courier
//! to a zone.
//!
//! Node-disjoint sharding is what makes cross-shard capacity reconciliation
//! tractable: a worker's capacity lives on exactly one shard, so the union
//! of per-shard assignments is feasible on the universe graph *by
//! construction*, and the service's reconciler only has to verify the
//! invariant (catching bugs) rather than arbitrate grants between shards.
//! The price is the **cross-shard edges**: an eligibility edge whose worker
//! homed elsewhere is never assignable. [`ShardPlan`] counts those edges
//! and reports the retained-weight fraction so the operator can see what
//! the shard count costs in matching quality (the bench harness sweeps
//! exactly this trade-off).

use mbta_graph::subgraph::{induce, Subgraph, SubgraphSpec};
use mbta_graph::{BipartiteGraph, TaskId, WorkerId};
use mbta_util::fxhash::hash_u64;

/// How tasks are mapped to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// `fxhash(task id) % shards` — spreads hot id ranges uniformly.
    HashId,
    /// Contiguous id ranges — preserves locality when ids encode
    /// region/skill adjacency (as the synthetic generators do).
    Range,
    /// Edge-cut-aware: capacity-balanced label propagation over the whole
    /// worker–task graph (see `mbta-partition`). Unlike the key-based
    /// routings there is no closed-form per-task rule — the assignment is
    /// computed jointly for both node sides by [`ShardPlan::build`].
    MinCut,
}

impl Routing {
    /// Shard of a task under a *key-based* routing.
    ///
    /// # Panics
    /// Panics for [`Routing::MinCut`]: min-cut task placement is decided
    /// jointly with worker placement by the partitioner and has no
    /// per-task formula.
    pub fn task_shard(&self, t: u32, n_tasks: usize, shards: usize) -> usize {
        match self {
            Routing::HashId => (hash_u64(t as u64) % shards as u64) as usize,
            Routing::Range => {
                debug_assert!((t as usize) < n_tasks);
                ((t as usize) * shards / n_tasks.max(1)).min(shards - 1)
            }
            Routing::MinCut => panic!("min-cut routing has no per-task rule; use ShardPlan::build"),
        }
    }

    /// Stable parse keyword.
    pub fn name(&self) -> &'static str {
        match self {
            Routing::HashId => "hash",
            Routing::Range => "range",
            Routing::MinCut => "min-cut",
        }
    }

    /// Stable byte tag for the serialized placement format.
    pub fn tag(&self) -> u8 {
        match self {
            Routing::HashId => 0,
            Routing::Range => 1,
            Routing::MinCut => 2,
        }
    }

    /// Inverse of [`Routing::tag`]; unknown tags fall back to hash (the
    /// tag is display metadata — the placement maps are authoritative).
    pub fn from_tag(tag: u8) -> Routing {
        match tag {
            1 => Routing::Range,
            2 => Routing::MinCut,
            _ => Routing::HashId,
        }
    }
}

/// One shard's slice of the universe.
pub struct ShardSlice {
    /// The induced subgraph plus back-maps to universe ids.
    pub sub: Subgraph,
    /// Universe weights projected onto the subgraph's edges.
    pub weights: Vec<f64>,
}

/// Sentinel for "not mapped to any shard" in the forward maps.
pub const UNMAPPED: u32 = u32::MAX;

/// The full sharding of a market universe: per-shard slices plus forward
/// maps from universe ids to `(shard, local id)`.
pub struct ShardPlan {
    /// Per-shard slices, indexed by shard.
    pub shards: Vec<ShardSlice>,
    /// Universe worker id → shard (every worker is homed somewhere).
    pub worker_shard: Vec<u32>,
    /// Universe worker id → local id within its shard.
    pub worker_local: Vec<u32>,
    /// Universe task id → shard.
    pub task_shard: Vec<u32>,
    /// Universe task id → local id within its shard.
    pub task_local: Vec<u32>,
    /// Universe edge id → shard, or [`UNMAPPED`] for cross-shard edges.
    pub edge_shard: Vec<u32>,
    /// Universe edge id → local edge id (valid only when mapped).
    pub edge_local: Vec<u32>,
    /// Number of universe edges not assignable under this plan.
    pub cross_edges: usize,
    /// Fraction of total universe edge weight retained by intra-shard
    /// edges (1.0 for a single shard).
    pub retained_weight: f64,
    /// The plan-time universe edge weights (the service seeds its live
    /// weights from these, cross-shard edges included).
    pub universe_weights: Vec<f64>,
    /// The routing that produced this plan.
    pub routing: Routing,
}

impl ShardPlan {
    /// Builds the plan: tasks routed by `routing`, workers homed on the
    /// shard holding the plurality of their eligible tasks (ties to the
    /// lowest shard index — fully deterministic).
    pub fn build(
        g: &BipartiteGraph,
        weights: &[f64],
        n_shards: usize,
        routing: Routing,
    ) -> ShardPlan {
        assert!(n_shards >= 1, "need at least one shard");
        assert_eq!(weights.len(), g.n_edges(), "weight slice length mismatch");

        let (task_shard, worker_shard) = assign_nodes(g, weights, n_shards, routing);
        ShardPlan::from_assignment(g, weights, n_shards, routing, task_shard, worker_shard)
    }

    /// Rebuilds a plan from an exported placement (see
    /// `mbta_partition::placement`): same slices, same forward maps, no
    /// re-partitioning. Every process that imports the same map over the
    /// same universe reconstructs the identical plan.
    ///
    /// # Panics
    /// Panics when the map's dimensions do not match the universe — a
    /// placement for a different trace is a deployment error, not a
    /// recoverable condition.
    pub fn from_placement(
        g: &BipartiteGraph,
        weights: &[f64],
        map: &mbta_partition::PlacementMap,
    ) -> ShardPlan {
        assert_eq!(weights.len(), g.n_edges(), "weight slice length mismatch");
        assert_eq!(
            map.task_shard.len(),
            g.n_tasks(),
            "placement task count does not match the universe"
        );
        assert_eq!(
            map.worker_shard.len(),
            g.n_workers(),
            "placement worker count does not match the universe"
        );
        map.validate().expect("placement map failed validation");
        ShardPlan::from_assignment(
            g,
            weights,
            map.n_shards as usize,
            Routing::from_tag(map.routing_tag),
            map.task_shard.clone(),
            map.worker_shard.clone(),
        )
    }

    /// Exports this plan's node→shard maps for other processes to import
    /// via [`ShardPlan::from_placement`].
    pub fn placement(&self) -> mbta_partition::PlacementMap {
        mbta_partition::PlacementMap {
            n_shards: self.n_shards() as u32,
            routing_tag: self.routing.tag(),
            task_shard: self.task_shard.clone(),
            worker_shard: self.worker_shard.clone(),
        }
    }

    fn from_assignment(
        g: &BipartiteGraph,
        weights: &[f64],
        n_shards: usize,
        routing: Routing,
        task_shard: Vec<u32>,
        worker_shard: Vec<u32>,
    ) -> ShardPlan {
        // Induce one subgraph per shard. The edge filter keeps an edge iff
        // its worker homed on the task's shard; worker-side membership is
        // already enforced by the worker selection.
        let mut shards = Vec::with_capacity(n_shards);
        let mut worker_local = vec![UNMAPPED; g.n_workers()];
        let mut task_local = vec![UNMAPPED; g.n_tasks()];
        let mut edge_shard = vec![UNMAPPED; g.n_edges()];
        let mut edge_local = vec![UNMAPPED; g.n_edges()];
        for s in 0..n_shards {
            let sel_workers: Vec<(WorkerId, u32)> = g
                .workers()
                .filter(|w| worker_shard[w.index()] == s as u32)
                .map(|w| (w, g.capacity(w)))
                .collect();
            let sel_tasks: Vec<(TaskId, u32)> = g
                .tasks()
                .filter(|t| task_shard[t.index()] == s as u32)
                .map(|t| (t, g.demand(t)))
                .collect();
            let sub = induce(
                g,
                &SubgraphSpec {
                    workers: &sel_workers,
                    tasks: &sel_tasks,
                },
                |_| true,
            );
            for (local, &parent) in sub.worker_back.iter().enumerate() {
                worker_local[parent.index()] = local as u32;
            }
            for (local, &parent) in sub.task_back.iter().enumerate() {
                task_local[parent.index()] = local as u32;
            }
            for (local, &parent) in sub.edge_back.iter().enumerate() {
                edge_shard[parent.index()] = s as u32;
                edge_local[parent.index()] = local as u32;
            }
            let sub_weights = sub.project_weights(weights);
            shards.push(ShardSlice {
                sub,
                weights: sub_weights,
            });
        }

        let cross_edges = edge_shard.iter().filter(|&&s| s == UNMAPPED).count();
        let total_w: f64 = weights.iter().sum();
        let retained: f64 = g
            .edges()
            .filter(|e| edge_shard[e.index()] != UNMAPPED)
            .map(|e| weights[e.index()])
            .sum();
        ShardPlan {
            shards,
            worker_shard,
            worker_local,
            task_shard,
            task_local,
            edge_shard,
            edge_local,
            cross_edges,
            retained_weight: if total_w > 0.0 {
                retained / total_w
            } else {
                1.0
            },
            universe_weights: weights.to_vec(),
            routing,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }
}

/// Computes the task → shard and worker → shard assignments for `routing`.
///
/// Key-based routings place tasks by key and home each worker on the
/// shard holding the plurality *by edge weight* of its eligible tasks
/// (strictly-greater comparison over an ascending scan, so equal-weight
/// ties resolve to the lowest shard index — fully deterministic). Min-cut
/// routing delegates both sides to the label-propagation partitioner.
fn assign_nodes(
    g: &BipartiteGraph,
    weights: &[f64],
    n_shards: usize,
    routing: Routing,
) -> (Vec<u32>, Vec<u32>) {
    if routing == Routing::MinCut {
        let p =
            mbta_partition::partition(g, weights, &mbta_partition::PartitionConfig::new(n_shards));
        return (p.task_shard, p.worker_shard);
    }

    let task_shard: Vec<u32> = (0..g.n_tasks() as u32)
        .map(|t| routing.task_shard(t, g.n_tasks(), n_shards) as u32)
        .collect();

    let mut worker_shard = vec![0u32; g.n_workers()];
    let mut votes = vec![0.0f64; n_shards];
    for w in g.workers() {
        votes.iter_mut().for_each(|v| *v = 0.0);
        for e in g.worker_edges(w) {
            votes[task_shard[g.task_of(e).index()] as usize] += weights[e.index()];
        }
        let mut best = 0usize;
        for (i, &v) in votes.iter().enumerate() {
            if v > votes[best] {
                best = i;
            }
        }
        worker_shard[w.index()] = best as u32;
    }
    (task_shard, worker_shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::{random_bipartite, RandomGraphSpec};

    fn universe() -> (BipartiteGraph, Vec<f64>) {
        let g = random_bipartite(
            &RandomGraphSpec {
                n_workers: 120,
                n_tasks: 90,
                avg_degree: 6.0,
                capacity: 2,
                demand: 2,
            },
            11,
        );
        let w: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
        (g, w)
    }

    #[test]
    fn single_shard_keeps_everything() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 1, Routing::HashId);
        assert_eq!(plan.n_shards(), 1);
        assert_eq!(plan.cross_edges, 0);
        assert!((plan.retained_weight - 1.0).abs() < 1e-12);
        assert_eq!(plan.shards[0].sub.graph.n_edges(), g.n_edges());
    }

    #[test]
    fn shards_partition_nodes_and_maps_are_consistent() {
        let (g, w) = universe();
        for routing in [Routing::HashId, Routing::Range] {
            let plan = ShardPlan::build(&g, &w, 4, routing);
            // Every node mapped exactly once; shard sizes sum to universe.
            let tot_w: usize = plan.shards.iter().map(|s| s.sub.graph.n_workers()).sum();
            let tot_t: usize = plan.shards.iter().map(|s| s.sub.graph.n_tasks()).sum();
            assert_eq!(tot_w, g.n_workers());
            assert_eq!(tot_t, g.n_tasks());
            // Forward and back maps invert each other.
            for wid in g.workers() {
                let s = plan.worker_shard[wid.index()] as usize;
                let l = plan.worker_local[wid.index()] as usize;
                assert_eq!(plan.shards[s].sub.worker_back[l], wid);
                // Capacity preserved.
                assert_eq!(
                    plan.shards[s].sub.graph.capacity(WorkerId::new(l as u32)),
                    g.capacity(wid)
                );
            }
            for tid in g.tasks() {
                let s = plan.task_shard[tid.index()] as usize;
                let l = plan.task_local[tid.index()] as usize;
                assert_eq!(plan.shards[s].sub.task_back[l], tid);
            }
            // Edge maps: intra-shard edges round-trip; cross edges counted.
            let mut mapped = 0usize;
            for e in g.edges() {
                let s = plan.edge_shard[e.index()];
                if s == UNMAPPED {
                    continue;
                }
                mapped += 1;
                let l = plan.edge_local[e.index()] as usize;
                let slice = &plan.shards[s as usize];
                assert_eq!(slice.sub.edge_back[l], e);
                assert_eq!(slice.weights[l], w[e.index()]);
            }
            assert_eq!(mapped + plan.cross_edges, g.n_edges());
            assert!(
                plan.retained_weight > 0.3,
                "{routing:?} retained too little"
            );
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let (g, w) = universe();
        let a = ShardPlan::build(&g, &w, 8, Routing::HashId);
        let b = ShardPlan::build(&g, &w, 8, Routing::HashId);
        assert_eq!(a.worker_shard, b.worker_shard);
        assert_eq!(a.task_shard, b.task_shard);
        assert_eq!(a.cross_edges, b.cross_edges);
    }

    #[test]
    fn worker_homing_is_weighted_with_lowest_index_ties() {
        use mbta_graph::random::from_edges;
        // Worker 0: shard 1 holds more *weight* (0.9) than shard 0
        // (0.3 + 0.3 = 0.6) despite fewer edges — weight wins.
        // Worker 1: shards 0 and 1 tie exactly (0.5 each) — the lowest
        // shard index must win.
        let g = from_edges(
            &[2, 2],
            &[1, 1, 1, 1],
            &[
                (0, 0, 0.3, 0.3),
                (0, 1, 0.3, 0.3),
                (0, 2, 0.9, 0.9),
                (1, 0, 0.5, 0.5),
                (1, 2, 0.5, 0.5),
            ],
        );
        let w: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
        // Range routing over 4 tasks and 2 shards: tasks 0,1 → shard 0,
        // tasks 2,3 → shard 1.
        let plan = ShardPlan::build(&g, &w, 2, Routing::Range);
        assert_eq!(plan.task_shard, vec![0, 0, 1, 1]);
        assert_eq!(
            plan.worker_shard[0], 1,
            "weight plurality must win over edge count"
        );
        assert_eq!(
            plan.worker_shard[1], 0,
            "equal weight must tie-break to the lowest shard"
        );
    }

    #[test]
    fn placement_export_import_rebuilds_the_identical_plan() {
        let (g, w) = universe();
        for routing in [Routing::HashId, Routing::MinCut] {
            let plan = ShardPlan::build(&g, &w, 4, routing);
            let map = plan.placement();
            map.validate().unwrap();
            // Serialize through the file format too, not just the struct.
            let bytes = mbta_partition::encode_placements(&[map]);
            let decoded = mbta_partition::decode_placements(&bytes).unwrap();
            let rebuilt = ShardPlan::from_placement(&g, &w, &decoded[0]);
            assert_eq!(rebuilt.worker_shard, plan.worker_shard);
            assert_eq!(rebuilt.task_shard, plan.task_shard);
            assert_eq!(rebuilt.edge_shard, plan.edge_shard);
            assert_eq!(rebuilt.edge_local, plan.edge_local);
            assert_eq!(rebuilt.cross_edges, plan.cross_edges);
            assert_eq!(rebuilt.routing, plan.routing);
            assert!((rebuilt.retained_weight - plan.retained_weight).abs() < 1e-12);
            for (a, b) in rebuilt.shards.iter().zip(plan.shards.iter()) {
                assert_eq!(a.sub.worker_back, b.sub.worker_back);
                assert_eq!(a.sub.task_back, b.sub.task_back);
                assert_eq!(a.sub.edge_back, b.sub.edge_back);
                assert_eq!(a.weights, b.weights);
            }
        }
    }

    #[test]
    #[should_panic(expected = "placement task count")]
    fn placement_for_another_universe_is_refused() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 2, Routing::HashId);
        let mut map = plan.placement();
        map.task_shard.pop();
        let _ = ShardPlan::from_placement(&g, &w, &map);
    }

    #[test]
    fn min_cut_plan_retains_more_weight_than_hash() {
        let (g, w) = universe();
        for k in [4, 8] {
            let hash = ShardPlan::build(&g, &w, k, Routing::HashId);
            let mincut = ShardPlan::build(&g, &w, k, Routing::MinCut);
            assert!(
                mincut.retained_weight > hash.retained_weight,
                "k={k}: min-cut {} <= hash {}",
                mincut.retained_weight,
                hash.retained_weight
            );
            // Same structural invariants as the key routings.
            let tot_w: usize = mincut.shards.iter().map(|s| s.sub.graph.n_workers()).sum();
            let tot_t: usize = mincut.shards.iter().map(|s| s.sub.graph.n_tasks()).sum();
            assert_eq!(tot_w, g.n_workers());
            assert_eq!(tot_t, g.n_tasks());
        }
    }

    #[test]
    fn home_sharding_beats_random_on_retained_weight() {
        // Plurality homing must retain at least as much weight as the
        // worst-case 1/shards a random assignment would keep in
        // expectation... by a visible margin on a structured universe.
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 4, Routing::HashId);
        assert!(
            plan.retained_weight > 1.0 / 4.0 + 0.05,
            "retained {} — homing is not buying locality",
            plan.retained_weight
        );
    }
}
