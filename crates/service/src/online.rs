//! Per-event online assignment: the sub-millisecond decision path.
//!
//! Batch dispatch amortizes one exact solve over a micro-batch; the
//! online path instead decides on **every event** and keeps the exact
//! solver in reserve. Three mechanisms make that sound:
//!
//! * **Primal repair** — every event funnels through the shard's
//!   [`IncrementalAssignment`], whose greedy local repair keeps the
//!   assignment feasible at all times. A benefit update additionally
//!   gets one `try_exchange` attempt: evict the cheapest assigned
//!   edge at each saturated endpoint when the updated edge is strictly
//!   heavier than everything it displaces (a depth-1 alternating step —
//!   the primal move that a single dual adjustment would license).
//! * **Drift accounting** — each shard accumulates the weight the
//!   greedy path may have left on the table: `|Δw|` of benefit updates
//!   plus the weight of every net-removed edge. Plain greedy fills
//!   accrue nothing.
//! * **Warm fallback** — when a shard's accumulated drift exceeds
//!   [`OnlineConfig::drift_threshold`] × its live assigned weight, the
//!   shard re-solves exactly through its [`WarmSolver`], which carries
//!   node potentials and the previous matching across solves (see
//!   `mbta_matching::warm`), then the accumulator resets.
//!
//! Decisions come out of the assignment's flip log (`net_flips` folds
//! eviction/re-add churn by parity), are journaled as one
//! `OnlineRecord` per event *before* they reach the sink, and replay
//! through `mbta_store::recover` exactly like batch records. See
//! DESIGN.md §14 for the full contract.

use crate::shard::ShardPlan;
use crate::sink::Decision;
use mbta_core::incremental::IncrementalAssignment;
use mbta_core::warm::{WarmSolver, WarmSolverStats};
use mbta_graph::EdgeId;
use mbta_telemetry::Histogram;

/// Tunables for the per-event online decision path.
///
/// ```
/// use mbta_service::OnlineConfig;
///
/// let cfg = OnlineConfig::default();
/// assert!(cfg.drift_threshold > 0.0);
/// let strict = OnlineConfig {
///     drift_threshold: 0.05,
/// };
/// strict.validate(); // panics on non-positive or non-finite thresholds
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Fallback trigger: a shard re-solves exactly once its accumulated
    /// drift exceeds this fraction of its live assigned weight (floored
    /// at 1.0 so empty shards still fall back eventually). Lower values
    /// buy assignment quality with more exact solves.
    pub drift_threshold: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            drift_threshold: 0.2,
        }
    }
}

impl OnlineConfig {
    /// Panics on thresholds that would never (or always) trigger.
    pub fn validate(&self) {
        assert!(
            self.drift_threshold > 0.0 && self.drift_threshold.is_finite(),
            "drift_threshold must be positive and finite"
        );
    }
}

/// Per-shard online state: the warm exact solver and the drift
/// accumulator that decides when to use it.
pub(crate) struct ShardOnline {
    pub warm: WarmSolver,
    pub acc: f64,
}

/// The service's online-mode runtime: per-shard warm/drift state plus
/// the run counters that survive re-plans via [`OnlineCarried`].
pub(crate) struct OnlineRuntime {
    pub cfg: OnlineConfig,
    pub shards: Vec<ShardOnline>,
    pub events: u64,
    pub fallbacks: u64,
    pub exchanges: u64,
    /// Warm-solver counters accumulated before the last re-plan (the
    /// solvers themselves are rebuilt for each plan's topology).
    prior_warm: WarmSolverStats,
    /// Per-event decision latency (wall-clock ms).
    pub lat: Histogram,
    /// Pooled per-event buffers (see [`OnlineScratch`]).
    pub scratch: OnlineScratch,
}

/// Pooled working buffers for the per-event decision path. The flip
/// log, its parity fold, and the outgoing decision list are the Vecs a
/// profile shows on every online event; owning them here and recycling
/// them (`mem::take` out for the event, hand back cleared) makes the
/// steady-state path allocation-free once the buffers have grown to the
/// event-size high-water mark. Capacity is deliberately *not* carried
/// across a re-plan — shard topology changes reset the water mark too.
#[derive(Default)]
pub(crate) struct OnlineScratch {
    /// Raw flips drained for the current event (greedy + fallback).
    pub flips: Vec<(EdgeId, bool)>,
    /// Sort buffer for the parity fold.
    sorted: Vec<(EdgeId, bool)>,
    /// Folded net flips, ascending by edge id.
    net: Vec<(EdgeId, bool)>,
    /// The event's outgoing decisions, in canonical order.
    pub decisions: Vec<Decision>,
}

impl OnlineScratch {
    /// Folds `flips` by parity into the pooled `net` buffer and returns
    /// it — the same contract as `net_flips` (the test oracle below),
    /// minus the allocations.
    pub fn fold(&mut self, flips: &[(EdgeId, bool)]) -> &[(EdgeId, bool)] {
        self.sorted.clear();
        self.sorted.extend_from_slice(flips);
        // Stable sort: chronological order within each edge survives.
        self.sorted.sort_by_key(|&(e, _)| e);
        self.net.clear();
        let mut i = 0;
        while i < self.sorted.len() {
            let e = self.sorted[i].0;
            let mut j = i;
            while j < self.sorted.len() && self.sorted[j].0 == e {
                j += 1;
            }
            if (j - i) % 2 == 1 {
                self.net.push((e, self.sorted[j - 1].1));
            }
            i = j;
        }
        &self.net
    }
}

impl OnlineRuntime {
    /// Fresh runtime for a plan: one warm solver per shard topology.
    pub fn new(cfg: OnlineConfig, plan: &ShardPlan) -> Self {
        cfg.validate();
        OnlineRuntime {
            cfg,
            shards: plan
                .shards
                .iter()
                .map(|slice| ShardOnline {
                    warm: WarmSolver::new(&slice.sub.graph),
                    acc: 0.0,
                })
                .collect(),
            events: 0,
            fallbacks: 0,
            exchanges: 0,
            prior_warm: WarmSolverStats::default(),
            lat: Histogram::new(),
            scratch: OnlineScratch::default(),
        }
    }

    /// Whether shard `s`'s drift accumulator has crossed the fallback
    /// line for a shard currently holding `shard_weight` assigned value.
    pub fn fallback_due(&self, s: usize, shard_weight: f64) -> bool {
        self.shards[s].acc > self.cfg.drift_threshold * shard_weight.max(1.0)
    }

    /// Lifetime warm-solver counters: the current solvers plus whatever
    /// pre-replan solvers accumulated.
    pub fn warm_totals(&self) -> WarmSolverStats {
        let mut t = self.prior_warm;
        for sh in &self.shards {
            let s = sh.warm.stats();
            t.solves += s.solves;
            t.warm_hits += s.warm_hits;
            t.audited_cold += s.audited_cold;
            t.iterations += s.iterations;
        }
        t
    }

    /// Extracts the plan-independent half for a detach → resume cycle.
    pub fn detach(self) -> OnlineCarried {
        let warm = self.warm_totals();
        OnlineCarried {
            cfg: self.cfg,
            events: self.events,
            fallbacks: self.fallbacks,
            exchanges: self.exchanges,
            warm,
            lat: self.lat,
        }
    }

    /// Rebuilds the runtime over a new plan from carried counters. The
    /// warm solvers start cold — the shard topologies changed.
    pub fn resume(c: OnlineCarried, plan: &ShardPlan) -> Self {
        let mut rt = OnlineRuntime::new(c.cfg, plan);
        rt.events = c.events;
        rt.fallbacks = c.fallbacks;
        rt.exchanges = c.exchanges;
        rt.prior_warm = c.warm;
        rt.lat = c.lat;
        rt
    }
}

/// Plan-independent online counters carried across a re-plan.
pub(crate) struct OnlineCarried {
    cfg: OnlineConfig,
    events: u64,
    fallbacks: u64,
    exchanges: u64,
    warm: WarmSolverStats,
    lat: Histogram,
}

/// Folds a raw flip log into net per-edge decisions. Flips for one edge
/// strictly alternate (an assigned edge cannot be inserted again), so an
/// edge with an odd flip count net-changed state, in the direction of
/// its last flip; even counts cancel out. Output ascends by edge id.
///
/// Allocating convenience over [`OnlineScratch::fold`] — the per-event
/// hot path goes through the runtime's pooled scratch instead, so this
/// survives only as the test oracle for the fold.
#[cfg(test)]
pub(crate) fn net_flips(flips: &[(EdgeId, bool)]) -> Vec<(EdgeId, bool)> {
    OnlineScratch::default().fold(flips).to_vec()
}

/// Depth-1 exchange for an unassigned edge whose endpoints are
/// saturated: evict the cheapest assigned edge at each full endpoint if
/// `e` is strictly heavier than everything it displaces, assign `e`,
/// then greedily refill the displaced far endpoints from spare capacity
/// only. Returns whether the exchange happened. Never degrades the
/// shard's assigned weight and preserves feasibility by construction.
pub(crate) fn try_exchange(st: &mut IncrementalAssignment<'_>, e: EdgeId) -> bool {
    let w_new = st.weight_of(e);
    if st.edge_assigned(e) || !w_new.is_finite() || w_new <= 0.0 {
        return false;
    }
    let g = st.graph();
    let (wk, tk) = (g.worker_of(e), g.task_of(e));
    if !st.worker_active(wk) || !st.task_active(tk) {
        return false;
    }
    let mut victims: Vec<EdgeId> = Vec::with_capacity(2);
    if st.worker_load(wk) >= g.capacity(wk) {
        match min_assigned(st, g.worker_edges(wk), &victims) {
            Some(v) => victims.push(v),
            None => return false,
        }
    }
    if st.task_load(tk) >= g.demand(tk) {
        match min_assigned(st, g.task_edges(tk), &victims) {
            Some(v) => victims.push(v),
            None => return false,
        }
    }
    if victims.is_empty() {
        // Spare capacity on both sides: this was a plain `try_assign`
        // situation, not an exchange.
        return false;
    }
    let displaced: f64 = victims.iter().map(|&v| st.weight_of(v)).sum();
    if w_new <= displaced + 1e-12 {
        return false;
    }
    for &v in &victims {
        st.unassign(v);
    }
    let took = st.try_assign(e);
    debug_assert!(took, "exchange freed both endpoints of an active edge");
    // The evicted edges' far endpoints regained capacity; refill them
    // greedily (the evicted edge itself stays blocked at the shared
    // endpoint, so this cannot oscillate).
    for &v in &victims {
        let (vw, vt) = (g.worker_of(v), g.task_of(v));
        if vw != wk {
            st.fill_worker(vw);
        }
        if vt != tk {
            st.fill_task(vt);
        }
    }
    took
}

/// The lightest currently-assigned candidate (ties to the lower edge
/// id), skipping already-chosen victims.
fn min_assigned(
    st: &IncrementalAssignment<'_>,
    cands: impl Iterator<Item = EdgeId>,
    excl: &[EdgeId],
) -> Option<EdgeId> {
    cands
        .filter(|&c| st.edge_assigned(c) && !excl.contains(&c))
        .min_by(|&a, &b| st.weight_of(a).total_cmp(&st.weight_of(b)).then(a.cmp(&b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::from_edges;

    fn eid(i: u32) -> EdgeId {
        EdgeId::new(i)
    }

    #[test]
    fn net_flips_folds_by_parity() {
        let flips = vec![
            (eid(3), false),
            (eid(1), true),
            (eid(3), true), // edge 3: remove + re-add = net zero
            (eid(2), true),
            (eid(2), false),
            (eid(2), true), // edge 2: odd count, net assign
        ];
        assert_eq!(net_flips(&flips), vec![(eid(1), true), (eid(2), true)]);
        assert!(net_flips(&[]).is_empty());
        // A bare removal survives the fold.
        assert_eq!(net_flips(&[(eid(5), false)]), vec![(eid(5), false)]);
    }

    #[test]
    fn scratch_fold_matches_net_flips_across_reuse() {
        // One scratch, many folds: reuse must never leak a previous
        // event's flips into the next fold.
        let mut scratch = OnlineScratch::default();
        let logs: Vec<Vec<(EdgeId, bool)>> = vec![
            vec![(eid(7), false), (eid(2), true), (eid(7), true)],
            vec![],
            vec![(eid(1), true), (eid(1), false), (eid(1), true)],
            vec![(eid(9), false)],
        ];
        for log in &logs {
            assert_eq!(scratch.fold(log), net_flips(log).as_slice());
        }
    }

    #[test]
    fn exchange_evicts_lighter_edge_and_refills() {
        // Worker 0 (capacity 1) holds the 0.5 edge; a benefit update
        // makes edge 1 (same worker, other task) worth 0.9. The exchange
        // must evict edge 0, take edge 1, and refill task 0 via worker 1.
        let g = from_edges(
            &[1, 1],
            &[1, 1],
            &[(0, 0, 0.5, 0.5), (0, 1, 0.1, 0.1), (1, 0, 0.3, 0.3)],
        );
        let mut st = IncrementalAssignment::new(&g, vec![0.5, 0.1, 0.3]);
        assert!(st.edge_assigned(eid(0)));
        st.set_weight(eid(1), 0.9);
        assert!(!st.try_assign(eid(1)), "worker 0 is saturated");
        assert!(try_exchange(&mut st, eid(1)));
        assert!(st.edge_assigned(eid(1)));
        assert!(!st.edge_assigned(eid(0)));
        assert!(st.edge_assigned(eid(2)), "displaced task 0 was refilled");
        st.check_invariants();
    }

    #[test]
    fn exchange_refuses_non_improving_swaps() {
        let g = from_edges(&[1], &[1, 1], &[(0, 0, 0.5, 0.5), (0, 1, 0.4, 0.4)]);
        let mut st = IncrementalAssignment::new(&g, vec![0.5, 0.4]);
        assert!(st.edge_assigned(eid(0)));
        // 0.4 < 0.5: no exchange; equal weight: no exchange either.
        assert!(!try_exchange(&mut st, eid(1)));
        st.set_weight(eid(1), 0.5);
        assert!(!try_exchange(&mut st, eid(1)));
        assert!(st.edge_assigned(eid(0)));
    }

    #[test]
    fn runtime_detach_resume_carries_counters() {
        let g = from_edges(&[1], &[1], &[(0, 0, 0.5, 0.5)]);
        let w = vec![0.5];
        let plan = ShardPlan::build(&g, &w, 1, crate::shard::Routing::HashId);
        let mut rt = OnlineRuntime::new(OnlineConfig::default(), &plan);
        rt.events = 7;
        rt.fallbacks = 2;
        rt.exchanges = 1;
        let rt2 = OnlineRuntime::resume(rt.detach(), &plan);
        assert_eq!(rt2.events, 7);
        assert_eq!(rt2.fallbacks, 2);
        assert_eq!(rt2.exchanges, 1);
    }
}
