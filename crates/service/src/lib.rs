//! `mbta-service`: the streaming dispatch service.
//!
//! Everything below this crate solves *instances*; this crate runs a
//! *market*. A labor platform's assignment loop is event-driven — workers
//! log in and out, tasks appear and expire, benefit estimates drift — and
//! the paper's solvers only become a system once something turns that
//! stream into bounded-latency, capacity-safe assignment decisions. That
//! something is [`DispatchService`]:
//!
//! * [`event`] — the ingress model: [`event::ServiceEvent`], the
//!   trace adapter, and a deterministic benefit-drift weaver.
//! * [`batch`] — micro-batch accumulation with count, byte, and
//!   (virtual-)time watermarks.
//! * [`queue`] — the bounded ingress queue and its explicit overload
//!   policy (drop-newest / drop-oldest / defer), every loss counted.
//! * [`shard`] — node-disjoint market sharding with home-shard worker
//!   placement; node-disjointness is what makes the cross-shard capacity
//!   invariant hold by construction. Three routings: `hash`, `range`,
//!   and `min-cut` (edge-cut-aware label propagation from
//!   `mbta-partition`).
//! * [`pool`] — the worker pool that solves a batch's touched shards
//!   concurrently: work-stealing largest-first scheduling over vendored
//!   crossbeam scoped threads + channels, with a deterministic
//!   shard-index merge so threaded replay stays byte-identical.
//! * [`service`] — the dispatch loop: apply churn via incremental greedy
//!   repair, re-solve each touched shard with the robust engine under the
//!   batch's shared deadline budget (via the pool), adopt improvements,
//!   emit deltas. Poisoned shards degrade to the greedy floor without
//!   stalling siblings. With the boundary pass on, a per-batch rescue
//!   matching recovers cross-shard edges with residual capacity; with a
//!   re-plan threshold armed, cut drift triggers a detach → re-partition
//!   → resume migration at a batch boundary (journaled as a WAL plan
//!   record). See DESIGN.md §13.
//! * [`online`] — the per-event decision path (`--online`): greedy
//!   repair plus a depth-1 exchange on every event, per-shard drift
//!   accounting, and a warm-started exact fallback
//!   (`mbta_core::warm::WarmSolver`) when drift crosses the configured
//!   threshold. Sub-millisecond median decision latency, journaled as
//!   one WAL record per deciding event. See DESIGN.md §14.
//! * [`sink`] — pluggable decision output; the textual decision log is
//!   byte-identical across replays under deterministic budgets.
//! * [`report`] — end-of-run telemetry: throughput, batch-latency
//!   percentiles, tier tallies, and the capacity-violation count (always
//!   zero unless the shard invariant is broken).
//! * durability — attach an `mbta-store` [`DurableStore`] via
//!   [`service::DispatchService::attach_store`] and every batch is
//!   journaled (WAL) before its decisions reach the sink, with periodic
//!   full-state snapshots; `mbta_store::recover` rebuilds the state after
//!   a crash. See DESIGN.md §11.
//!
//! See DESIGN.md §"Streaming dispatch service" for the architecture
//! discussion and the CLI's `serve` / `replay` commands for the wiring.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod event;
pub mod online;
pub mod pool;
pub mod queue;
pub mod report;
pub mod service;
pub mod shard;
pub mod sink;

pub use batch::{BatchConfig, Batcher, ClosedBatch, FlushReason};
pub use event::{Arrival, BenefitDrift, ServiceEvent};
pub use online::OnlineConfig;
pub use pool::{BatchSolve, ShardJob, ShardOutcome, SolvePool};
pub use queue::{BoundedQueue, DeferBackoff, DropPolicy, OfferOutcome};
pub use report::ServiceReport;
pub use service::{BudgetMode, CarriedState, DispatchService, ServiceConfig};
pub use shard::{Routing, ShardPlan};
pub use sink::{Action, BatchStats, CollectSink, Decision, DecisionSink, NullSink, WriteSink};

// Durability wiring surface, re-exported so callers that attach a store
// need not name `mbta-store` directly.
pub use mbta_store::store::{recover, DurableStore, RecoveredState, StoreConfig};
pub use mbta_store::wal::FsyncPolicy;
