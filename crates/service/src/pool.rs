//! Worker pool for concurrent shard solves.
//!
//! [`ShardPlan`](crate::ShardPlan) produces node-disjoint sub-markets
//! precisely so they can be solved independently; this module is where
//! that independence is cashed in. [`SolvePool`] takes the batch's
//! touched-shard jobs and runs them across OS threads (vendored
//! `crossbeam` scoped threads + MPMC channels), with three properties the
//! dispatch loop depends on:
//!
//! 1. **Work stealing, largest first.** Jobs are sorted by estimated size
//!    (sub-market edge count) descending and dealt round-robin onto
//!    per-thread deques. A worker pops its own deque from the front; when
//!    it runs dry it steals from a sibling's back. Largest-first ordering
//!    is the classic LPT schedule: the big solves start immediately and
//!    the small ones pack around them, so the makespan stays close to the
//!    `max(job)` lower bound.
//! 2. **Deterministic merge.** Workers race, but results are collected
//!    over a channel and re-sorted by shard index before they are handed
//!    back, so the caller applies them in exactly the order the
//!    single-threaded loop would. Under deterministic budgets every solve
//!    is a pure function of its inputs, which makes `--threads N` replay
//!    byte-identical to `--threads 1` for every `N`.
//! 3. **Shared budgets.** The pool never splits a batch budget: callers
//!    put one absolute [`Deadline`](mbta_util::Deadline) into every job's
//!    [`EngineConfig`], and all shards race that same instant — in
//!    parallel mode concurrently, in sequential mode with unused budget
//!    carrying forward to later shards.
//!
//! Telemetry: `mbta_service_pool_queue_depth` (jobs not yet claimed),
//! `mbta_service_pool_steals_total`, and per-thread
//! `mbta_service_pool_thread_busy_ms{thread="i"}` histograms whose spread
//! shows how well stealing balanced the batch.

use mbta_core::engine::{solve_robust, EngineConfig, EngineError, EngineSolution};
use mbta_graph::BipartiteGraph;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One shard's solve request: everything the engine needs, owned or
/// immutably borrowed, so the job can move to a worker thread.
pub struct ShardJob<'g> {
    /// Shard index in the plan (merge key; results come back sorted by it).
    pub shard: usize,
    /// The shard's sub-market graph.
    pub graph: &'g BipartiteGraph,
    /// Active edge weights for the sub-market (inactive edges weigh 0).
    pub weights: Vec<f64>,
    /// Engine configuration, including the batch's shared deadline and any
    /// poison pre-cancellation.
    pub config: EngineConfig,
    /// Size estimate used for largest-first scheduling (edge count of the
    /// sub-market; static, but monotone in actual solve cost).
    pub est_size: usize,
}

/// One shard's solve result, as produced by a pool worker.
pub struct ShardOutcome {
    /// Shard index the result belongs to.
    pub shard: usize,
    /// The engine's answer (input errors cannot normally occur here — the
    /// service validates events at admission — but are surfaced rather
    /// than swallowed).
    pub result: Result<EngineSolution, EngineError>,
    /// Wall-clock milliseconds the solve took on its worker.
    pub solve_ms: f64,
}

/// Everything a batch solve produced, plus pool-level accounting.
pub struct BatchSolve {
    /// Per-shard outcomes, sorted by shard index ascending — the caller
    /// merges in this order regardless of which thread finished first.
    pub outcomes: Vec<ShardOutcome>,
    /// Number of jobs a worker took from a sibling's deque.
    pub steals: u64,
}

/// A fixed-width pool of solver threads for batch shard solves.
///
/// The pool is cheap to construct (it stores only the width); threads are
/// scoped to each [`solve`](SolvePool::solve) call so jobs may borrow the
/// shard plan without `'static` gymnastics. Width 1 (or a single job)
/// runs inline on the caller's thread in the order given — byte-for-byte
/// the sequential dispatch path.
///
/// ```
/// use mbta_core::engine::EngineConfig;
/// use mbta_graph::random::from_edges;
/// use mbta_service::pool::{ShardJob, SolvePool};
///
/// let g = from_edges(&[1, 1], &[1, 1], &[(0, 0, 0.9, 0.9), (1, 1, 0.5, 0.5)]);
/// let pool = SolvePool::new(2);
/// let jobs = vec![ShardJob {
///     shard: 0,
///     graph: &g,
///     weights: vec![0.9, 0.5],
///     config: EngineConfig::new(),
///     est_size: g.n_edges(),
/// }];
/// let batch = pool.solve(jobs);
/// let sol = batch.outcomes[0].result.as_ref().unwrap();
/// assert!((sol.value - 1.4).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct SolvePool {
    threads: usize,
}

impl SolvePool {
    /// A pool of `threads` workers; `0` means "use the host's available
    /// parallelism" (what the CLI's `--threads` defaults to).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        SolvePool { threads }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Solves a single job inline on the caller's thread — the
    /// boundary-rescue path, which has exactly one residual market per
    /// batch and must not pay scoped-thread setup for it.
    pub fn solve_one(&self, job: ShardJob<'_>) -> ShardOutcome {
        run_job(job)
    }

    /// Solves every job and returns the outcomes sorted by shard index.
    ///
    /// With one worker (or at most one job) this runs inline in the order
    /// the jobs were given; otherwise jobs are scheduled largest-first
    /// with work stealing across `min(threads, jobs)` scoped threads.
    pub fn solve(&self, jobs: Vec<ShardJob<'_>>) -> BatchSolve {
        if self.threads <= 1 || jobs.len() <= 1 {
            return solve_inline(jobs);
        }
        solve_stealing(self.threads, jobs)
    }
}

impl Default for SolvePool {
    /// The CLI default: one worker per available hardware thread.
    fn default() -> Self {
        SolvePool::new(0)
    }
}

/// Sequential path: solve in the order given (the dispatcher passes shards
/// ascending), no threads spawned, no steals possible.
fn solve_inline(jobs: Vec<ShardJob<'_>>) -> BatchSolve {
    let mut outcomes = Vec::with_capacity(jobs.len());
    for job in jobs {
        outcomes.push(run_job(job));
    }
    BatchSolve {
        outcomes,
        steals: 0,
    }
}

/// Parallel path: largest-first deal onto per-thread deques, pop-own-front
/// / steal-sibling-back, results over an MPMC channel.
fn solve_stealing(threads: usize, mut jobs: Vec<ShardJob<'_>>) -> BatchSolve {
    // Largest first (ties broken by shard index so the schedule itself is
    // deterministic even though completion order is not).
    jobs.sort_by(|a, b| b.est_size.cmp(&a.est_size).then(a.shard.cmp(&b.shard)));
    let n_jobs = jobs.len();
    let n_workers = threads.min(n_jobs);

    let deques: Vec<Mutex<VecDeque<ShardJob<'_>>>> = (0..n_workers)
        .map(|_| Mutex::new(VecDeque::new()))
        .collect();
    for (i, job) in jobs.into_iter().enumerate() {
        deques[i % n_workers].lock().unwrap().push_back(job);
    }

    let unclaimed = AtomicUsize::new(n_jobs);
    let steals = AtomicU64::new(0);
    mbta_telemetry::gauge_set("mbta_service_pool_queue_depth", n_jobs as f64);

    let (tx, rx) = crossbeam::channel::unbounded::<ShardOutcome>();
    crossbeam::scope(|s| {
        for me in 0..n_workers {
            let tx = tx.clone();
            let deques = &deques;
            let unclaimed = &unclaimed;
            let steals = &steals;
            s.spawn(move |_| {
                let mut busy = 0.0f64;
                loop {
                    // Own deque first (front), then steal a sibling's back.
                    let mut claimed = deques[me].lock().unwrap().pop_front();
                    if claimed.is_none() {
                        for k in 1..n_workers {
                            let victim = (me + k) % n_workers;
                            claimed = deques[victim].lock().unwrap().pop_back();
                            if claimed.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                                mbta_telemetry::counter_add("mbta_service_pool_steals_total", 1);
                                break;
                            }
                        }
                    }
                    let Some(job) = claimed else { break };
                    let left = unclaimed.fetch_sub(1, Ordering::Relaxed) - 1;
                    mbta_telemetry::gauge_set("mbta_service_pool_queue_depth", left as f64);
                    let outcome = run_job(job);
                    busy += outcome.solve_ms;
                    // Receiver outlives the scope; send cannot fail.
                    let _ = tx.send(outcome);
                }
                // One observation per worker per batch: the spread across
                // threads is the load-balance signal.
                if mbta_telemetry::enabled() {
                    mbta_telemetry::observe(
                        &format!("mbta_service_pool_thread_busy_ms{{thread=\"{me}\"}}"),
                        busy,
                    );
                }
            });
        }
    })
    .expect("solve pool workers panicked");
    drop(tx);

    let mut outcomes: Vec<ShardOutcome> = rx.iter().collect();
    debug_assert_eq!(outcomes.len(), n_jobs);
    outcomes.sort_by_key(|o| o.shard);
    BatchSolve {
        outcomes,
        steals: steals.into_inner(),
    }
}

/// Runs one job on the current thread, timing it.
fn run_job(job: ShardJob<'_>) -> ShardOutcome {
    let start = Instant::now();
    let result = solve_robust(job.graph, &job.weights, &job.config);
    ShardOutcome {
        shard: job.shard,
        result,
        solve_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

// The whole point of the pool is moving jobs to worker threads; keep that
// a compile-time guarantee rather than a property of the current field
// set.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ShardJob<'_>>();
    assert_send::<ShardOutcome>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_graph::random::{random_bipartite, RandomGraphSpec};
    use mbta_util::{CancelToken, Deadline};

    fn market(seed: u64, workers: usize) -> (BipartiteGraph, Vec<f64>) {
        let g = random_bipartite(
            &RandomGraphSpec {
                n_workers: workers,
                n_tasks: workers * 3 / 4,
                avg_degree: 5.0,
                capacity: 2,
                demand: 2,
            },
            seed,
        );
        let w: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
        (g, w)
    }

    fn jobs_for<'g>(markets: &'g [(BipartiteGraph, Vec<f64>)]) -> Vec<ShardJob<'g>> {
        markets
            .iter()
            .enumerate()
            .map(|(i, (g, w))| ShardJob {
                shard: i,
                graph: g,
                weights: w.clone(),
                config: EngineConfig::new(),
                est_size: g.n_edges(),
            })
            .collect()
    }

    #[test]
    fn zero_threads_resolves_to_host_parallelism() {
        assert!(SolvePool::new(0).threads() >= 1);
        assert_eq!(SolvePool::new(3).threads(), 3);
        assert_eq!(SolvePool::default().threads(), SolvePool::new(0).threads());
    }

    #[test]
    fn parallel_results_match_sequential_and_arrive_in_shard_order() {
        // Uneven sizes so largest-first scheduling and stealing both kick in.
        let markets: Vec<_> = (0..6)
            .map(|i| market(100 + i, 20 + 30 * i as usize))
            .collect();
        let seq = SolvePool::new(1).solve(jobs_for(&markets));
        let par = SolvePool::new(4).solve(jobs_for(&markets));
        assert_eq!(seq.steals, 0, "inline path cannot steal");
        assert_eq!(seq.outcomes.len(), par.outcomes.len());
        for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
            assert_eq!(a.shard, b.shard, "merge order must be shard-ascending");
            let (sa, sb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(sa.tier, sb.tier);
            assert_eq!(sa.matching.edges, sb.matching.edges, "shard {}", a.shard);
            assert!((sa.value - sb.value).abs() < 1e-12);
        }
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let markets: Vec<_> = (0..2).map(|i| market(7 + i, 40)).collect();
        let batch = SolvePool::new(8).solve(jobs_for(&markets));
        assert_eq!(batch.outcomes.len(), 2);
        for o in &batch.outcomes {
            assert!(o.result.is_ok());
            assert!(o.solve_ms >= 0.0);
        }
    }

    #[test]
    fn starved_workers_steal() {
        // 8 jobs over 4 workers: deques start with 2 jobs each, and the
        // skewed sizes guarantee some worker drains early and steals.
        let markets: Vec<_> = (0..8)
            .map(|i| market(50 + i, if i == 0 { 400 } else { 16 }))
            .collect();
        let mut total_steals = 0;
        for round in 0..5 {
            let _ = round;
            total_steals += SolvePool::new(4).solve(jobs_for(&markets)).steals;
        }
        assert!(total_steals > 0, "no steal in 5 rounds of a skewed batch");
    }

    #[test]
    fn shared_deadline_and_poison_survive_the_pool() {
        let markets: Vec<_> = (0..4).map(|i| market(9 + i, 60)).collect();
        let expired = Deadline::after_ms(0);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let mut jobs = jobs_for(&markets);
        for job in &mut jobs {
            job.config = job.config.clone().with_deadline_at(expired);
        }
        let poisoned = CancelToken::new();
        poisoned.cancel();
        jobs[2].config = jobs[2].config.clone().with_cancel(poisoned);
        let batch = SolvePool::new(4).solve(jobs);
        for o in &batch.outcomes {
            let sol = o.result.as_ref().unwrap();
            // Expired shared budget: nothing may reach the exact tier.
            assert!(
                !sol.exact_completed,
                "shard {} ran past an expired shared deadline",
                o.shard
            );
            sol.matching.validate(&markets[o.shard].0).unwrap();
        }
    }
}
