//! Micro-batch accumulation with count, byte, and time watermarks.
//!
//! The dispatcher trades latency for solve quality by accumulating events
//! into bounded micro-batches: one engine call amortizes over many churn
//! events, and the local-repair noise of applying events one at a time is
//! cleaned up by the batch re-solve. [`Batcher`] closes a batch on the
//! first watermark tripped:
//!
//! * **count** — `max_events` arrivals buffered,
//! * **bytes** — `max_bytes` of encoded payload buffered (admission
//!   control for benefit-update-heavy streams whose events are wider),
//! * **time** — the next arrival's timestamp is `flush_interval` past the
//!   batch's first arrival (virtual time, so replay is deterministic: the
//!   flush decision depends only on the stream, never the host clock).
//!
//! The time watermark closes the batch *before* admitting the trigger
//! arrival — events at or beyond the watermark belong to the next batch,
//! which is what keeps batch membership a pure function of the stream.

use crate::event::Arrival;
use std::fmt;

/// Why a batch was closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushReason {
    /// Event-count watermark (`max_events`) reached.
    Count,
    /// Byte watermark (`max_bytes`) reached.
    Bytes,
    /// Time watermark: an arrival landed `flush_interval` or more past the
    /// batch's opening timestamp.
    Watermark,
    /// End of stream: the final partial batch, flushed by `drain`.
    Drain,
    /// Not a batch at all: one per-event flush from the online decision
    /// path (`--online`), which bypasses the batcher entirely.
    Online,
}

impl FlushReason {
    /// Stable keyword for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            FlushReason::Count => "count",
            FlushReason::Bytes => "bytes",
            FlushReason::Watermark => "watermark",
            FlushReason::Drain => "drain",
            FlushReason::Online => "online",
        }
    }
}

impl fmt::Display for FlushReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Watermark configuration for [`Batcher`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Close the batch once it holds this many events.
    pub max_events: usize,
    /// Close the batch once its encoded payload reaches this many bytes.
    pub max_bytes: usize,
    /// Close the batch when an arrival is this far (in stream time units)
    /// past the batch's first arrival.
    pub flush_interval: f64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_events: 256,
            max_bytes: 64 * 1024,
            flush_interval: 10.0,
        }
    }
}

impl BatchConfig {
    /// Panics on configurations that can never flush (or always flush).
    pub fn validate(&self) {
        assert!(self.max_events >= 1, "max_events must be >= 1");
        assert!(self.max_bytes >= 1, "max_bytes must be >= 1");
        assert!(
            self.flush_interval > 0.0 && self.flush_interval.is_finite(),
            "flush_interval must be positive and finite"
        );
    }
}

/// A closed batch, ready to dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedBatch {
    /// The buffered arrivals, in stream order.
    pub events: Vec<Arrival>,
    /// Which watermark closed the batch.
    pub reason: FlushReason,
}

/// Accumulates arrivals until a watermark trips.
#[derive(Debug)]
pub struct Batcher {
    cfg: BatchConfig,
    buf: Vec<Arrival>,
    bytes: usize,
    opened_at: f64,
}

impl Batcher {
    /// A new empty batcher. Panics if `cfg` is unusable.
    pub fn new(cfg: BatchConfig) -> Self {
        cfg.validate();
        Batcher {
            cfg,
            buf: Vec::with_capacity(cfg.max_events),
            bytes: 0,
            opened_at: 0.0,
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Offers an arrival; returns a batch if a watermark tripped.
    ///
    /// A time-watermark flush returns the batch *without* `a` (which opens
    /// the next batch); count/byte flushes return the batch *including*
    /// `a`. Either way `a` is consumed.
    pub fn offer(&mut self, a: Arrival) -> Option<ClosedBatch> {
        if !self.buf.is_empty() && a.time - self.opened_at >= self.cfg.flush_interval {
            let closed = self.close(FlushReason::Watermark);
            self.admit(a);
            return Some(closed);
        }
        self.admit(a);
        if self.buf.len() >= self.cfg.max_events {
            return Some(self.close(FlushReason::Count));
        }
        if self.bytes >= self.cfg.max_bytes {
            return Some(self.close(FlushReason::Bytes));
        }
        None
    }

    /// Flushes whatever is buffered as the stream's final batch.
    pub fn drain(&mut self) -> Option<ClosedBatch> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.close(FlushReason::Drain))
        }
    }

    fn admit(&mut self, a: Arrival) {
        if self.buf.is_empty() {
            self.opened_at = a.time;
        }
        self.bytes += a.event.encoded_size();
        self.buf.push(a);
    }

    fn close(&mut self, reason: FlushReason) -> ClosedBatch {
        self.bytes = 0;
        ClosedBatch {
            events: std::mem::take(&mut self.buf),
            reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ServiceEvent;

    fn at(time: f64, id: u32) -> Arrival {
        Arrival {
            time,
            event: ServiceEvent::WorkerJoin(id),
        }
    }

    #[test]
    fn count_watermark_includes_trigger() {
        let mut b = Batcher::new(BatchConfig {
            max_events: 3,
            ..BatchConfig::default()
        });
        assert!(b.offer(at(0.0, 0)).is_none());
        assert!(b.offer(at(0.1, 1)).is_none());
        let closed = b.offer(at(0.2, 2)).expect("third event flushes");
        assert_eq!(closed.reason, FlushReason::Count);
        assert_eq!(closed.events.len(), 3);
        assert!(b.is_empty());
    }

    #[test]
    fn byte_watermark_counts_payload() {
        // Benefit updates are 24 bytes; two of them cross a 40-byte line.
        let mut b = Batcher::new(BatchConfig {
            max_bytes: 40,
            ..BatchConfig::default()
        });
        let upd = |time| Arrival {
            time,
            event: ServiceEvent::BenefitUpdate {
                edge: 0,
                weight: 0.5,
            },
        };
        assert!(b.offer(upd(0.0)).is_none());
        let closed = b.offer(upd(0.1)).expect("48 bytes >= 40");
        assert_eq!(closed.reason, FlushReason::Bytes);
        assert_eq!(closed.events.len(), 2);
    }

    #[test]
    fn time_watermark_excludes_trigger() {
        let mut b = Batcher::new(BatchConfig {
            flush_interval: 5.0,
            ..BatchConfig::default()
        });
        assert!(b.offer(at(1.0, 0)).is_none());
        assert!(b.offer(at(3.0, 1)).is_none());
        let closed = b.offer(at(6.0, 2)).expect("6.0 - 1.0 >= 5.0");
        assert_eq!(closed.reason, FlushReason::Watermark);
        assert_eq!(closed.events.len(), 2, "trigger opens the next batch");
        assert_eq!(b.len(), 1);
        // The trigger's time reopens the window.
        assert!(b.offer(at(10.9, 3)).is_none());
        let closed = b.offer(at(11.0, 4)).expect("11.0 - 6.0 >= 5.0");
        assert_eq!(closed.events.len(), 2);
    }

    #[test]
    fn drain_flushes_partial_batch_once() {
        let mut b = Batcher::new(BatchConfig::default());
        assert!(b.drain().is_none(), "empty batcher has nothing to drain");
        b.offer(at(0.0, 0));
        let closed = b.drain().expect("partial batch");
        assert_eq!(closed.reason, FlushReason::Drain);
        assert_eq!(closed.events.len(), 1);
        assert!(b.drain().is_none());
    }

    #[test]
    #[should_panic(expected = "max_events")]
    fn zero_count_watermark_rejected() {
        Batcher::new(BatchConfig {
            max_events: 0,
            ..BatchConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "flush_interval")]
    fn non_finite_interval_rejected() {
        Batcher::new(BatchConfig {
            flush_interval: f64::NAN,
            ..BatchConfig::default()
        });
    }
}
