//! The dispatch service: event-driven, batched, sharded assignment.
//!
//! [`DispatchService`] is the long-running loop this crate exists for,
//! assembled from the rest of the crate plus the robust engine:
//!
//! ```text
//!  producers --offer--> BoundedQueue --pump--> Batcher --flush--> dispatch
//!                                                                    |
//!                       per touched shard: apply churn to the        |
//!                       IncrementalAssignment (greedy local repair), |
//!                       then solve_robust on the active sub-market — |
//!                       all touched shards concurrently via the      |
//!                       SolvePool, racing the batch's shared         |
//!                       deadline — and adopt improvements via reseed |
//!                                                                    v
//!                              DecisionSink (assignment deltas + stats)
//! ```
//!
//! **Capacity safety.** Shards are node-disjoint ([`ShardPlan`]), so each
//! worker's capacity is managed by exactly one `IncrementalAssignment`,
//! whose every mutation preserves feasibility. The union of shard
//! assignments is therefore feasible on the universe graph by
//! construction; [`DispatchService::finish`] re-validates the union anyway
//! and reports the violation count (the CI smoke test asserts it is zero).
//!
//! **Degradation isolation.** A poisoned shard ([`DispatchService::poison_shard`])
//! gets a pre-cancelled [`CancelToken`], so its solves return the greedy
//! floor immediately ([`QualityTier::Degraded`]) — it can never stall the
//! batch loop or its sibling shards, and every degraded solve is counted
//! per shard.
//!
//! **Determinism.** Under [`BudgetMode::Deterministic`] every solve runs
//! unbudgeted, so each shard's result is a pure function of the input
//! events; the [`SolvePool`] merges results in shard-index order, so the
//! decision stream is too — replaying a trace twice produces
//! byte-identical decision logs **at any thread count**.
//! [`BudgetMode::Wallclock`] trades that for bounded batch latency.
//!
//! **Budget policy.** A wall-clock batch budget is *never split* across
//! the touched shards. Every shard solve gets the same absolute deadline
//! (batch dispatch start + budget) via
//! [`EngineConfig::with_deadline_at`]:
//!
//! * sequentially (`threads = 1`), a shard that finishes early leaves its
//!   unused budget to the shards after it — the old `ms / touched.len()`
//!   split burned that slack, starving late shards even in mostly-idle
//!   batches;
//! * concurrently (`threads > 1`), all shards race the same instant, so
//!   batch latency is bounded by the budget while each shard may use up
//!   to *all* of it.
//!
//! The cost is ordering sensitivity in sequential wall-clock mode: a slow
//! early shard can eat the budget that previously was reserved for its
//! successors, degrading them to the greedy floor. That is the intended
//! trade — budget flows to whoever can still use it, and the quality-tier
//! tallies make the effect observable.

use crate::batch::{BatchConfig, Batcher, ClosedBatch, FlushReason};
use crate::event::{Arrival, ServiceEvent};
use crate::online::{self, OnlineConfig, OnlineRuntime};
use crate::pool::{ShardJob, SolvePool};
use crate::queue::{BoundedQueue, DropPolicy, OfferOutcome};
use crate::report::ServiceReport;
use crate::shard::{ShardPlan, UNMAPPED};
use crate::sink::{canonical_order, Action, BatchStats, Decision, DecisionSink};
use mbta_core::engine::{EngineConfig, QualityTier};
use mbta_core::incremental::IncrementalAssignment;
use mbta_graph::subgraph::{induce, SubgraphSpec};
use mbta_graph::{BipartiteGraph, EdgeId, TaskId, WorkerId};
use mbta_matching::Matching;
use mbta_partition::{migration_diff, residual_candidates, validate_rescue, CutTracker};
use mbta_store::record::{BatchRecord, DecisionRecord, OnlineRecord, PlanRecord, WeightDelta};
use mbta_store::snapshot::SnapshotState;
use mbta_store::store::DurableStore;
use mbta_util::{CancelToken, Deadline, SolveCtl};
use std::time::Instant;

/// How solve budgets are assigned per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetMode {
    /// Each batch gets this many wall-clock milliseconds of solve budget,
    /// shared by its touched shards as one absolute deadline: unused
    /// budget carries forward sequentially, and concurrent shards race the
    /// same instant (see the module docs' budget policy). Bounded latency,
    /// non-deterministic quality tiers.
    Wallclock(u64),
    /// No deadlines: every solve runs the full chain to the exact tier.
    /// Deterministic decisions; latency bounded only by instance size.
    Deterministic,
}

/// Service construction parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Micro-batch watermarks.
    pub batch: BatchConfig,
    /// Ingress queue capacity.
    pub queue_cap: usize,
    /// Ingress overload policy.
    pub drop_policy: DropPolicy,
    /// Solve budget mode.
    pub budget: BudgetMode,
    /// Solver threads for touched-shard solves; `0` = available
    /// parallelism, `1` = the exact sequential dispatch path.
    pub threads: usize,
    /// Run the cross-shard boundary-rescue pass after every batch's shard
    /// solves merge: cross edges whose endpoints still have residual
    /// capacity form a small second-stage matching market whose solution
    /// overlays the intra-shard assignments (see the module docs). Also
    /// makes cross-shard benefit updates *processed* (they feed the
    /// rescue market) instead of dropped.
    pub boundary_pass: bool,
    /// Re-plan trigger: when the live cut fraction degrades past this
    /// value above its plan-time baseline, [`DispatchService::replan_due`]
    /// starts returning true and the driver should detach → rebuild the
    /// plan → resume. `None` disables drift-driven re-planning.
    pub replan_threshold: Option<f64>,
    /// Per-event online decision path: `Some` bypasses the batcher and
    /// decides on every event (greedy repair + depth-1 exchange, with a
    /// warm-started exact fallback once per-shard drift crosses the
    /// configured threshold). Incompatible with `boundary_pass` — the
    /// rescue overlay is a batch-boundary construct.
    pub online: Option<OnlineConfig>,
    /// Single-shard ownership (the cluster's shard-owner mode): this
    /// process owns exactly one shard of the plan. Events routing to any
    /// other shard are counted as *foreign* and skipped — a correctly
    /// routing upstream never sends them, so the counter doubles as a
    /// routing-agreement check. Incompatible with `boundary_pass`, which
    /// needs every shard's residual state in one process.
    pub owned_shard: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            batch: BatchConfig::default(),
            queue_cap: 4096,
            drop_policy: DropPolicy::Defer,
            budget: BudgetMode::Wallclock(50),
            threads: 0,
            boundary_pass: false,
            replan_threshold: None,
            online: None,
            owned_shard: None,
        }
    }
}

/// The event-driven dispatch service. See the module docs.
///
/// The driving loop is `offer` → `pump` → `finish`; under the `Defer`
/// overload policy, a deferred offer means "pump batches, then retry":
///
/// ```
/// use mbta_graph::random::from_edges;
/// use mbta_service::{
///     Arrival, DispatchService, NullSink, OfferOutcome, Routing, ServiceConfig, ServiceEvent,
///     ShardPlan,
/// };
///
/// let g = from_edges(&[1, 1], &[1, 1], &[(0, 0, 0.9, 0.9), (1, 1, 0.5, 0.5)]);
/// let weights = vec![0.9, 0.5];
/// let plan = ShardPlan::build(&g, &weights, 2, Routing::HashId);
/// let mut svc = DispatchService::new(&g, &plan, ServiceConfig::default());
/// let mut sink = NullSink;
///
/// for (time, event) in [
///     (0.0, ServiceEvent::WorkerJoin(0)),
///     (0.5, ServiceEvent::TaskPost(0)),
/// ] {
///     let arrival = Arrival { time, event };
///     while let OfferOutcome::Deferred = svc.offer(arrival) {
///         svc.pump(&mut sink);
///     }
///     svc.pump(&mut sink);
/// }
/// let report = svc.finish(&mut sink);
/// assert_eq!(report.capacity_violations, 0);
/// assert_eq!(report.events_processed, 2);
/// ```
pub struct DispatchService<'p> {
    universe: &'p BipartiteGraph,
    plan: &'p ShardPlan,
    budget: BudgetMode,
    pool: SolvePool,
    states: Vec<IncrementalAssignment<'p>>,
    queue: BoundedQueue,
    batcher: Batcher,
    poisoned: Vec<bool>,
    /// Universe-indexed live weights (benefit updates land here too, so
    /// decisions can report the weight in parent terms).
    live_weights: Vec<f64>,
    /// Optional durability: when attached, every batch is journaled to
    /// the WAL *before* its decisions reach the sink, and full-state
    /// snapshots are written on the store's cadence.
    store: Option<DurableStore>,
    /// First store I/O error, if any. Journaling stops at the first
    /// failure (the durable prefix stays valid); the service keeps
    /// dispatching and the report carries the error.
    store_error: Option<std::io::Error>,

    /// Boundary-rescue state: the rescue overlay (sorted universe edge
    /// ids currently assigned by the rescue market) and which cross edges
    /// were ever offered to it.
    boundary_pass: bool,
    overlay: Vec<EdgeId>,
    cross_seen: Vec<bool>,
    /// Live intra/cross weight split for drift-driven re-planning.
    cut: CutTracker,
    replan_threshold: Option<f64>,

    /// Per-event online decision runtime (`None` = batch dispatch).
    online: Option<OnlineRuntime>,

    seq: u64,
    events_in: u64,
    events_processed: u64,
    invalid_events: u64,
    cross_benefit_drops: u64,
    flush_tally: [u64; 5],
    solves: u64,
    tier_tally: [u64; 3],
    degraded_by_shard: Vec<u64>,
    decisions_out: u64,
    steals: u64,
    rescue_solves: u64,
    rescue_assigns: u64,
    rescue_violations: u64,
    replans: u64,
    migrated_workers: u64,
    migrated_tasks: u64,
    /// Set by a `Deferred` offer, cleared by the next admitted one: the
    /// admitted offer is then a defer-retry success, which used to go
    /// uncounted.
    defer_pending: bool,
    defer_retry_ok: u64,
    reseeds: u64,
    /// Per-instance batch solve-latency histogram; the report's p50/p99
    /// derive from its buckets instead of a private sample buffer.
    solve_lat: mbta_telemetry::Histogram,
    /// Single-shard ownership (see [`ServiceConfig::owned_shard`]).
    owned_shard: Option<usize>,
    foreign_events: u64,

    /// Largest stream timestamp seen on the online path — stamps the
    /// closing drain records, which have no triggering arrival.
    last_time: f64,
    started: Instant,
}

/// Where a batch event landed after routing.
enum Routed {
    Shard(usize),
    Invalid,
    CrossBenefit,
    /// Routed cleanly, but to a shard this process does not own.
    Foreign,
}

impl<'p> DispatchService<'p> {
    /// Builds a service over a shard plan. All nodes start *inactive* —
    /// the market is empty until join/post events arrive.
    pub fn new(universe: &'p BipartiteGraph, plan: &'p ShardPlan, cfg: ServiceConfig) -> Self {
        assert!(
            !(cfg.boundary_pass && cfg.online.is_some()),
            "online mode is incompatible with the boundary pass"
        );
        assert!(
            !(cfg.boundary_pass && cfg.owned_shard.is_some()),
            "single-shard ownership is incompatible with the boundary pass"
        );
        if let Some(own) = cfg.owned_shard {
            assert!(
                own < plan.n_shards(),
                "owned shard {own} out of range (plan has {} shards)",
                plan.n_shards()
            );
        }
        let (mut states, live_weights, cut) = seed_plan_state(universe, plan, None);
        let online = cfg.online.map(|oc| {
            for st in &mut states {
                st.enable_log();
            }
            OnlineRuntime::new(oc, plan)
        });
        let n = plan.n_shards();
        DispatchService {
            universe,
            plan,
            budget: cfg.budget,
            pool: SolvePool::new(cfg.threads),
            states,
            queue: BoundedQueue::new(cfg.queue_cap, cfg.drop_policy),
            batcher: Batcher::new(cfg.batch),
            poisoned: vec![false; n],
            live_weights,
            store: None,
            store_error: None,
            boundary_pass: cfg.boundary_pass,
            overlay: Vec::new(),
            cross_seen: vec![false; universe.n_edges()],
            cut,
            replan_threshold: cfg.replan_threshold,
            online,
            owned_shard: cfg.owned_shard,
            seq: 0,
            events_in: 0,
            events_processed: 0,
            invalid_events: 0,
            cross_benefit_drops: 0,
            foreign_events: 0,
            flush_tally: [0; 5],
            solves: 0,
            tier_tally: [0; 3],
            degraded_by_shard: vec![0; n],
            decisions_out: 0,
            steals: 0,
            rescue_solves: 0,
            rescue_assigns: 0,
            rescue_violations: 0,
            replans: 0,
            migrated_workers: 0,
            migrated_tasks: 0,
            defer_pending: false,
            defer_retry_ok: 0,
            reseeds: 0,
            solve_lat: mbta_telemetry::Histogram::new(),
            last_time: 0.0,
            started: Instant::now(),
        }
    }

    /// Attaches a durability store: from the next batch on, every commit
    /// is journaled to the WAL before its decisions reach the sink, and
    /// snapshots are written on the store's cadence. The store must be
    /// fresh (nothing committed): this service starts from an empty
    /// market, so attaching a store that already holds state would make
    /// the journal lie about what the decisions were applied to. Use
    /// `mbta_store::recover` to inspect an existing directory instead.
    pub fn attach_store(&mut self, store: DurableStore) {
        assert_eq!(
            store.stats().watermark,
            0,
            "cannot attach a store with existing journaled state to a fresh service"
        );
        self.store = Some(store);
    }

    /// Captures the full dispatch state as a snapshot payload: per shard,
    /// the sorted universe edge ids currently assigned, plus the live
    /// weight vector.
    fn snapshot_state(&self, watermark: u64) -> SnapshotState {
        let mut shards: Vec<Vec<u32>> = self
            .plan
            .shards
            .iter()
            .zip(&self.states)
            .map(|(slice, st)| {
                let mut edges: Vec<u32> = st
                    .matching()
                    .edges
                    .into_iter()
                    .map(|e| slice.sub.edge_back[e.index()].raw())
                    .collect();
                edges.sort_unstable();
                edges
            })
            .collect();
        if self.boundary_pass {
            // The rescue overlay snapshots as pseudo-shard `n_shards`,
            // matching the shard id its decisions carry in the WAL.
            shards.push(self.overlay.iter().map(|e| e.raw()).collect());
        }
        SnapshotState {
            watermark,
            shards,
            weights: self.live_weights.clone(),
        }
    }

    /// Journals one committed batch (and a snapshot, when due) through
    /// the attached store. On the first I/O error journaling stops for
    /// good — the durable prefix on disk stays valid — and the error is
    /// surfaced in the run report.
    fn journal(&mut self, rec: BatchRecord) {
        let Some(mut store) = self.store.take() else {
            return;
        };
        if self.store_error.is_none() {
            let mut res = store.commit(&rec);
            if res.is_ok() && store.snapshot_due() {
                let snap = self.snapshot_state(rec.seq + 1);
                res = store.snapshot(&snap);
            }
            if let Err(e) = res {
                mbta_telemetry::counter_add("mbta_store_errors_total", 1);
                self.store_error = Some(e);
            }
        }
        self.store = Some(store);
    }

    /// Journals one online record through the attached store, with the
    /// same first-error-stops-journaling contract as [`Self::journal`].
    fn journal_online(&mut self, rec: OnlineRecord) {
        let Some(mut store) = self.store.take() else {
            return;
        };
        if self.store_error.is_none() {
            let mut res = store.commit_online(&rec);
            if res.is_ok() && store.snapshot_due() {
                let snap = self.snapshot_state(rec.seq + 1);
                res = store.snapshot(&snap);
            }
            if let Err(e) = res {
                mbta_telemetry::counter_add("mbta_store_errors_total", 1);
                self.store_error = Some(e);
            }
        }
        self.store = Some(store);
    }

    /// Whether shard `s` has nothing an exact solver could work with.
    fn shard_degenerate(&self, s: usize) -> bool {
        let g = &self.plan.shards[s].sub.graph;
        g.n_edges() == 0 || g.n_workers() == 0 || g.n_tasks() == 0
    }

    /// Warm-started exact re-solve of shard `s` (the caller has ruled
    /// out poisoned and degenerate shards), adopting the solution when
    /// it improves on the incremental state. Appends the applied flips
    /// to the caller's (pooled) `out` buffer.
    fn warm_solve_shard(&mut self, s: usize, ctl: &SolveCtl, out: &mut Vec<(EdgeId, bool)>) {
        let rt = self.online.as_mut().expect("online solve requires runtime");
        let st = &mut self.states[s];
        let aw = st.active_weights();
        let sh = &mut rt.shards[s];
        sh.warm.seed(st.matching());
        let m = sh.warm.solve(&self.plan.shards[s].sub.graph, &aw, ctl);
        if m.total_weight(&aw) > st.total_weight() + 1e-12 {
            st.reseed(&m)
                .expect("warm solution is feasible on the active sub-market");
            self.reseeds += 1;
            mbta_telemetry::counter_add("mbta_service_reseeds_total", 1);
        }
        st.drain_log_into(out);
    }

    /// The per-event online decision path (see the [`crate::online`]
    /// module docs): apply the event through the shard's incremental
    /// state, attempt a depth-1 exchange for benefit updates, accumulate
    /// drift, fall back to a warm-started exact re-solve past the drift
    /// threshold, then journal and emit the event's net decisions.
    fn dispatch_online(&mut self, a: Arrival, sink: &mut impl DecisionSink) {
        let t0 = Instant::now();
        self.last_time = self.last_time.max(a.time);
        let s = match self.route(&a.event) {
            Routed::Shard(s) => s,
            Routed::Invalid => {
                self.invalid_events += 1;
                mbta_telemetry::counter_add("mbta_service_invalid_events_total", 1);
                return;
            }
            // The rescue overlay is a batch construct; in online mode a
            // cross-shard benefit update has no decision surface.
            Routed::CrossBenefit => {
                self.cross_benefit_drops += 1;
                return;
            }
            Routed::Foreign => {
                self.foreign_events += 1;
                mbta_telemetry::counter_add("mbta_service_foreign_events_total", 1);
                return;
            }
        };

        // Deltas are collected whether or not a store is attached, so the
        // sequence of deciding events — and therefore the decision stream
        // — is identical with and without journaling.
        let mut deltas: Vec<WeightDelta> = Vec::new();
        // Benefit drift accrues before the weight is overwritten.
        let mut drift = 0.0f64;
        if let ServiceEvent::BenefitUpdate { edge, weight } = a.event {
            deltas.push(WeightDelta { edge, weight });
            drift = (weight - self.live_weights[edge as usize]).abs();
        }
        self.apply(s, &a.event);
        self.events_processed += 1;

        // A benefit update may make its edge newly attractive: take it
        // greedily if capacity allows, else try the depth-1 exchange.
        if let ServiceEvent::BenefitUpdate { edge, .. } = a.event {
            let local = EdgeId::new(self.plan.edge_local[edge as usize]);
            let st = &mut self.states[s];
            if !st.edge_assigned(local) && !st.try_assign(local) && online::try_exchange(st, local)
            {
                let rt = self
                    .online
                    .as_mut()
                    .expect("online dispatch requires runtime");
                rt.exchanges += 1;
                mbta_telemetry::counter_add("mbta_service_online_exchanges_total", 1);
            }
        }

        // Drift: |Δw| of the update plus every net-removed edge's weight
        // (departures and evictions — plain greedy fills accrue nothing).
        // The flip and decision buffers are pooled in the runtime:
        // `mem::take` them out for this event, hand them back cleared.
        let mut flips = std::mem::take(
            &mut self
                .online
                .as_mut()
                .expect("online dispatch requires runtime")
                .scratch
                .flips,
        );
        flips.clear();
        self.states[s].drain_log_into(&mut flips);
        {
            let rt = self
                .online
                .as_mut()
                .expect("online dispatch requires runtime");
            let st = &self.states[s];
            for &(e, added) in rt.scratch.fold(&flips) {
                if !added {
                    drift += st.weight_of(e).max(0.0);
                }
            }
        }
        let rt = self
            .online
            .as_mut()
            .expect("online dispatch requires runtime");
        rt.events += 1;
        rt.shards[s].acc += drift;
        mbta_telemetry::counter_add("mbta_service_online_events_total", 1);
        let due = rt.fallback_due(s, self.states[s].total_weight());

        // Drift fallback: warm-started exact re-solve of the shard,
        // under the same per-batch budget the batch path gets — the
        // event is on the latency path.
        let mut fell_back = false;
        if due && !self.poisoned[s] && !self.shard_degenerate(s) {
            let ctl = match self.budget {
                BudgetMode::Wallclock(ms) => {
                    SolveCtl::unlimited().with_deadline(Deadline::after_ms(ms))
                }
                BudgetMode::Deterministic => SolveCtl::unlimited(),
            };
            self.warm_solve_shard(s, &ctl, &mut flips);
            fell_back = true;
        }
        let rt = self
            .online
            .as_mut()
            .expect("online dispatch requires runtime");
        if fell_back || (due && self.poisoned[s]) {
            // A poisoned shard resets its accumulator without solving —
            // it stays on the greedy floor, like its batch behavior.
            rt.shards[s].acc = 0.0;
            rt.fallbacks += 1;
            mbta_telemetry::counter_add("mbta_service_online_fallbacks_total", 1);
        }

        // Net decisions for this event, in universe ids (pooled buffer).
        let mut decisions = std::mem::take(
            &mut self
                .online
                .as_mut()
                .expect("online dispatch requires runtime")
                .scratch
                .decisions,
        );
        self.online_decisions_into(s, &flips, &mut decisions);

        let event_ms = t0.elapsed().as_secs_f64() * 1e3;
        let rt = self
            .online
            .as_mut()
            .expect("online dispatch requires runtime");
        rt.lat.observe(event_ms);
        mbta_telemetry::observe("mbta_service_online_event_ms", event_ms);

        // Events that changed nothing durable consume no sequence slot:
        // the WAL stays contiguous and sinks see only deciding events.
        if !decisions.is_empty() || !deltas.is_empty() {
            let stats = BatchStats {
                seq: self.seq,
                reason: FlushReason::Online,
                events: 1,
                queue_depth: self.queue.len(),
                shards_touched: 1,
                degraded_shards: 0,
                worst_tier: None,
                solve_ms: event_ms,
                invalid_events: 0,
            };
            self.seq += 1;
            self.flush_tally[4] += 1;
            self.decisions_out += decisions.len() as u64;
            mbta_telemetry::counter_add("mbta_service_decisions_total", decisions.len() as u64);
            // Write-ahead ordering, identical to the batch path: the
            // record is durable before any decision escapes.
            if self.store.is_some() {
                let rec = OnlineRecord {
                    seq: stats.seq,
                    time: a.time,
                    events: 1,
                    fallbacks: u32::from(fell_back),
                    deltas,
                    decisions: to_records(&decisions),
                };
                self.journal_online(rec);
            }
            sink.on_batch(&stats, &decisions);
        }
        self.recycle_online_buffers(flips, decisions);
    }

    /// Returns the event's pooled buffers to the runtime scratch.
    fn recycle_online_buffers(
        &mut self,
        mut flips: Vec<(EdgeId, bool)>,
        mut decisions: Vec<Decision>,
    ) {
        flips.clear();
        decisions.clear();
        let rt = self
            .online
            .as_mut()
            .expect("online dispatch requires runtime");
        rt.scratch.flips = flips;
        rt.scratch.decisions = decisions;
    }

    /// Folds shard `s`'s flip log into canonical universe-id decisions,
    /// written into the pooled `out` buffer (cleared first).
    fn online_decisions_into(
        &mut self,
        s: usize,
        flips: &[(EdgeId, bool)],
        out: &mut Vec<Decision>,
    ) {
        out.clear();
        let rt = self
            .online
            .as_mut()
            .expect("online decisions require runtime");
        let slice = &self.plan.shards[s];
        for &(local, added) in rt.scratch.fold(flips) {
            let parent = slice.sub.edge_back[local.index()];
            out.push(Decision {
                shard: s as u32,
                edge: parent.raw(),
                action: if added {
                    Action::Assign
                } else {
                    Action::Unassign
                },
                worker: self.universe.worker_of(parent).raw(),
                task: self.universe.task_of(parent).raw(),
                weight: self.live_weights[parent.index()],
            });
        }
        canonical_order(out);
    }

    /// The online analog of the batcher's final partial batch: one
    /// closing warm exact solve per healthy shard, so the run converges
    /// before the final report instead of ending wherever drift since
    /// the last fallback left it. Decisions are journaled and emitted
    /// exactly like per-event ones (`events: 0` — no arrival triggered
    /// them), and shards whose closing solve changes nothing consume no
    /// sequence slot.
    fn drain_online(&mut self, sink: &mut impl DecisionSink) {
        if self.online.is_none() {
            return;
        }
        for s in 0..self.plan.n_shards() {
            if self.owned_shard.is_some_and(|own| own != s) {
                continue;
            }
            if self.poisoned[s] || self.shard_degenerate(s) {
                continue;
            }
            let t0 = Instant::now();
            // Shutdown is off the latency path, so the closing solve runs
            // unbudgeted: a wall-clock budget sized for steady-state events
            // would truncate the one solve whose whole point is to converge.
            let rt = self.online.as_mut().expect("online drain requires runtime");
            let mut flips = std::mem::take(&mut rt.scratch.flips);
            flips.clear();
            self.warm_solve_shard(s, &SolveCtl::unlimited(), &mut flips);
            let rt = self.online.as_mut().expect("online drain requires runtime");
            rt.shards[s].acc = 0.0;
            rt.fallbacks += 1;
            let mut decisions = std::mem::take(&mut rt.scratch.decisions);
            mbta_telemetry::counter_add("mbta_service_online_fallbacks_total", 1);
            self.online_decisions_into(s, &flips, &mut decisions);
            if !decisions.is_empty() {
                let stats = BatchStats {
                    seq: self.seq,
                    reason: FlushReason::Online,
                    events: 0,
                    queue_depth: 0,
                    shards_touched: 1,
                    degraded_shards: 0,
                    worst_tier: None,
                    solve_ms: t0.elapsed().as_secs_f64() * 1e3,
                    invalid_events: 0,
                };
                self.seq += 1;
                self.flush_tally[4] += 1;
                self.decisions_out += decisions.len() as u64;
                mbta_telemetry::counter_add("mbta_service_decisions_total", decisions.len() as u64);
                if self.store.is_some() {
                    let rec = OnlineRecord {
                        seq: stats.seq,
                        time: self.last_time,
                        events: 0,
                        fallbacks: 1,
                        deltas: Vec::new(),
                        decisions: to_records(&decisions),
                    };
                    self.journal_online(rec);
                }
                sink.on_batch(&stats, &decisions);
            }
            self.recycle_online_buffers(flips, decisions);
        }
    }

    /// Marks a shard as poisoned: its solves are pre-cancelled and return
    /// the greedy floor immediately. Sibling shards are unaffected.
    pub fn poison_shard(&mut self, s: usize) {
        if !self.poisoned[s] {
            mbta_telemetry::counter_add("mbta_service_shard_poisoned_total", 1);
        }
        self.poisoned[s] = true;
    }

    /// Clears a shard's poison mark.
    pub fn heal_shard(&mut self, s: usize) {
        if self.poisoned[s] {
            mbta_telemetry::counter_add("mbta_service_shard_healed_total", 1);
        }
        self.poisoned[s] = false;
    }

    /// Offers one arrival to the ingress queue. On [`OfferOutcome::Deferred`]
    /// the caller must [`pump`](Self::pump) and re-offer — nothing was
    /// admitted (and the offer is not counted as an ingress event).
    pub fn offer(&mut self, a: Arrival) -> OfferOutcome {
        let outcome = self.queue.offer(a);
        match outcome {
            OfferOutcome::Deferred => {
                self.defer_pending = true;
                mbta_telemetry::counter_add("mbta_service_deferrals_total", 1);
            }
            admitted => {
                self.events_in += 1;
                mbta_telemetry::counter_add("mbta_service_events_total", 1);
                if self.defer_pending {
                    self.defer_pending = false;
                    self.defer_retry_ok += 1;
                    mbta_telemetry::counter_add("mbta_service_defer_retry_ok_total", 1);
                }
                match admitted {
                    OfferOutcome::DroppedNewest => mbta_telemetry::counter_add(
                        "mbta_service_queue_dropped_total{policy=\"newest\"}",
                        1,
                    ),
                    OfferOutcome::DroppedOldest => mbta_telemetry::counter_add(
                        "mbta_service_queue_dropped_total{policy=\"oldest\"}",
                        1,
                    ),
                    _ => {}
                }
            }
        }
        outcome
    }

    /// Drains the ingress queue: through the batcher in batch mode
    /// (dispatching every batch a watermark closes), or event by event
    /// through the online decision path when `online` is configured.
    pub fn pump(&mut self, sink: &mut impl DecisionSink) {
        if self.online.is_some() {
            while let Some(a) = self.queue.pop() {
                self.dispatch_online(a, sink);
            }
            return;
        }
        while let Some(a) = self.queue.pop() {
            if let Some(closed) = self.batcher.offer(a) {
                self.dispatch(closed, sink);
            }
        }
    }

    /// Batches dispatched so far — equals the durable watermark when a
    /// store is attached. Cheap; safe to read every loop iteration for
    /// status replies.
    pub fn batches_committed(&self) -> u64 {
        self.seq
    }

    /// Live assigned-edge count across all shards.
    pub fn current_assignments(&self) -> usize {
        self.states.iter().map(|s| s.len()).sum()
    }

    /// Live total assignment value across all shards.
    pub fn current_value(&self) -> f64 {
        self.states.iter().map(|s| s.total_weight()).sum()
    }

    fn route(&self, ev: &ServiceEvent) -> Routed {
        match self.route_universe(ev) {
            Routed::Shard(s) if self.owned_shard.is_some_and(|own| own != s) => Routed::Foreign,
            r => r,
        }
    }

    fn route_universe(&self, ev: &ServiceEvent) -> Routed {
        match *ev {
            ServiceEvent::WorkerJoin(w) | ServiceEvent::WorkerLeave(w) => {
                if (w as usize) < self.universe.n_workers() {
                    Routed::Shard(self.plan.worker_shard[w as usize] as usize)
                } else {
                    Routed::Invalid
                }
            }
            ServiceEvent::TaskPost(t)
            | ServiceEvent::TaskCancel(t)
            | ServiceEvent::TaskComplete(t) => {
                if (t as usize) < self.universe.n_tasks() {
                    Routed::Shard(self.plan.task_shard[t as usize] as usize)
                } else {
                    Routed::Invalid
                }
            }
            ServiceEvent::BenefitUpdate { edge, weight } => {
                // The engine's input contract is finite non-negative
                // weights; a malformed update is rejected here, at the
                // admission boundary, instead of poisoning every later
                // solve of the shard.
                if (edge as usize) >= self.universe.n_edges() || !weight.is_finite() || weight < 0.0
                {
                    Routed::Invalid
                } else if self.plan.edge_shard[edge as usize] == UNMAPPED {
                    Routed::CrossBenefit
                } else {
                    Routed::Shard(self.plan.edge_shard[edge as usize] as usize)
                }
            }
        }
    }

    fn apply(&mut self, shard: usize, ev: &ServiceEvent) {
        let st = &mut self.states[shard];
        match *ev {
            ServiceEvent::WorkerJoin(w) => {
                st.activate_worker(WorkerId::new(self.plan.worker_local[w as usize]));
            }
            ServiceEvent::WorkerLeave(w) => {
                st.deactivate_worker(WorkerId::new(self.plan.worker_local[w as usize]));
            }
            ServiceEvent::TaskPost(t) => {
                st.activate_task(TaskId::new(self.plan.task_local[t as usize]));
            }
            ServiceEvent::TaskCancel(t) | ServiceEvent::TaskComplete(t) => {
                st.deactivate_task(TaskId::new(self.plan.task_local[t as usize]));
            }
            ServiceEvent::BenefitUpdate { edge, weight } => {
                let local = EdgeId::new(self.plan.edge_local[edge as usize]);
                st.set_weight(local, weight);
                let old = self.live_weights[edge as usize];
                self.live_weights[edge as usize] = weight;
                self.cut.update(false, old, weight);
            }
        }
    }

    fn dispatch(&mut self, batch: ClosedBatch, sink: &mut impl DecisionSink) {
        let batch_span = mbta_telemetry::span!("mbta_service_batch");
        batch_span.attr("events", batch.events.len() as u64);
        mbta_telemetry::counter_add("mbta_service_batches_total", 1);
        mbta_telemetry::observe("mbta_service_batch_events", batch.events.len() as f64);
        mbta_telemetry::gauge_set("mbta_service_queue_depth", self.queue.len() as f64);
        let reason = batch.reason;
        self.flush_tally[match reason {
            FlushReason::Count => 0,
            FlushReason::Bytes => 1,
            FlushReason::Watermark => 2,
            FlushReason::Drain => 3,
            FlushReason::Online => unreachable!("the batcher never emits online flushes"),
        }] += 1;

        // Pass 1: route every event so the touched-shard set (and thus the
        // pre-batch snapshots) is known before any state changes.
        let mut touched: Vec<usize> = Vec::new();
        let mut seen = vec![false; self.plan.n_shards()];
        let mut routes = Vec::with_capacity(batch.events.len());
        let mut invalid = 0usize;
        let mut foreign = 0usize;
        for a in &batch.events {
            let r = self.route(&a.event);
            match r {
                Routed::Shard(s) => {
                    if !seen[s] {
                        seen[s] = true;
                        touched.push(s);
                    }
                }
                Routed::Invalid => invalid += 1,
                // With the boundary pass on, cross-shard benefit updates
                // feed the rescue market instead of being dropped.
                Routed::CrossBenefit if !self.boundary_pass => self.cross_benefit_drops += 1,
                Routed::CrossBenefit => {}
                Routed::Foreign => foreign += 1,
            }
            routes.push(r);
        }
        touched.sort_unstable();
        self.invalid_events += invalid as u64;
        mbta_telemetry::counter_add("mbta_service_invalid_events_total", invalid as u64);
        self.foreign_events += foreign as u64;
        mbta_telemetry::counter_add("mbta_service_foreign_events_total", foreign as u64);

        let before: Vec<Matching> = touched.iter().map(|&s| self.states[s].matching()).collect();

        // Pass 2: apply churn in arrival order (greedy local repair keeps
        // every intermediate state feasible). With a store attached, the
        // applied weight updates are collected for the batch's WAL record.
        let journaling = self.store.is_some();
        let mut deltas: Vec<WeightDelta> = Vec::new();
        for (a, r) in batch.events.iter().zip(&routes) {
            match *r {
                Routed::Shard(s) => {
                    if journaling {
                        if let ServiceEvent::BenefitUpdate { edge, weight } = a.event {
                            deltas.push(WeightDelta { edge, weight });
                        }
                    }
                    self.apply(s, &a.event);
                    self.events_processed += 1;
                }
                Routed::CrossBenefit if self.boundary_pass => {
                    // Cross-shard edges live outside every shard state; the
                    // update lands on the universe weights directly and is
                    // picked up by the next rescue solve.
                    let ServiceEvent::BenefitUpdate { edge, weight } = a.event else {
                        unreachable!("only benefit updates route as CrossBenefit");
                    };
                    if journaling {
                        deltas.push(WeightDelta { edge, weight });
                    }
                    let old = self.live_weights[edge as usize];
                    self.live_weights[edge as usize] = weight;
                    self.cut.update(true, old, weight);
                    self.events_processed += 1;
                }
                _ => {}
            }
        }

        // Pass 3: re-solve each touched shard's active sub-market via the
        // worker pool. The batch budget is *shared*: one absolute deadline
        // for every shard solve (see the module docs' budget policy), so
        // sequential runs carry unused budget forward and concurrent runs
        // race the same instant.
        let batch_deadline = match self.budget {
            BudgetMode::Wallclock(ms) => Some(Deadline::after_ms(ms)),
            BudgetMode::Deterministic => None,
        };
        let solve_start = Instant::now();
        // Jobs are built in ascending shard order; with `threads = 1` the
        // pool runs them inline in exactly this order (the sequential
        // dispatch path), otherwise it reorders largest-first internally
        // but still merges results back in shard order.
        let mut jobs: Vec<ShardJob<'_>> = Vec::with_capacity(touched.len());
        for &s in &touched {
            let g = &self.plan.shards[s].sub.graph;
            if g.n_edges() == 0 || g.n_workers() == 0 || g.n_tasks() == 0 {
                continue;
            }
            let mut cfg = EngineConfig::new();
            if let Some(d) = batch_deadline {
                cfg = cfg.with_deadline_at(d);
            }
            if self.poisoned[s] {
                let token = CancelToken::new();
                token.cancel();
                cfg = cfg.with_cancel(token);
            }
            jobs.push(ShardJob {
                shard: s,
                graph: g,
                weights: self.states[s].active_weights(),
                config: cfg,
                est_size: g.n_edges(),
            });
        }
        let solved = self.pool.solve(jobs);
        self.steals += solved.steals;

        // Merge: outcomes arrive sorted by shard index, so adoption order
        // (and therefore the decision stream) is independent of which
        // worker thread finished first.
        let mut degraded_shards = 0usize;
        let mut worst_tier: Option<QualityTier> = None;
        for outcome in solved.outcomes {
            let s = outcome.shard;
            match outcome.result {
                Ok(sol) => {
                    self.solves += 1;
                    self.tier_tally[sol.tier as usize] += 1;
                    if sol.tier == QualityTier::Degraded {
                        self.degraded_by_shard[s] += 1;
                        degraded_shards += 1;
                    }
                    worst_tier = Some(worst_tier.map_or(sol.tier, |t| t.min(sol.tier)));
                    if sol.value > self.states[s].total_weight() + 1e-12 {
                        // The engine solved the active sub-market (inactive
                        // edges weigh 0 and are never taken), so the
                        // matching touches only active nodes and reseed
                        // cannot reject it.
                        self.states[s]
                            .reseed(&sol.matching)
                            .expect("engine solution is feasible on the active sub-market");
                        self.reseeds += 1;
                        mbta_telemetry::counter_add("mbta_service_reseeds_total", 1);
                    }
                }
                Err(_) => {
                    // Input errors cannot occur here (admission rejects bad
                    // weights, degenerate shards are skipped above); if one
                    // does, the shard simply keeps its repaired state.
                    debug_assert!(false, "unexpected engine input error");
                }
            }
            // The labeled name allocates, so gate on the runtime switch.
            if mbta_telemetry::enabled() {
                mbta_telemetry::observe(
                    &format!("mbta_service_shard_solve_ms{{shard=\"{s}\"}}"),
                    outcome.solve_ms,
                );
            }
        }
        let solve_ms = solve_start.elapsed().as_secs_f64() * 1e3;
        self.solve_lat.observe(solve_ms);
        mbta_telemetry::observe("mbta_service_batch_solve_ms", solve_ms);

        // Pass 3b: boundary rescue — re-derive the cross-shard overlay
        // from this batch's residual capacities. Budget policy: a fixed
        // quarter-slice of the batch budget (the rescue market is tiny
        // relative to the shard solves and must not starve them), none in
        // deterministic mode.
        let mut rescue_decisions = if self.boundary_pass {
            let rescue_deadline = match self.budget {
                BudgetMode::Wallclock(ms) => Some(Deadline::after_ms(ms / 4 + 1)),
                BudgetMode::Deterministic => None,
            };
            self.boundary_rescue(rescue_deadline)
        } else {
            Vec::new()
        };

        // Pass 4: emit assignment deltas (per-shard before/after diff).
        let mut decisions: Vec<Decision> = Vec::new();
        for (&s, pre) in touched.iter().zip(&before) {
            let post = self.states[s].matching();
            let slice = &self.plan.shards[s];
            let mut removed = Vec::new();
            let mut added = Vec::new();
            diff_sorted(
                &pre.edges,
                &post.edges,
                |e| removed.push(e),
                |e| added.push(e),
            );
            for (local, action) in removed
                .into_iter()
                .map(|e| (e, Action::Unassign))
                .chain(added.into_iter().map(|e| (e, Action::Assign)))
            {
                let parent = slice.sub.edge_back[local.index()];
                decisions.push(Decision {
                    shard: s as u32,
                    edge: parent.raw(),
                    action,
                    worker: self.universe.worker_of(parent).raw(),
                    task: self.universe.task_of(parent).raw(),
                    weight: self.live_weights[parent.index()],
                });
            }
        }
        decisions.append(&mut rescue_decisions);
        canonical_order(&mut decisions);
        self.decisions_out += decisions.len() as u64;
        mbta_telemetry::counter_add("mbta_service_decisions_total", decisions.len() as u64);

        let stats = BatchStats {
            seq: self.seq,
            reason,
            events: batch.events.len(),
            queue_depth: self.queue.len(),
            shards_touched: touched.len(),
            degraded_shards,
            worst_tier,
            solve_ms,
            invalid_events: invalid,
        };
        self.seq += 1;
        // Write-ahead ordering: the batch is durable before any decision
        // is released to the outside world.
        if journaling {
            let rec = BatchRecord {
                seq: stats.seq,
                first_time: batch.events.first().map_or(0.0, |a| a.time),
                last_time: batch.events.last().map_or(0.0, |a| a.time),
                events: batch.events.len() as u32,
                deltas,
                decisions: to_records(&decisions),
            };
            self.journal(rec);
        }
        sink.on_batch(&stats, &decisions);
    }

    /// Re-derives the cross-shard rescue overlay from this batch's
    /// residual capacities and returns the overlay's assignment deltas
    /// (pseudo-shard `n_shards` in the decision stream).
    ///
    /// The overlay is *recomputed from scratch* every batch: residual
    /// capacity is whatever the intra-shard solves left unused, so a shard
    /// reclaiming capacity automatically evicts overlay edges (emitted as
    /// unassigns by the diff). Feasibility of the union (shards + overlay)
    /// holds because the rescue instance's capacities *are* the residuals;
    /// [`validate_rescue`] re-checks and counts violations anyway.
    ///
    /// Determinism: candidates ascend by edge id, the node lists ascend by
    /// node id, and the single rescue solve runs inline — so under
    /// [`BudgetMode::Deterministic`] the overlay is a pure function of the
    /// event history at any thread count.
    fn boundary_rescue(&mut self, rescue_deadline: Option<Deadline>) -> Vec<Decision> {
        let plan = self.plan;
        let universe = self.universe;

        // Residuals: universe capacity/demand minus the intra-shard load.
        let mut w_res: Vec<u32> = universe.workers().map(|w| universe.capacity(w)).collect();
        let mut t_res: Vec<u32> = universe.tasks().map(|t| universe.demand(t)).collect();
        for (slice, st) in plan.shards.iter().zip(&self.states) {
            for e in st.matching().edges {
                let parent = slice.sub.edge_back[e.index()];
                w_res[universe.worker_of(parent).index()] -= 1;
                t_res[universe.task_of(parent).index()] -= 1;
            }
        }

        let is_cross = |e: EdgeId| plan.edge_shard[e.index()] == UNMAPPED;
        let states = &self.states;
        let worker_ok = |w: WorkerId| {
            states[plan.worker_shard[w.index()] as usize]
                .worker_active(WorkerId::new(plan.worker_local[w.index()]))
        };
        let task_ok = |t: TaskId| {
            states[plan.task_shard[t.index()] as usize]
                .task_active(TaskId::new(plan.task_local[t.index()]))
        };
        // A cross edge is "seen" by the rescue market once both endpoints
        // are concurrently live — even with zero residual. Exhausted
        // residual means the capacity went to intra-shard assignments,
        // which is contention, not partition loss; `effective_retained`
        // must charge the partition only for weight it made unreachable.
        for e in universe.edges() {
            if !self.cross_seen[e.index()]
                && is_cross(e)
                && worker_ok(universe.worker_of(e))
                && task_ok(universe.task_of(e))
            {
                self.cross_seen[e.index()] = true;
            }
        }
        let spec = residual_candidates(
            universe,
            &self.live_weights,
            is_cross,
            worker_ok,
            task_ok,
            &w_res,
            &t_res,
        );

        // An empty spec still evicts a stale overlay: no candidate means
        // no previously-rescued edge kept its residuals either.
        let mut new_overlay: Vec<EdgeId> = if spec.is_empty() {
            Vec::new()
        } else {
            let mut cand = vec![false; universe.n_edges()];
            for &e in &spec.candidates {
                cand[e.index()] = true;
            }
            let sub = induce(
                universe,
                &SubgraphSpec {
                    workers: &spec.workers,
                    tasks: &spec.tasks,
                },
                |e| cand[e.index()],
            );
            let weights = sub.project_weights(&self.live_weights);
            let mut cfg = EngineConfig::new();
            if let Some(d) = rescue_deadline {
                cfg = cfg.with_deadline_at(d);
            }
            let est = sub.graph.n_edges();
            let outcome = self.pool.solve_one(ShardJob {
                shard: plan.n_shards(),
                graph: &sub.graph,
                weights,
                config: cfg,
                est_size: est,
            });
            self.rescue_solves += 1;
            mbta_telemetry::counter_add("mbta_partition_rescue_solves_total", 1);
            match outcome.result {
                Ok(sol) => sol
                    .matching
                    .edges
                    .into_iter()
                    .map(|e| sub.edge_back[e.index()])
                    .collect(),
                Err(_) => {
                    debug_assert!(false, "unexpected engine input error in rescue");
                    Vec::new()
                }
            }
        };
        new_overlay.sort_unstable();
        self.rescue_violations +=
            validate_rescue(universe, is_cross, &w_res, &t_res, &new_overlay) as u64;

        let rescue_shard = plan.n_shards() as u32;
        let mut removed = Vec::new();
        let mut added = Vec::new();
        diff_sorted(
            &self.overlay,
            &new_overlay,
            |e| removed.push(e),
            |e| added.push(e),
        );
        self.rescue_assigns += added.len() as u64;
        let decisions: Vec<Decision> = removed
            .into_iter()
            .map(|e| (e, Action::Unassign))
            .chain(added.into_iter().map(|e| (e, Action::Assign)))
            .map(|(e, action)| Decision {
                shard: rescue_shard,
                edge: e.raw(),
                action,
                worker: universe.worker_of(e).raw(),
                task: universe.task_of(e).raw(),
                weight: self.live_weights[e.index()],
            })
            .collect();

        let rescued: f64 = new_overlay
            .iter()
            .map(|e| self.live_weights[e.index()])
            .sum();
        mbta_telemetry::gauge_set("mbta_partition_rescued_weight", rescued);
        self.overlay = new_overlay;
        decisions
    }

    /// Flushes all remaining work, reconciles cross-shard state, and
    /// returns the run report.
    pub fn finish(mut self, sink: &mut impl DecisionSink) -> ServiceReport {
        self.pump(sink);
        if let Some(closed) = self.batcher.drain() {
            self.dispatch(closed, sink);
        }
        self.drain_online(sink);

        // Clean shutdown of the durability store: fsync the WAL and write
        // a final snapshot so recovery replays nothing.
        let mut store_stats = mbta_store::store::StoreStats::default();
        if let Some(mut store) = self.store.take() {
            if self.store_error.is_none() {
                let snap = self.snapshot_state(self.seq);
                if let Err(e) = store.seal(&snap) {
                    mbta_telemetry::counter_add("mbta_store_errors_total", 1);
                    self.store_error = Some(e);
                }
            }
            store_stats = store.stats();
        }

        // Cross-shard reconciliation: the union of per-shard assignments
        // (plus the rescue overlay), mapped back to universe ids, must be
        // feasible on the universe graph. Shards are node-disjoint and the
        // rescue market's capacities are the shard residuals, so this
        // holds by construction; re-validate anyway and count violations
        // per node.
        let mut union: Vec<EdgeId> = self
            .plan
            .shards
            .iter()
            .zip(&self.states)
            .flat_map(|(slice, st)| {
                st.matching()
                    .edges
                    .into_iter()
                    .map(|e| slice.sub.edge_back[e.index()])
                    .collect::<Vec<_>>()
            })
            .collect();
        union.extend(self.overlay.iter().copied());
        let mut chosen = vec![false; self.universe.n_edges()];
        let mut w_load = vec![0u32; self.universe.n_workers()];
        let mut t_load = vec![0u32; self.universe.n_tasks()];
        let mut violations = 0usize;
        for &e in &union {
            if chosen[e.index()] {
                violations += 1;
            }
            chosen[e.index()] = true;
            w_load[self.universe.worker_of(e).index()] += 1;
            t_load[self.universe.task_of(e).index()] += 1;
        }
        for w in self.universe.workers() {
            if w_load[w.index()] > self.universe.capacity(w) {
                violations += 1;
            }
        }
        for t in self.universe.tasks() {
            if t_load[t.index()] > self.universe.demand(t) {
                violations += 1;
            }
        }

        // In-shard solve violations cannot occur, but a broken rescue
        // overlay would: fold the per-batch rescue validations in.
        violations += self.rescue_violations as usize;

        // `+ 0.0` normalizes the empty sum's -0.0 (cosmetic in reports).
        let rescued_weight: f64 = self
            .overlay
            .iter()
            .map(|e| self.live_weights[e.index()])
            .sum::<f64>()
            + 0.0;
        let final_value: f64 =
            self.states.iter().map(|s| s.total_weight()).sum::<f64>() + rescued_weight;
        let final_assignments: usize =
            self.states.iter().map(|s| s.len()).sum::<usize>() + self.overlay.len();

        // Retained weight from the *live* weights, not the plan-time ones
        // — benefit drift moves weight across the cut after planning, and
        // the report must say what the sharding costs now. The effective
        // figure also credits cross edges the rescue market was offered
        // (they are assignable, just second-stage).
        let (mut intra_live, mut seen_live, mut total_live) = (0.0f64, 0.0f64, 0.0f64);
        for e in self.universe.edges() {
            let w = self.live_weights[e.index()];
            total_live += w;
            if self.plan.edge_shard[e.index()] != UNMAPPED {
                intra_live += w;
            } else if self.cross_seen[e.index()] {
                seen_live += w;
            }
        }
        let frac = |x: f64| {
            if total_live > 0.0 {
                x / total_live
            } else {
                1.0
            }
        };

        let wall_ms = self.started.elapsed().as_secs_f64() * 1e3;
        let lat = self.solve_lat;
        let (online_events, online_fallbacks, online_exchanges) = self
            .online
            .as_ref()
            .map_or((0, 0, 0), |rt| (rt.events, rt.fallbacks, rt.exchanges));
        let (warm_solves, warm_hits) = self.online.as_ref().map_or((0, 0), |rt| {
            let w = rt.warm_totals();
            (w.solves, w.warm_hits)
        });
        let (p50_online_ms, p99_online_ms, max_online_ms) =
            self.online.as_ref().map_or((0.0, 0.0, 0.0), |rt| {
                (rt.lat.quantile(0.5), rt.lat.quantile(0.99), rt.lat.max())
            });
        ServiceReport {
            n_shards: self.plan.n_shards(),
            cross_edges: self.plan.cross_edges,
            retained_weight: frac(intra_live),
            effective_retained: frac(intra_live + seen_live),
            rescued_weight,
            rescue_solves: self.rescue_solves,
            rescue_assigns: self.rescue_assigns,
            replans: self.replans,
            migrated_workers: self.migrated_workers,
            migrated_tasks: self.migrated_tasks,
            events_in: self.events_in,
            events_processed: self.events_processed,
            dropped_newest: self.queue.dropped_newest(),
            dropped_oldest: self.queue.dropped_oldest(),
            deferrals: self.queue.deferrals(),
            defer_retry_ok: self.defer_retry_ok,
            invalid_events: self.invalid_events,
            cross_benefit_drops: self.cross_benefit_drops,
            foreign_events: self.foreign_events,
            queue_high_watermark: self.queue.high_watermark(),
            batches: self.seq,
            flush_count: self.flush_tally[0],
            flush_bytes: self.flush_tally[1],
            flush_watermark: self.flush_tally[2],
            flush_drain: self.flush_tally[3],
            flush_online: self.flush_tally[4],
            online_events,
            online_fallbacks,
            online_exchanges,
            online_warm_solves: warm_solves,
            online_warm_hits: warm_hits,
            p50_online_ms,
            p99_online_ms,
            max_online_ms,
            solves: self.solves,
            tier_exact: self.tier_tally[QualityTier::Exact as usize],
            tier_approximate: self.tier_tally[QualityTier::Approximate as usize],
            tier_degraded: self.tier_tally[QualityTier::Degraded as usize],
            degraded_by_shard: self.degraded_by_shard,
            reseeds: self.reseeds,
            decisions: self.decisions_out,
            p50_solve_ms: lat.quantile(0.5),
            p99_solve_ms: lat.quantile(0.99),
            max_solve_ms: lat.max(),
            wall_ms,
            events_per_sec: if wall_ms > 0.0 {
                self.events_processed as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            final_value,
            final_assignments,
            capacity_violations: violations,
            pool_threads: self.pool.threads(),
            steals: self.steals,
            wal_records: store_stats.wal_records,
            wal_bytes: store_stats.wal_bytes,
            snapshots: store_stats.snapshots,
            store_error: self.store_error.map(|e| e.to_string()),
        }
    }

    /// Whether drift-driven re-planning is armed and the live cut
    /// fraction has degraded past the configured threshold. Cheap (two
    /// float reads); the driver polls it at batch boundaries.
    pub fn replan_due(&self) -> bool {
        self.replan_threshold
            .is_some_and(|t| self.cut.degradation() > t)
    }

    /// Tears the service down to exactly the state a successor needs to
    /// continue the run under a **new** shard plan: live weights, node
    /// liveness, the assigned-edge union, the old node→shard maps (for
    /// migration accounting), the ingress queue and batcher (queued
    /// events carry over untouched), the durability store, and every
    /// report counter. Pair with [`DispatchService::resume`]:
    ///
    /// ```text
    /// let carried = svc.detach();
    /// let plan2 = ShardPlan::build(&g, carried.live_weights(), k, routing);
    /// let mut svc = DispatchService::resume(&g, &plan2, carried, &mut sink);
    /// ```
    pub fn detach(self) -> CarriedState {
        let mut active_workers = vec![false; self.universe.n_workers()];
        for w in self.universe.workers() {
            let s = self.plan.worker_shard[w.index()] as usize;
            active_workers[w.index()] =
                self.states[s].worker_active(WorkerId::new(self.plan.worker_local[w.index()]));
        }
        let mut active_tasks = vec![false; self.universe.n_tasks()];
        for t in self.universe.tasks() {
            let s = self.plan.task_shard[t.index()] as usize;
            active_tasks[t.index()] =
                self.states[s].task_active(TaskId::new(self.plan.task_local[t.index()]));
        }
        let mut assigned: Vec<(EdgeId, u32)> = self
            .plan
            .shards
            .iter()
            .zip(&self.states)
            .enumerate()
            .flat_map(|(s, (slice, st))| {
                st.matching()
                    .edges
                    .into_iter()
                    .map(move |e| (slice.sub.edge_back[e.index()], s as u32))
                    .collect::<Vec<_>>()
            })
            .collect();
        let rescue_shard = self.plan.n_shards() as u32;
        assigned.extend(self.overlay.iter().map(|&e| (e, rescue_shard)));
        assigned.sort_unstable_by_key(|&(e, _)| e);
        CarriedState {
            live_weights: self.live_weights,
            active_workers,
            active_tasks,
            assigned,
            old_worker_shard: self.plan.worker_shard.clone(),
            old_task_shard: self.plan.task_shard.clone(),
            budget: self.budget,
            pool: self.pool,
            queue: self.queue,
            batcher: self.batcher,
            poisoned: self.poisoned,
            store: self.store,
            store_error: self.store_error,
            boundary_pass: self.boundary_pass,
            cross_seen: self.cross_seen,
            replan_threshold: self.replan_threshold,
            online: self.online.map(OnlineRuntime::detach),
            owned_shard: self.owned_shard,
            seq: self.seq,
            events_in: self.events_in,
            events_processed: self.events_processed,
            invalid_events: self.invalid_events,
            cross_benefit_drops: self.cross_benefit_drops,
            foreign_events: self.foreign_events,
            flush_tally: self.flush_tally,
            solves: self.solves,
            tier_tally: self.tier_tally,
            degraded_by_shard: self.degraded_by_shard,
            decisions_out: self.decisions_out,
            steals: self.steals,
            rescue_solves: self.rescue_solves,
            rescue_assigns: self.rescue_assigns,
            rescue_violations: self.rescue_violations,
            replans: self.replans,
            migrated_workers: self.migrated_workers,
            migrated_tasks: self.migrated_tasks,
            defer_pending: self.defer_pending,
            defer_retry_ok: self.defer_retry_ok,
            reseeds: self.reseeds,
            solve_lat: self.solve_lat,
            last_time: self.last_time,
            started: self.started,
        }
    }

    /// Rebuilds a service over a **new** plan from carried state — the
    /// migration half of drift-driven re-planning, applied at a batch
    /// boundary:
    ///
    /// * shard states are reseeded with the still-intra part of the
    ///   carried assignment (feasible by restriction: the carried union
    ///   was feasible on the universe and shard capacities are the
    ///   universe capacities);
    /// * carried assignments that became cross-shard move to the rescue
    ///   overlay when the boundary pass is on, otherwise they are
    ///   unassigned (decisions emitted under their old shard id);
    /// * a [`PlanRecord`] is journaled *before* those decisions reach the
    ///   sink, carrying the full post-migration shard sets, so
    ///   `mbta_store::recover` and WAL followers replay the exact same
    ///   migration at the exact same sequence slot;
    /// * drift tracking restarts from the new plan's baseline, and the
    ///   migration counters land in the final report.
    pub fn resume(
        universe: &'p BipartiteGraph,
        plan: &'p ShardPlan,
        carried: CarriedState,
        sink: &mut impl DecisionSink,
    ) -> DispatchService<'p> {
        let n = plan.n_shards();
        let (mut states, live_weights, cut) =
            seed_plan_state(universe, plan, Some(carried.live_weights));
        for w in universe.workers() {
            if carried.active_workers[w.index()] {
                states[plan.worker_shard[w.index()] as usize]
                    .activate_worker(WorkerId::new(plan.worker_local[w.index()]));
            }
        }
        for t in universe.tasks() {
            if carried.active_tasks[t.index()] {
                states[plan.task_shard[t.index()] as usize]
                    .activate_task(TaskId::new(plan.task_local[t.index()]));
            }
        }

        // Split the carried assignment under the new plan. `assigned` is
        // sorted by universe edge id, so every per-shard list (and the
        // overlay) comes out sorted too.
        let mut per_shard_local: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        let mut shard_sets: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut overlay: Vec<EdgeId> = Vec::new();
        let mut dropped: Vec<(EdgeId, u32)> = Vec::new();
        for &(e, old_shard) in &carried.assigned {
            let s = plan.edge_shard[e.index()];
            if s == UNMAPPED {
                if carried.boundary_pass {
                    overlay.push(e);
                } else {
                    dropped.push((e, old_shard));
                }
            } else {
                per_shard_local[s as usize].push(EdgeId::new(plan.edge_local[e.index()]));
                shard_sets[s as usize].push(e.raw());
            }
        }
        for (s, mut edges) in per_shard_local.into_iter().enumerate() {
            if edges.is_empty() {
                continue;
            }
            edges.sort_unstable();
            states[s]
                .reseed(&Matching { edges })
                .expect("carried assignment stays feasible restricted to its new shard");
        }

        // Online mode: re-arm the flip logs only after the migration
        // reseeds (the migration is journaled as a plan record, not as
        // per-event decisions) and rebuild the warm/drift state for the
        // new topology, keeping the carried run counters.
        let online = carried.online.map(|c| {
            for st in &mut states {
                st.enable_log();
            }
            OnlineRuntime::resume(c, plan)
        });

        let moved = migration_diff(
            &carried.old_worker_shard,
            &plan.worker_shard,
            &carried.old_task_shard,
            &plan.task_shard,
        );
        let mut rec_shards = shard_sets;
        if carried.boundary_pass {
            rec_shards.push(overlay.iter().map(|e| e.raw()).collect());
        }
        let rec = PlanRecord {
            seq: carried.seq,
            retained_weight: plan.retained_weight,
            moved_workers: moved.moved_workers,
            moved_tasks: moved.moved_tasks,
            shards: rec_shards,
        };

        let mut svc = DispatchService {
            universe,
            plan,
            budget: carried.budget,
            pool: carried.pool,
            states,
            queue: carried.queue,
            batcher: carried.batcher,
            poisoned: if carried.poisoned.len() == n {
                carried.poisoned
            } else {
                vec![false; n]
            },
            live_weights,
            store: carried.store,
            store_error: carried.store_error,
            boundary_pass: carried.boundary_pass,
            overlay,
            cross_seen: carried.cross_seen,
            cut,
            replan_threshold: carried.replan_threshold,
            online,
            owned_shard: carried.owned_shard,
            seq: carried.seq + 1,
            events_in: carried.events_in,
            events_processed: carried.events_processed,
            invalid_events: carried.invalid_events,
            cross_benefit_drops: carried.cross_benefit_drops,
            foreign_events: carried.foreign_events,
            flush_tally: carried.flush_tally,
            solves: carried.solves,
            tier_tally: carried.tier_tally,
            degraded_by_shard: if carried.degraded_by_shard.len() == n {
                carried.degraded_by_shard
            } else {
                vec![0; n]
            },
            decisions_out: carried.decisions_out,
            steals: carried.steals,
            rescue_solves: carried.rescue_solves,
            rescue_assigns: carried.rescue_assigns,
            rescue_violations: carried.rescue_violations,
            replans: carried.replans + 1,
            migrated_workers: carried.migrated_workers + moved.moved_workers as u64,
            migrated_tasks: carried.migrated_tasks + moved.moved_tasks as u64,
            defer_pending: carried.defer_pending,
            defer_retry_ok: carried.defer_retry_ok,
            reseeds: carried.reseeds,
            solve_lat: carried.solve_lat,
            last_time: carried.last_time,
            started: carried.started,
        };
        mbta_telemetry::counter_add("mbta_partition_replans_total", 1);
        mbta_telemetry::gauge_set(
            "mbta_partition_migrated_nodes",
            (moved.moved_workers + moved.moved_tasks) as f64,
        );

        // Write-ahead ordering, same as batches: the plan frame is
        // durable before any migration decision is released.
        if let Some(mut store) = svc.store.take() {
            if svc.store_error.is_none() {
                let mut res = store.commit_plan(&rec);
                if res.is_ok() && store.snapshot_due() {
                    let snap = svc.snapshot_state(rec.seq + 1);
                    res = store.snapshot(&snap);
                }
                if let Err(e) = res {
                    mbta_telemetry::counter_add("mbta_store_errors_total", 1);
                    svc.store_error = Some(e);
                }
            }
            svc.store = Some(store);
        }

        if !dropped.is_empty() {
            let mut decisions: Vec<Decision> = dropped
                .into_iter()
                .map(|(e, old_shard)| Decision {
                    shard: old_shard,
                    edge: e.raw(),
                    action: Action::Unassign,
                    worker: universe.worker_of(e).raw(),
                    task: universe.task_of(e).raw(),
                    weight: svc.live_weights[e.index()],
                })
                .collect();
            canonical_order(&mut decisions);
            svc.decisions_out += decisions.len() as u64;
            let stats = BatchStats {
                seq: rec.seq,
                reason: FlushReason::Drain,
                events: 0,
                queue_depth: svc.queue.len(),
                shards_touched: 0,
                degraded_shards: 0,
                worst_tier: None,
                solve_ms: 0.0,
                invalid_events: 0,
            };
            sink.on_batch(&stats, &decisions);
        }
        svc
    }
}

/// Opaque state produced by [`DispatchService::detach`] and consumed by
/// [`DispatchService::resume`]: everything a successor service needs to
/// continue a run under a new shard plan. Owns no borrow of the old plan,
/// so the driver is free to drop and rebuild the plan in between.
pub struct CarriedState {
    live_weights: Vec<f64>,
    active_workers: Vec<bool>,
    active_tasks: Vec<bool>,
    /// Sorted by edge id: every assigned universe edge plus the shard it
    /// was assigned under (the rescue overlay as pseudo-shard `n_shards`).
    assigned: Vec<(EdgeId, u32)>,
    old_worker_shard: Vec<u32>,
    old_task_shard: Vec<u32>,
    budget: BudgetMode,
    pool: SolvePool,
    queue: BoundedQueue,
    batcher: Batcher,
    poisoned: Vec<bool>,
    store: Option<DurableStore>,
    store_error: Option<std::io::Error>,
    boundary_pass: bool,
    cross_seen: Vec<bool>,
    replan_threshold: Option<f64>,
    online: Option<crate::online::OnlineCarried>,
    owned_shard: Option<usize>,
    seq: u64,
    events_in: u64,
    events_processed: u64,
    invalid_events: u64,
    cross_benefit_drops: u64,
    foreign_events: u64,
    flush_tally: [u64; 5],
    solves: u64,
    tier_tally: [u64; 3],
    degraded_by_shard: Vec<u64>,
    decisions_out: u64,
    steals: u64,
    rescue_solves: u64,
    rescue_assigns: u64,
    rescue_violations: u64,
    replans: u64,
    migrated_workers: u64,
    migrated_tasks: u64,
    defer_pending: bool,
    defer_retry_ok: u64,
    reseeds: u64,
    solve_lat: mbta_telemetry::Histogram,
    last_time: f64,
    started: Instant,
}

impl CarriedState {
    /// The live universe edge weights at detach time — what the driver
    /// passes to [`ShardPlan::build`] for the replacement plan.
    pub fn live_weights(&self) -> &[f64] {
        &self.live_weights
    }
}

/// Builds per-shard incremental states (empty matchings, every node
/// inactive) plus the universe live-weight vector for `plan`. With
/// `carry_weights` (resume after a re-plan) the live weights come from
/// the previous service instance and override the slice weights edge by
/// edge; otherwise they seed from the plan's own weights — cross-shard
/// edges included, so benefit drift on unassignable edges is tracked from
/// the correct baseline. Also returns a fresh [`CutTracker`]
/// over the resulting weights.
#[allow(clippy::type_complexity)]
fn seed_plan_state<'p>(
    universe: &'p BipartiteGraph,
    plan: &'p ShardPlan,
    carry_weights: Option<Vec<f64>>,
) -> (Vec<IncrementalAssignment<'p>>, Vec<f64>, CutTracker) {
    let live_weights = match carry_weights {
        Some(w) => {
            assert_eq!(w.len(), universe.n_edges(), "carried weights mismatch");
            w
        }
        None => plan.universe_weights.clone(),
    };
    let mut states = Vec::with_capacity(plan.n_shards());
    for slice in &plan.shards {
        let mut weights = slice.weights.clone();
        for (local, &parent) in slice.sub.edge_back.iter().enumerate() {
            weights[local] = live_weights[parent.index()];
        }
        let mut st =
            IncrementalAssignment::from_matching(&slice.sub.graph, weights, &Matching::empty())
                .expect("empty seed is always feasible");
        for w in slice.sub.graph.workers() {
            st.deactivate_worker(w);
        }
        for t in slice.sub.graph.tasks() {
            st.deactivate_task(t);
        }
        states.push(st);
    }
    let (mut intra, mut cross) = (0.0f64, 0.0f64);
    for e in universe.edges() {
        if plan.edge_shard[e.index()] == UNMAPPED {
            cross += live_weights[e.index()];
        } else {
            intra += live_weights[e.index()];
        }
    }
    (states, live_weights, CutTracker::new(intra, cross))
}

/// Maps emitted decisions to their WAL form, preserving order.
fn to_records(decisions: &[Decision]) -> Vec<DecisionRecord> {
    decisions
        .iter()
        .map(|d| DecisionRecord {
            shard: d.shard,
            edge: d.edge,
            assign: matches!(d.action, Action::Assign),
            worker: d.worker,
            task: d.task,
            weight: d.weight,
        })
        .collect()
}

/// Two-pointer diff of sorted edge lists: `removed` for entries only in
/// `before`, `added` for entries only in `after`.
fn diff_sorted(
    before: &[EdgeId],
    after: &[EdgeId],
    mut removed: impl FnMut(EdgeId),
    mut added: impl FnMut(EdgeId),
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < before.len() && j < after.len() {
        match before[i].cmp(&after[j]) {
            std::cmp::Ordering::Less => {
                removed(before[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added(after[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    while i < before.len() {
        removed(before[i]);
        i += 1;
    }
    while j < after.len() {
        added(after[j]);
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BenefitDrift;
    use crate::queue::DropPolicy;
    use crate::shard::Routing;
    use crate::sink::{CollectSink, WriteSink};
    use mbta_graph::random::{random_bipartite, RandomGraphSpec};
    use mbta_workload::trace::TraceSpec;

    fn universe() -> (BipartiteGraph, Vec<f64>) {
        let g = random_bipartite(
            &RandomGraphSpec {
                n_workers: 80,
                n_tasks: 60,
                avg_degree: 5.0,
                capacity: 2,
                demand: 2,
            },
            21,
        );
        let w: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
        (g, w)
    }

    fn stream(g: &BipartiteGraph, seed: u64) -> Vec<Arrival> {
        let trace = TraceSpec {
            horizon: 50.0,
            mean_session: 10.0,
            mean_task_lifetime: 15.0,
            seed,
        }
        .generate(g.n_workers(), g.n_tasks());
        let base = trace.into_iter().map(Arrival::from_trace);
        BenefitDrift::new(g, 0.2, seed).weave(base)
    }

    fn deterministic_cfg() -> ServiceConfig {
        ServiceConfig {
            batch: BatchConfig {
                max_events: 32,
                max_bytes: 1 << 20,
                flush_interval: 4.0,
            },
            queue_cap: 4096,
            drop_policy: DropPolicy::Defer,
            budget: BudgetMode::Deterministic,
            threads: 1,
            boundary_pass: false,
            replan_threshold: None,
            online: None,
            owned_shard: None,
        }
    }

    fn run_to_log(
        g: &BipartiteGraph,
        plan: &ShardPlan,
        events: &[Arrival],
        poison: Option<usize>,
    ) -> (Vec<u8>, ServiceReport) {
        let mut svc = DispatchService::new(g, plan, deterministic_cfg());
        if let Some(s) = poison {
            svc.poison_shard(s);
        }
        let mut sink = WriteSink::new(Vec::new());
        for &a in events {
            while let OfferOutcome::Deferred = svc.offer(a) {
                svc.pump(&mut sink);
            }
            svc.pump(&mut sink);
        }
        let report = svc.finish(&mut sink);
        assert!(sink.error.is_none());
        (sink.into_inner(), report)
    }

    #[test]
    fn replay_is_byte_identical() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 4, Routing::HashId);
        let events = stream(&g, 7);
        let (log_a, rep_a) = run_to_log(&g, &plan, &events, None);
        let (log_b, rep_b) = run_to_log(&g, &plan, &events, None);
        assert!(!log_a.is_empty(), "replay produced no decisions");
        assert_eq!(log_a, log_b, "decision logs diverged across replays");
        assert_eq!(rep_a.decisions, rep_b.decisions);
        assert_eq!(rep_a.batches, rep_b.batches);
        assert_eq!(rep_a.reseeds, rep_b.reseeds);
        assert_eq!(rep_a.final_assignments, rep_b.final_assignments);
    }

    /// Single-shard ownership composes: feeding the *full* stream to one
    /// owned service per shard yields exactly the full run's decisions,
    /// partitioned by shard, with everything else counted as foreign.
    #[test]
    fn owned_shard_runs_partition_the_full_run() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 3, Routing::HashId);
        let events = stream(&g, 29);

        let run = |owned: Option<usize>| {
            let mut cfg = deterministic_cfg();
            cfg.owned_shard = owned;
            let mut svc = DispatchService::new(&g, &plan, cfg);
            let mut sink = CollectSink::default();
            for &a in &events {
                while let OfferOutcome::Deferred = svc.offer(a) {
                    svc.pump(&mut sink);
                }
                svc.pump(&mut sink);
            }
            let report = svc.finish(&mut sink);
            (sink.decisions, report)
        };

        let (full, full_rep) = run(None);
        assert!(!full.is_empty());
        let mut union: Vec<Decision> = Vec::new();
        let mut processed = 0u64;
        for s in 0..plan.n_shards() {
            let (dec, rep) = run(Some(s));
            assert!(
                dec.iter().all(|d| d.shard == s as u32),
                "owned run emitted a decision for a shard it does not own"
            );
            assert_eq!(rep.capacity_violations, 0);
            // Conservation: every ingress event is processed, invalid,
            // cross-shard, or foreign — nothing vanishes silently.
            assert_eq!(
                rep.events_in,
                rep.events_processed
                    + rep.invalid_events
                    + rep.cross_benefit_drops
                    + rep.foreign_events
            );
            assert!(rep.foreign_events > 0, "3 shards must see foreign events");
            processed += rep.events_processed;
            union.extend(dec);
        }
        assert_eq!(processed, full_rep.events_processed);
        // Same decisions, shard by shard, in the full run's order.
        let key = |d: &Decision| (d.shard, d.edge, d.action as u8, d.weight.to_bits());
        let mut full_sorted: Vec<_> = full.iter().map(key).collect();
        let mut union_sorted: Vec<_> = union.iter().map(key).collect();
        full_sorted.sort_unstable();
        union_sorted.sort_unstable();
        assert_eq!(full_sorted, union_sorted);
        assert_eq!(full_rep.foreign_events, 0, "full run owns every shard");
    }

    /// The pool's determinism contract at the service level: a 4-thread
    /// replay produces the same decision bytes as the sequential path.
    #[test]
    fn threaded_replay_matches_sequential() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 4, Routing::HashId);
        let events = stream(&g, 17);
        let run_with = |threads: usize| {
            let mut cfg = deterministic_cfg();
            cfg.threads = threads;
            let mut svc = DispatchService::new(&g, &plan, cfg);
            let mut sink = WriteSink::new(Vec::new());
            for &a in &events {
                while let OfferOutcome::Deferred = svc.offer(a) {
                    svc.pump(&mut sink);
                }
                svc.pump(&mut sink);
            }
            let report = svc.finish(&mut sink);
            (sink.into_inner(), report)
        };
        let (log_1, rep_1) = run_with(1);
        let (log_4, rep_4) = run_with(4);
        assert!(!log_1.is_empty());
        assert_eq!(log_1, log_4, "threaded replay diverged from sequential");
        assert_eq!(rep_1.final_value, rep_4.final_value);
        assert_eq!(rep_1.reseeds, rep_4.reseeds);
        assert_eq!(rep_1.capacity_violations, 0);
        assert_eq!(rep_4.capacity_violations, 0);
        assert_eq!(rep_1.pool_threads, 1);
        assert_eq!(rep_4.pool_threads, 4);
        assert_eq!(rep_1.steals, 0, "sequential path cannot steal");
    }

    /// Global service metrics advance by at least this run's report totals
    /// (`>=`: sibling tests share the process-wide registry).
    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_counts_batches_events_and_latency() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 2, Routing::HashId);
        let events = stream(&g, 3);
        let batches = mbta_telemetry::global().counter("mbta_service_batches_total");
        let ev = mbta_telemetry::global().counter("mbta_service_events_total");
        let lat = mbta_telemetry::global().histogram("mbta_service_batch_solve_ms");
        let (b0, e0, l0) = (batches.get(), ev.get(), lat.count());
        let (_, report) = run_to_log(&g, &plan, &events, None);
        assert!(report.batches > 0);
        assert!(batches.get() >= b0 + report.batches);
        assert!(ev.get() >= e0 + report.events_in);
        assert!(lat.count() >= l0 + report.batches);
    }

    #[test]
    fn capacity_invariant_holds_and_decisions_reconcile() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 4, Routing::HashId);
        let events = stream(&g, 13);
        let mut svc = DispatchService::new(&g, &plan, deterministic_cfg());
        let mut sink = CollectSink::default();
        for &a in &events {
            while let OfferOutcome::Deferred = svc.offer(a) {
                svc.pump(&mut sink);
            }
            svc.pump(&mut sink);
        }
        for st in &svc.states {
            st.check_invariants();
        }
        let report = svc.finish(&mut sink);
        assert_eq!(report.capacity_violations, 0);
        assert!(report.events_processed > 0);
        assert!(report.batches > 0);
        assert!(report.reseeds > 0, "no solve improvement was ever adopted");
        assert!(report.reseeds <= report.solves);
        // Net assignment deltas must equal the final assignment.
        let net: i64 = sink
            .decisions
            .iter()
            .map(|d| match d.action {
                Action::Assign => 1i64,
                Action::Unassign => -1i64,
            })
            .sum();
        assert_eq!(net, report.final_assignments as i64);
        // Ingress accounting closes.
        assert_eq!(
            report.events_in,
            report.events_processed
                + report.invalid_events
                + report.cross_benefit_drops
                + report.dropped_newest
                + report.dropped_oldest
        );
    }

    #[test]
    fn poisoned_shard_degrades_alone() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 4, Routing::HashId);
        let events = stream(&g, 31);
        let (_, report) = run_to_log(&g, &plan, &events, Some(0));
        assert_eq!(
            report.capacity_violations, 0,
            "poison must not break feasibility"
        );
        assert!(
            report.degraded_by_shard[0] > 0,
            "poisoned shard never solved: {:?}",
            report.degraded_by_shard
        );
        for s in 1..4 {
            assert_eq!(
                report.degraded_by_shard[s], 0,
                "sibling shard {s} degraded: {:?}",
                report.degraded_by_shard
            );
        }
        assert_eq!(
            report.tier_degraded as usize,
            report.degraded_by_shard[0] as usize
        );
        assert!(report.tier_exact > 0, "siblings should still reach exact");
    }

    #[test]
    fn drop_newest_overload_is_counted_not_fatal() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 2, Routing::Range);
        let events = stream(&g, 5);
        let mut cfg = deterministic_cfg();
        cfg.queue_cap = 8;
        cfg.drop_policy = DropPolicy::DropNewest;
        let mut svc = DispatchService::new(&g, &plan, cfg);
        let mut sink = CollectSink::default();
        // Burst everything in without pumping: the queue must overflow.
        for &a in &events {
            svc.offer(a);
        }
        let report = svc.finish(&mut sink);
        assert!(
            report.dropped_newest > 0,
            "burst did not overflow the queue"
        );
        assert_eq!(report.queue_high_watermark, 8);
        assert_eq!(report.capacity_violations, 0);
        assert_eq!(
            report.events_in,
            report.events_processed
                + report.invalid_events
                + report.cross_benefit_drops
                + report.dropped_newest
        );
    }

    #[test]
    fn defer_backpressure_loses_nothing() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 2, Routing::HashId);
        let events = stream(&g, 5);
        let mut cfg = deterministic_cfg();
        cfg.queue_cap = 4;
        let mut svc = DispatchService::new(&g, &plan, cfg);
        let mut sink = CollectSink::default();
        // Only pump when told to: deferrals must occur, no event lost.
        for &a in &events {
            while let OfferOutcome::Deferred = svc.offer(a) {
                svc.pump(&mut sink);
            }
        }
        let report = svc.finish(&mut sink);
        assert!(report.deferrals > 0, "cap-4 queue never deferred");
        // Every deferral was pumped and re-offered, so each deferred burst
        // ends in exactly one admitted retry.
        assert!(report.defer_retry_ok > 0, "retry successes went uncounted");
        assert!(report.defer_retry_ok <= report.deferrals);
        assert_eq!(report.dropped_newest + report.dropped_oldest, 0);
        assert_eq!(report.events_in, events.len() as u64);
        assert_eq!(
            report.events_processed + report.invalid_events + report.cross_benefit_drops,
            report.events_in
        );
    }

    #[test]
    fn malformed_events_are_rejected_at_admission() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 2, Routing::HashId);
        let bad = [
            Arrival {
                time: 0.1,
                event: ServiceEvent::WorkerJoin(9_999),
            },
            Arrival {
                time: 0.2,
                event: ServiceEvent::TaskPost(9_999),
            },
            Arrival {
                time: 0.3,
                event: ServiceEvent::BenefitUpdate {
                    edge: 0,
                    weight: f64::NAN,
                },
            },
            Arrival {
                time: 0.4,
                event: ServiceEvent::BenefitUpdate {
                    edge: 0,
                    weight: -1.0,
                },
            },
            Arrival {
                time: 0.5,
                event: ServiceEvent::BenefitUpdate {
                    edge: 1 << 30,
                    weight: 0.5,
                },
            },
        ];
        let mut svc = DispatchService::new(&g, &plan, deterministic_cfg());
        let mut sink = CollectSink::default();
        for a in bad {
            svc.offer(a);
        }
        let report = svc.finish(&mut sink);
        assert_eq!(report.invalid_events, 5);
        assert_eq!(report.events_processed, 0);
        assert_eq!(report.capacity_violations, 0);
    }

    /// Satellite regression: the report's retained fraction must follow
    /// the *live* weights, not the plan-time ones. Cratering every intra
    /// edge's weight via benefit updates has to drag it down.
    #[test]
    fn report_retained_weight_tracks_live_drift() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 4, Routing::HashId);
        let plan_retained = plan.retained_weight;
        let mut events = Vec::new();
        let mut time = 0.0;
        for e in g.edges() {
            if plan.edge_shard[e.index()] != UNMAPPED {
                time += 0.01;
                events.push(Arrival {
                    time,
                    event: ServiceEvent::BenefitUpdate {
                        edge: e.raw(),
                        weight: 1e-3,
                    },
                });
            }
        }
        let (_, report) = run_to_log(&g, &plan, &events, None);
        assert!(
            report.retained_weight < plan_retained - 0.1,
            "report retained {} did not move off the plan-time figure {}",
            report.retained_weight,
            plan_retained
        );
    }

    /// The boundary pass recovers cross-shard weight without breaking
    /// feasibility, accounting, or determinism across thread counts.
    #[test]
    fn boundary_pass_rescues_cross_weight_deterministically() {
        let (g, w) = universe();
        // Hash routing at 8 shards cuts heavily: plenty to rescue.
        let plan = ShardPlan::build(&g, &w, 8, Routing::HashId);
        let events = stream(&g, 19);
        let run_with = |threads: usize, boundary: bool| {
            let mut cfg = deterministic_cfg();
            cfg.threads = threads;
            cfg.boundary_pass = boundary;
            let mut svc = DispatchService::new(&g, &plan, cfg);
            let mut sink = WriteSink::new(Vec::new());
            for &a in &events {
                while let OfferOutcome::Deferred = svc.offer(a) {
                    svc.pump(&mut sink);
                }
                svc.pump(&mut sink);
            }
            let report = svc.finish(&mut sink);
            assert!(sink.error.is_none());
            (sink.into_inner(), report)
        };
        let (_, rep_off) = run_with(1, false);
        let (log_on, rep_on) = run_with(1, true);
        let (log_on4, rep_on4) = run_with(4, true);

        assert_eq!(rep_on.capacity_violations, 0, "rescue broke feasibility");
        assert!(rep_on.rescue_solves > 0, "rescue market never solved");
        assert!(rep_on.rescue_assigns > 0, "rescue never assigned anything");
        assert!(
            rep_on.final_value > rep_off.final_value,
            "rescue recovered nothing: {} vs {}",
            rep_on.final_value,
            rep_off.final_value
        );
        assert!(
            rep_on.effective_retained > rep_on.retained_weight,
            "effective retained must credit rescued cross edges"
        );
        // Cross benefit updates are processed, not dropped, and the
        // ingress accounting still closes.
        assert_eq!(rep_on.cross_benefit_drops, 0);
        assert_eq!(
            rep_on.events_in,
            rep_on.events_processed + rep_on.invalid_events
        );
        // Determinism survives the extra solve stage at any width.
        assert_eq!(log_on, log_on4, "boundary pass diverged across threads");
        assert_eq!(rep_on.final_value, rep_on4.final_value);
        assert_eq!(rep_on.rescued_weight, rep_on4.rescued_weight);
    }

    /// Drift-driven re-planning: the epoch loop (detach → rebuild →
    /// resume) fires on a drifting trace, migrates nodes, and keeps every
    /// safety invariant.
    #[test]
    fn replan_epoch_loop_migrates_and_stays_feasible() {
        let (g, w) = universe();
        // Stronger drift than the shared helper: the cut must visibly
        // degrade mid-stream for the threshold to fire.
        let events: Vec<Arrival> = {
            let trace = TraceSpec {
                horizon: 50.0,
                mean_session: 10.0,
                mean_task_lifetime: 15.0,
                seed: 7,
            }
            .generate(g.n_workers(), g.n_tasks());
            BenefitDrift::new(&g, 0.3, 7).weave(trace.into_iter().map(Arrival::from_trace))
        };
        let mut plan = ShardPlan::build(&g, &w, 4, Routing::MinCut);
        let mut cfg = deterministic_cfg();
        // Hair-trigger threshold so the drifting trace actually fires it
        // (several times — the loop must survive repeated migrations).
        cfg.replan_threshold = Some(1e-6);
        cfg.boundary_pass = true;
        let mut sink = CollectSink::default();
        let mut idx = 0usize;
        let mut carried: Option<CarriedState> = None;
        let report = loop {
            let mut svc = match carried.take() {
                None => DispatchService::new(&g, &plan, cfg.clone()),
                Some(c) => DispatchService::resume(&g, &plan, c, &mut sink),
            };
            while idx < events.len() {
                let a = events[idx];
                while let OfferOutcome::Deferred = svc.offer(a) {
                    svc.pump(&mut sink);
                }
                idx += 1;
                svc.pump(&mut sink);
                if svc.replan_due() {
                    break;
                }
            }
            if idx >= events.len() {
                break svc.finish(&mut sink);
            }
            let c = svc.detach();
            plan = ShardPlan::build(&g, c.live_weights(), 4, plan.routing);
            carried = Some(c);
        };
        assert!(report.replans > 0, "threshold 1e-6 never fired");
        assert_eq!(report.capacity_violations, 0);
        assert_eq!(report.events_in, events.len() as u64);
        assert_eq!(
            report.events_in,
            report.events_processed + report.invalid_events
        );
        // Net assignment deltas reconcile across the plan changes.
        let net: i64 = sink
            .decisions
            .iter()
            .map(|d| match d.action {
                Action::Assign => 1i64,
                Action::Unassign => -1i64,
            })
            .sum();
        assert_eq!(net, report.final_assignments as i64);
    }

    #[test]
    fn wallclock_budget_mode_completes_with_bounded_batches() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 4, Routing::HashId);
        let events = stream(&g, 17);
        let mut cfg = deterministic_cfg();
        cfg.budget = BudgetMode::Wallclock(20);
        let mut svc = DispatchService::new(&g, &plan, cfg);
        let mut sink = CollectSink::default();
        for &a in &events {
            while let OfferOutcome::Deferred = svc.offer(a) {
                svc.pump(&mut sink);
            }
            svc.pump(&mut sink);
        }
        let report = svc.finish(&mut sink);
        assert_eq!(report.capacity_violations, 0);
        assert!(report.solves > 0);
        // Every batch respected the count watermark.
        assert!(sink.batches.iter().all(|b| b.events <= 32));
    }

    fn online_cfg(drift_threshold: f64) -> ServiceConfig {
        let mut cfg = deterministic_cfg();
        cfg.online = Some(OnlineConfig { drift_threshold });
        cfg
    }

    fn run_online(
        g: &BipartiteGraph,
        plan: &ShardPlan,
        events: &[Arrival],
        threshold: f64,
        poison: Option<usize>,
    ) -> (Vec<u8>, ServiceReport) {
        let mut svc = DispatchService::new(g, plan, online_cfg(threshold));
        if let Some(s) = poison {
            svc.poison_shard(s);
        }
        let mut sink = WriteSink::new(Vec::new());
        for &a in events {
            while let OfferOutcome::Deferred = svc.offer(a) {
                svc.pump(&mut sink);
            }
            svc.pump(&mut sink);
        }
        for st in &svc.states {
            st.check_invariants();
        }
        let report = svc.finish(&mut sink);
        assert!(sink.error.is_none());
        (sink.into_inner(), report)
    }

    #[test]
    fn online_replay_is_byte_identical() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 4, Routing::HashId);
        let events = stream(&g, 7);
        let (log_a, rep_a) = run_online(&g, &plan, &events, 0.1, None);
        let (log_b, rep_b) = run_online(&g, &plan, &events, 0.1, None);
        assert!(!log_a.is_empty(), "online replay produced no decisions");
        assert_eq!(log_a, log_b, "online decision logs diverged");
        assert_eq!(rep_a.decisions, rep_b.decisions);
        assert_eq!(rep_a.online_events, rep_b.online_events);
        assert_eq!(rep_a.online_fallbacks, rep_b.online_fallbacks);
        assert_eq!(rep_a.online_exchanges, rep_b.online_exchanges);
        assert_eq!(rep_a.final_assignments, rep_b.final_assignments);
        assert_eq!(
            rep_a.batches, rep_a.flush_online,
            "every online batch is a per-event flush"
        );
        assert_eq!(rep_a.capacity_violations, 0);
    }

    #[test]
    fn online_decisions_reconcile_and_fallbacks_fire() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 4, Routing::HashId);
        let events = stream(&g, 13);
        let mut svc = DispatchService::new(&g, &plan, online_cfg(0.05));
        let mut sink = CollectSink::default();
        for &a in &events {
            while let OfferOutcome::Deferred = svc.offer(a) {
                svc.pump(&mut sink);
            }
            svc.pump(&mut sink);
        }
        for st in &svc.states {
            st.check_invariants();
        }
        let report = svc.finish(&mut sink);
        assert_eq!(report.capacity_violations, 0);
        assert!(report.online_events > 0);
        assert!(
            report.online_fallbacks > 0,
            "hair-trigger threshold never fell back"
        );
        assert_eq!(
            report.online_warm_solves, report.online_fallbacks,
            "healthy shards must solve on every fallback"
        );
        // Net assignment deltas equal the final assignment.
        let net: i64 = sink
            .decisions
            .iter()
            .map(|d| match d.action {
                Action::Assign => 1i64,
                Action::Unassign => -1i64,
            })
            .sum();
        assert_eq!(net, report.final_assignments as i64);
        // Ingress accounting closes in online mode too.
        assert_eq!(
            report.events_in,
            report.events_processed + report.invalid_events + report.cross_benefit_drops
        );
    }

    /// The online path's quality floor: with the warm fallback armed at
    /// the default threshold, the per-event path retains nearly all of
    /// the batch path's final matched weight on the same stream.
    #[test]
    fn online_weight_tracks_batch() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 2, Routing::HashId);
        let events = stream(&g, 29);
        let (_, batch) = run_to_log(&g, &plan, &events, None);
        let (_, online) = run_online(&g, &plan, &events, 0.2, None);
        assert_eq!(online.capacity_violations, 0);
        // The closing drain ends every healthy shard on an exact warm
        // solve over the same final weights batch mode converges to, so
        // the two paths should land essentially on top of each other.
        assert!(
            online.final_value >= 0.99 * batch.final_value,
            "online final value {} fell too far below batch {}",
            online.final_value,
            batch.final_value
        );
    }

    /// A poisoned shard never warm-solves: its drift accumulator resets
    /// on the greedy floor, siblings keep their exact fallbacks.
    #[test]
    fn online_poisoned_shard_stays_on_greedy_floor() {
        let (g, w) = universe();
        let plan = ShardPlan::build(&g, &w, 4, Routing::HashId);
        let events = stream(&g, 31);
        let (_, report) = run_online(&g, &plan, &events, 0.05, Some(0));
        assert_eq!(report.capacity_violations, 0);
        assert!(report.online_events > 0);
        assert!(
            report.online_warm_solves <= report.online_fallbacks,
            "a poisoned shard must not be solved"
        );
    }

    /// Online mode survives drift-driven re-plan migrations: warm solvers
    /// are rebuilt for the new topology and counters carry over.
    #[test]
    fn online_replan_loop_migrates_and_stays_feasible() {
        let (g, w) = universe();
        let events = stream(&g, 37);
        let mut plan = ShardPlan::build(&g, &w, 4, Routing::MinCut);
        let mut cfg = online_cfg(0.1);
        cfg.replan_threshold = Some(1e-6);
        let mut sink = CollectSink::default();
        let mut idx = 0usize;
        let mut carried: Option<CarriedState> = None;
        let report = loop {
            let mut svc = match carried.take() {
                None => DispatchService::new(&g, &plan, cfg.clone()),
                Some(c) => DispatchService::resume(&g, &plan, c, &mut sink),
            };
            while idx < events.len() {
                let a = events[idx];
                while let OfferOutcome::Deferred = svc.offer(a) {
                    svc.pump(&mut sink);
                }
                idx += 1;
                svc.pump(&mut sink);
                if svc.replan_due() {
                    break;
                }
            }
            if idx >= events.len() {
                break svc.finish(&mut sink);
            }
            let c = svc.detach();
            plan = ShardPlan::build(&g, c.live_weights(), 4, plan.routing);
            carried = Some(c);
        };
        assert!(report.replans > 0, "threshold 1e-6 never fired");
        assert_eq!(report.capacity_violations, 0);
        assert!(report.online_events > 0);
        let net: i64 = sink
            .decisions
            .iter()
            .map(|d| match d.action {
                Action::Assign => 1i64,
                Action::Unassign => -1i64,
            })
            .sum();
        assert_eq!(net, report.final_assignments as i64);
    }
}
