//! Decision output: the pluggable sink every dispatched batch flows into.
//!
//! The service separates *what it decided* ([`Decision`] — assignment
//! deltas in universe ids) from *how the batch went* ([`BatchStats`] —
//! size, queue depth, solve latency, quality tier). Sinks receive both per
//! batch. The decision log is the service's replayable contract: it
//! contains no wall-clock quantities, so a deterministic-budget replay of
//! the same trace produces a byte-identical log ([`WriteSink`] is used by
//! the CLI `replay` command and the CI smoke test to assert exactly that).

use crate::batch::FlushReason;
use mbta_core::engine::QualityTier;
use std::io::{self, Write};

/// Assignment delta direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Action {
    /// The edge left the assignment.
    Unassign,
    /// The edge entered the assignment.
    Assign,
}

impl Action {
    /// Stable log keyword.
    pub fn name(self) -> &'static str {
        match self {
            Action::Assign => "assign",
            Action::Unassign => "unassign",
        }
    }
}

/// One assignment change, in universe (parent-graph) ids.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Decision {
    /// Shard that made the change.
    pub shard: u32,
    /// Universe edge id (sort key — deterministic log order).
    pub edge: u32,
    /// Direction.
    pub action: Action,
    /// Universe worker id.
    pub worker: u32,
    /// Universe task id.
    pub task: u32,
    /// Edge weight at decision time.
    pub weight: f64,
}

/// Per-batch telemetry delivered alongside the decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Monotone batch sequence number (0-based).
    pub seq: u64,
    /// Which watermark closed the batch.
    pub reason: FlushReason,
    /// Events in the batch.
    pub events: usize,
    /// Ingress queue depth when the batch was dispatched.
    pub queue_depth: usize,
    /// Shards that received at least one event.
    pub shards_touched: usize,
    /// Shard solves that came back [`QualityTier::Degraded`].
    pub degraded_shards: usize,
    /// Worst quality tier across the touched shards' solves (`None` when
    /// no shard needed a solve).
    pub worst_tier: Option<QualityTier>,
    /// Wall-clock milliseconds spent in shard solves for this batch.
    pub solve_ms: f64,
    /// Events rejected as malformed (unknown ids, non-finite weights).
    pub invalid_events: usize,
}

/// Receives every dispatched batch.
pub trait DecisionSink {
    /// Called once per batch, decisions sorted by (shard, edge, action).
    fn on_batch(&mut self, stats: &BatchStats, decisions: &[Decision]);
}

/// Collects everything in memory (tests, bench).
#[derive(Debug, Default)]
pub struct CollectSink {
    /// Per-batch stats, in dispatch order.
    pub batches: Vec<BatchStats>,
    /// All decisions, in dispatch order.
    pub decisions: Vec<Decision>,
}

impl DecisionSink for CollectSink {
    fn on_batch(&mut self, stats: &BatchStats, decisions: &[Decision]) {
        self.batches.push(stats.clone());
        self.decisions.extend_from_slice(decisions);
    }
}

/// Discards everything (pure throughput measurement).
#[derive(Debug, Default)]
pub struct NullSink;

impl DecisionSink for NullSink {
    fn on_batch(&mut self, _stats: &BatchStats, _decisions: &[Decision]) {}
}

/// Streams a textual decision log to a writer.
///
/// Line format: `b<seq> <assign|unassign> w<worker> t<task> e<edge> <weight>`
/// with the weight printed via `f64`'s shortest round-trip `Display`. The
/// log deliberately excludes latencies and tiers — everything in it is a
/// pure function of the input stream under deterministic budgets, which is
/// what makes `replay` byte-for-byte reproducible.
#[derive(Debug)]
pub struct WriteSink<W: Write> {
    out: W,
    /// First I/O error encountered, if any (the sink keeps accepting
    /// batches so a full run's stats stay intact; callers check `error`
    /// after `finish`).
    pub error: Option<io::Error>,
}

impl<W: Write> WriteSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        WriteSink { out, error: None }
    }

    /// Unwraps the inner writer (e.g. to inspect a `Vec<u8>` log).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> DecisionSink for WriteSink<W> {
    fn on_batch(&mut self, stats: &BatchStats, decisions: &[Decision]) {
        if self.error.is_some() {
            return;
        }
        for d in decisions {
            if let Err(e) = writeln!(
                self.out,
                "b{} {} w{} t{} e{} {}",
                stats.seq,
                d.action.name(),
                d.worker,
                d.task,
                d.edge,
                d.weight
            ) {
                self.error = Some(e);
                return;
            }
        }
    }
}

/// Sorts decisions into the canonical log order.
pub(crate) fn canonical_order(decisions: &mut [Decision]) {
    decisions.sort_by(|a, b| {
        (a.shard, a.edge, a.action)
            .partial_cmp(&(b.shard, b.edge, b.action))
            .expect("ids and actions are totally ordered")
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(seq: u64) -> BatchStats {
        BatchStats {
            seq,
            reason: FlushReason::Count,
            events: 2,
            queue_depth: 0,
            shards_touched: 1,
            degraded_shards: 0,
            worst_tier: Some(QualityTier::Exact),
            solve_ms: 0.5,
            invalid_events: 0,
        }
    }

    fn d(shard: u32, edge: u32, action: Action) -> Decision {
        Decision {
            shard,
            edge,
            action,
            worker: edge * 10,
            task: edge * 100,
            weight: 0.25,
        }
    }

    #[test]
    fn write_sink_formats_lines_deterministically() {
        let mut sink = WriteSink::new(Vec::new());
        sink.on_batch(&stats(0), &[d(0, 3, Action::Assign)]);
        sink.on_batch(&stats(1), &[d(1, 7, Action::Unassign)]);
        assert!(sink.error.is_none());
        let log = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(
            log,
            "b0 assign w30 t300 e3 0.25\nb1 unassign w70 t700 e7 0.25\n"
        );
    }

    #[test]
    fn canonical_order_is_shard_edge_action() {
        let mut v = vec![
            d(1, 0, Action::Assign),
            d(0, 5, Action::Assign),
            d(0, 5, Action::Unassign),
            d(0, 2, Action::Assign),
        ];
        canonical_order(&mut v);
        assert_eq!(
            v.iter()
                .map(|x| (x.shard, x.edge, x.action))
                .collect::<Vec<_>>(),
            vec![
                (0, 2, Action::Assign),
                (0, 5, Action::Unassign),
                (0, 5, Action::Assign),
                (1, 0, Action::Assign),
            ]
        );
    }

    #[test]
    fn collect_sink_accumulates() {
        let mut sink = CollectSink::default();
        sink.on_batch(
            &stats(0),
            &[d(0, 1, Action::Assign), d(0, 2, Action::Assign)],
        );
        sink.on_batch(&stats(1), &[]);
        assert_eq!(sink.batches.len(), 2);
        assert_eq!(sink.decisions.len(), 2);
        assert_eq!(sink.batches[1].seq, 1);
    }
}
