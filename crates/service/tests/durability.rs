//! Crash-injection tests for the durability store wiring.
//!
//! The contract under test: a service with an attached [`DurableStore`]
//! that dies without warning — dropped mid-stream, no seal, no final
//! snapshot — recovers to *exactly* the state a clean sequential run had
//! at the same batch watermark: same assigned edge set per shard, same
//! retained weight, zero capacity violations. A deterministic
//! configuration makes "the clean run's state at watermark k" well
//! defined, and a seeded SplitMix64 picks the crash points so the test is
//! reproducible yet not hand-picked.

use mbta_graph::random::{random_bipartite, RandomGraphSpec};
use mbta_graph::BipartiteGraph;
use mbta_service::shard::UNMAPPED;
use mbta_service::{
    recover, Action, Arrival, BatchConfig, BatchStats, BenefitDrift, BudgetMode, Decision,
    DecisionSink, DispatchService, DropPolicy, DurableStore, FsyncPolicy, OfferOutcome,
    RecoveredState, Routing, ServiceConfig, ServiceEvent, ShardPlan, StoreConfig,
};
use mbta_store::wal::segment_files;
use mbta_workload::trace::TraceSpec;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mbta-service-durability-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn universe() -> (BipartiteGraph, Vec<f64>) {
    let g = random_bipartite(
        &RandomGraphSpec {
            n_workers: 70,
            n_tasks: 50,
            avg_degree: 5.0,
            capacity: 2,
            demand: 2,
        },
        91,
    );
    let w: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
    (g, w)
}

fn stream(g: &BipartiteGraph, seed: u64) -> Vec<Arrival> {
    let trace = TraceSpec {
        horizon: 45.0,
        mean_session: 9.0,
        mean_task_lifetime: 14.0,
        seed,
    }
    .generate(g.n_workers(), g.n_tasks());
    BenefitDrift::new(g, 0.25, seed).weave(trace.into_iter().map(Arrival::from_trace))
}

fn cfg() -> ServiceConfig {
    ServiceConfig {
        batch: BatchConfig {
            max_events: 24,
            max_bytes: 1 << 20,
            flush_interval: 4.0,
        },
        queue_cap: 4096,
        drop_policy: DropPolicy::Defer,
        budget: BudgetMode::Deterministic,
        threads: 1,
        boundary_pass: false,
        replan_threshold: None,
        online: None,
        owned_shard: None,
    }
}

fn store_cfg(snapshot_every: u64) -> StoreConfig {
    StoreConfig {
        fsync: FsyncPolicy::Always, // every committed batch survives the "crash"
        snapshot_every,
        segment_bytes: 4 << 10, // small segments so compaction really runs
        batch_fsync_every: 16,
        group_every: 1,
    }
}

/// Sink that records, per batch seq, the cumulative (shard, edge)
/// assignment set and consumed-event count — the clean run's ground truth
/// at every possible crash watermark.
#[derive(Default)]
struct StateTrackingSink {
    live: BTreeSet<(u32, u32)>,
    /// `per_batch[k]` = assignment set after batch k.
    per_batch: Vec<BTreeSet<(u32, u32)>>,
    /// `events_cum[k]` = arrivals consumed by batches `0..=k`.
    events_cum: Vec<usize>,
}

impl DecisionSink for StateTrackingSink {
    fn on_batch(&mut self, stats: &BatchStats, decisions: &[Decision]) {
        for d in decisions {
            match d.action {
                Action::Assign => {
                    self.live.insert((d.shard, d.edge));
                }
                Action::Unassign => {
                    self.live.remove(&(d.shard, d.edge));
                }
            }
        }
        self.per_batch.push(self.live.clone());
        let prev = self.events_cum.last().copied().unwrap_or(0);
        self.events_cum.push(prev + stats.events);
    }
}

/// Drives `events` through a fresh service; with `stop_after_batches`
/// set, the service is dropped cold once that many batches have been
/// dispatched — no `finish`, no seal — simulating a `kill -9`.
fn drive(
    g: &BipartiteGraph,
    plan: &ShardPlan,
    events: &[Arrival],
    wal_dir: Option<(&PathBuf, u64)>,
    stop_after_batches: Option<u64>,
) -> StateTrackingSink {
    let mut svc = DispatchService::new(g, plan, cfg());
    if let Some((dir, every)) = wal_dir {
        let (store, recovered) = DurableStore::open(dir, store_cfg(every)).unwrap();
        assert_eq!(recovered.watermark, 0, "test dirs start empty");
        svc.attach_store(store);
    }
    let mut sink = StateTrackingSink::default();
    for &a in events {
        while let OfferOutcome::Deferred = svc.offer(a) {
            svc.pump(&mut sink);
        }
        svc.pump(&mut sink);
        if let Some(stop) = stop_after_batches {
            if sink.per_batch.len() as u64 >= stop {
                drop(svc); // simulated crash: no finish(), no seal
                return sink;
            }
        }
    }
    let report = svc.finish(&mut sink);
    assert_eq!(report.capacity_violations, 0);
    assert!(report.store_error.is_none(), "{:?}", report.store_error);
    sink
}

/// The live weight of every edge after the first `n_events` arrivals:
/// the initial plan weights overridden by each applied benefit update, in
/// arrival order — recomputed from the raw trace, independently of both
/// the journal and the service's decision stream.
fn live_weights_after(
    g: &BipartiteGraph,
    plan: &ShardPlan,
    init: &[f64],
    events: &[Arrival],
    n_events: usize,
) -> Vec<f64> {
    let mut w = init.to_vec();
    for a in &events[..n_events] {
        if let ServiceEvent::BenefitUpdate { edge, weight } = a.event {
            let valid = (edge as usize) < g.n_edges() && weight.is_finite() && weight >= 0.0;
            // Cross-shard updates are dropped at admission, not applied.
            if valid && plan.edge_shard[edge as usize] != UNMAPPED {
                w[edge as usize] = weight;
            }
        }
    }
    w
}

/// Asserts `recovered` equals the clean run's cumulative state at the
/// recovered watermark — same assignment set, same retained weight under
/// independently recomputed live weights — and violates no capacity on
/// the universe graph.
fn assert_recovery_matches(
    g: &BipartiteGraph,
    plan: &ShardPlan,
    init_weights: &[f64],
    events: &[Arrival],
    clean: &StateTrackingSink,
    recovered: &RecoveredState,
) {
    assert!(recovered.watermark > 0, "nothing was recovered");
    let k = recovered.watermark as usize - 1;
    let expect_set = &clean.per_batch[k];

    let mut got: BTreeSet<(u32, u32)> = BTreeSet::new();
    for (s, edges) in recovered.shards.iter().enumerate() {
        for &e in edges {
            assert!(got.insert((s as u32, e)), "duplicate recovered edge {e}");
        }
    }
    assert_eq!(&got, expect_set, "recovered assignment set diverged");

    let truth = live_weights_after(g, plan, init_weights, events, clean.events_cum[k]);
    let expect_weight: f64 = got.iter().map(|&(_, e)| truth[e as usize]).sum();
    let total = recovered.total_weight();
    assert!(
        (total - expect_weight).abs() < 1e-9,
        "retained weight diverged: recovered {total}, expected {expect_weight}"
    );

    // Zero capacity violations on the universe graph.
    let mut w_load = vec![0u32; g.n_workers()];
    let mut t_load = vec![0u32; g.n_tasks()];
    let mut seen = BTreeSet::new();
    for &(_, e) in &got {
        assert!(seen.insert(e), "edge {e} assigned in two shards");
        let edge = mbta_graph::EdgeId::new(e);
        w_load[g.worker_of(edge).index()] += 1;
        t_load[g.task_of(edge).index()] += 1;
    }
    for w in g.workers() {
        assert!(w_load[w.index()] <= g.capacity(w), "worker over capacity");
    }
    for t in g.tasks() {
        assert!(t_load[t.index()] <= g.demand(t), "task over demand");
    }
}

/// Kill the service at random batch counts; recovery must reproduce the
/// clean run's state at the crash watermark exactly.
#[test]
fn crash_at_random_batch_recovers_clean_state() {
    let (g, w) = universe();
    let plan = ShardPlan::build(&g, &w, 4, Routing::HashId);
    let events = stream(&g, 23);

    // Ground truth: one clean, storeless sequential run.
    let clean = drive(&g, &plan, &events, None, None);
    let n_batches = clean.per_batch.len() as u64;
    assert!(n_batches >= 8, "trace too small to crash mid-stream");

    let mut rng = 0xD15A57E2u64;
    for round in 0..3 {
        let crash_at = 1 + splitmix64(&mut rng) % (n_batches - 1);
        let dir = tmp(&format!("crash-{round}"));
        let crashed = drive(&g, &plan, &events, Some((&dir, 8)), Some(crash_at));
        assert_eq!(crashed.per_batch.len() as u64, crash_at);

        let state = recover(&dir).unwrap();
        assert_eq!(
            state.watermark, crash_at,
            "with fsync=always every dispatched batch must be durable"
        );
        assert_recovery_matches(&g, &plan, &w, &events, &clean, &state);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A clean (sealed) run recovers from its final snapshot with zero WAL
/// replay, and the recovered state matches the finished run.
#[test]
fn sealed_run_recovers_without_replay() {
    let (g, w) = universe();
    let plan = ShardPlan::build(&g, &w, 3, Routing::HashId);
    let events = stream(&g, 41);
    let dir = tmp("sealed");
    let clean = drive(&g, &plan, &events, Some((&dir, 16)), None);

    let state = recover(&dir).unwrap();
    assert_eq!(state.watermark, clean.per_batch.len() as u64);
    assert_eq!(
        state.records_replayed, 0,
        "seal must leave nothing to replay"
    );
    assert_eq!(state.truncated_bytes, 0);
    assert_recovery_matches(&g, &plan, &w, &events, &clean, &state);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A drift-driven re-plan mid-stream journals a `PlanRecord`; after a
/// crash (no seal, no snapshot) pure WAL replay must reproduce the live
/// assignment across the migration boundary, with every recovered intra
/// edge sitting in its **new** plan's shard.
#[test]
fn replan_migration_replays_from_wal() {
    let (g, w) = universe();
    let events = stream(&g, 77);
    let plan1 = ShardPlan::build(&g, &w, 4, Routing::MinCut);
    let dir = tmp("replan");

    let mut svc = DispatchService::new(&g, &plan1, cfg());
    // snapshot_every = 0: recovery must come from WAL frames alone, so
    // the plan frame's replay path is actually exercised.
    let (store, recovered) = DurableStore::open(&dir, store_cfg(0)).unwrap();
    assert_eq!(recovered.watermark, 0);
    svc.attach_store(store);
    let mut sink = StateTrackingSink::default();

    // First half under plan 1, then a forced migration, then the rest.
    let half = events.len() / 2;
    for &a in &events[..half] {
        while let OfferOutcome::Deferred = svc.offer(a) {
            svc.pump(&mut sink);
        }
        svc.pump(&mut sink);
    }
    let batches_before = svc.batches_committed();
    let carried = svc.detach();
    let plan2 = ShardPlan::build(&g, carried.live_weights(), 4, Routing::MinCut);
    let mut svc = DispatchService::resume(&g, &plan2, carried, &mut sink);
    assert_eq!(
        svc.batches_committed(),
        batches_before + 1,
        "the plan record must consume a sequence slot"
    );
    for &a in &events[half..] {
        while let OfferOutcome::Deferred = svc.offer(a) {
            svc.pump(&mut sink);
        }
        svc.pump(&mut sink);
    }
    drop(svc); // simulated crash: no finish(), no seal

    let state = recover(&dir).unwrap();
    assert!(
        state.records_replayed > 0,
        "WAL-only recovery must replay frames"
    );
    // The recovered edge union equals the sink's live assignment. Shard
    // labels are compared as sets of edges: a migration relabels shards
    // wholesale (journaled in the plan frame) without re-announcing
    // still-assigned edges to the sink.
    let recovered_edges: BTreeSet<u32> = state.shards.iter().flatten().copied().collect();
    let live_edges: BTreeSet<u32> = sink.live.iter().map(|&(_, e)| e).collect();
    assert_eq!(
        recovered_edges, live_edges,
        "assignment diverged across the migration"
    );
    // Every recovered intra edge lives in its post-migration shard.
    for (s, edges) in state.shards.iter().enumerate().take(4) {
        for &e in edges {
            if plan2.edge_shard[e as usize] != UNMAPPED {
                assert_eq!(
                    plan2.edge_shard[e as usize] as usize, s,
                    "edge {e} recovered into a pre-migration shard"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Online mode journals one WAL record per deciding event; a cold drop
/// mid-stream must recover to exactly the crashed run's own state at the
/// durable watermark — same assignment set, same retained weight under
/// independently recomputed live weights, zero capacity violations.
#[test]
fn online_crash_recovers_event_granular_state() {
    let (g, w) = universe();
    let plan = ShardPlan::build(&g, &w, 4, Routing::HashId);
    let events = stream(&g, 67);

    let mut online_cfg = cfg();
    online_cfg.online = Some(mbta_service::OnlineConfig {
        drift_threshold: 0.1,
    });

    let dir = tmp("online-crash");
    let (store, recovered) = DurableStore::open(&dir, store_cfg(8)).unwrap();
    assert_eq!(recovered.watermark, 0, "test dirs start empty");
    let mut svc = DispatchService::new(&g, &plan, online_cfg);
    svc.attach_store(store);

    let mut sink = StateTrackingSink::default();
    // In online mode `stats.events` counts only deciding events, so the
    // truth cut for weight recomputation is recorded from the driver
    // side: arrivals_cum[k] = raw arrivals offered when record k landed.
    let mut arrivals_cum: Vec<usize> = Vec::new();
    let half = events.len() / 2;
    for (i, &a) in events.iter().take(half).enumerate() {
        while let OfferOutcome::Deferred = svc.offer(a) {
            svc.pump(&mut sink);
        }
        svc.pump(&mut sink);
        while arrivals_cum.len() < sink.per_batch.len() {
            arrivals_cum.push(i + 1);
        }
    }
    assert!(
        sink.per_batch.len() >= 10,
        "trace too small to exercise online records"
    );
    drop(svc); // simulated crash: no finish(), no seal
    sink.events_cum = arrivals_cum;

    let state = recover(&dir).unwrap();
    assert_eq!(
        state.watermark as usize,
        sink.per_batch.len(),
        "with fsync=always every journaled online record must be durable"
    );
    assert_recovery_matches(&g, &plan, &w, &events, &sink, &state);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Torn tail: truncate the newest WAL segment by a random byte count
/// after a crash. Recovery drops at most the torn record(s) and still
/// lands on an exact clean-run prefix.
#[test]
fn truncated_tail_recovers_shorter_prefix() {
    let (g, w) = universe();
    let plan = ShardPlan::build(&g, &w, 4, Routing::HashId);
    let events = stream(&g, 59);
    let clean = drive(&g, &plan, &events, None, None);
    let n_batches = clean.per_batch.len() as u64;
    let crash_at = n_batches.saturating_sub(2).max(2);

    let dir = tmp("torn");
    // snapshot_every = 0: WAL-only, so truncation visibly shortens the
    // recovered watermark instead of being absorbed by a snapshot.
    let _ = drive(&g, &plan, &events, Some((&dir, 0)), Some(crash_at));
    let before = recover(&dir).unwrap();
    assert_eq!(before.watermark, crash_at);

    let mut rng = 0xBADC_0FFEu64;
    let (_, seg) = segment_files(&dir).unwrap().pop().unwrap();
    let bytes = std::fs::read(&seg).unwrap();
    let chop = 1 + (splitmix64(&mut rng) as usize) % (bytes.len() / 2);
    std::fs::write(&seg, &bytes[..bytes.len() - chop]).unwrap();

    let state = recover(&dir).unwrap();
    assert!(state.watermark < crash_at, "truncation must lose the tail");
    assert!(state.truncated_bytes > 0);
    if state.watermark > 0 {
        assert_recovery_matches(&g, &plan, &w, &events, &clean, &state);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
