//! Property tests for the worker pool's equivalence contract: for any
//! event trace, dispatching with a multi-threaded solve pool must be
//! indistinguishable from the sequential path — identical total matching
//! weight, zero capacity violations, and (under deterministic budgets)
//! byte-identical decision logs. This is the contract that makes
//! `--threads N` safe to flip in production and `replay --threads N`
//! byte-stable for every `N`.

use mbta_graph::random::{random_bipartite, RandomGraphSpec};
use mbta_graph::BipartiteGraph;
use mbta_service::{
    Arrival, BatchConfig, BenefitDrift, BudgetMode, DispatchService, DropPolicy, OfferOutcome,
    Routing, ServiceConfig, ServiceReport, ShardPlan, WriteSink,
};
use mbta_workload::trace::TraceSpec;
use proptest::prelude::*;

fn universe(seed: u64, n_workers: usize) -> (BipartiteGraph, Vec<f64>) {
    let g = random_bipartite(
        &RandomGraphSpec {
            n_workers,
            n_tasks: n_workers * 3 / 4,
            avg_degree: 4.0,
            capacity: 2,
            demand: 2,
        },
        seed,
    );
    let w: Vec<f64> = g.edges().map(|e| 0.5 * (g.rb(e) + g.wb(e))).collect();
    (g, w)
}

fn events(g: &BipartiteGraph, seed: u64, drift: f64) -> Vec<Arrival> {
    let trace = TraceSpec {
        horizon: 40.0,
        mean_session: 8.0,
        mean_task_lifetime: 12.0,
        seed,
    }
    .generate(g.n_workers(), g.n_tasks());
    BenefitDrift::new(g, drift, seed).weave(trace.into_iter().map(Arrival::from_trace))
}

fn cfg(threads: usize, budget: BudgetMode) -> ServiceConfig {
    ServiceConfig {
        batch: BatchConfig {
            max_events: 24,
            max_bytes: 1 << 20,
            flush_interval: 4.0,
        },
        queue_cap: 2048,
        drop_policy: DropPolicy::Defer,
        budget,
        threads,
        boundary_pass: false,
        replan_threshold: None,
        online: None,
        owned_shard: None,
    }
}

/// Replays the whole trace and returns the decision log bytes + report.
fn run(
    g: &BipartiteGraph,
    plan: &ShardPlan,
    evs: &[Arrival],
    config: ServiceConfig,
) -> (Vec<u8>, ServiceReport) {
    let mut svc = DispatchService::new(g, plan, config);
    let mut sink = WriteSink::new(Vec::new());
    for &a in evs {
        while let OfferOutcome::Deferred = svc.offer(a) {
            svc.pump(&mut sink);
        }
        svc.pump(&mut sink);
    }
    let report = svc.finish(&mut sink);
    assert!(sink.error.is_none());
    (sink.into_inner(), report)
}

proptest! {
    // Each case replays the same trace twice through a full service, so
    // keep the case count modest; the trace/universe randomization covers
    // the interesting shapes (shard skew, drift mix, defer pressure).
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Deterministic budgets: `threads = 4` must be byte-identical to
    /// `threads = 1` — same decision log, same adopted solves, same final
    /// matching weight — and both must reconcile with zero capacity
    /// violations.
    #[test]
    fn four_threads_replay_sequential_byte_for_byte(
        seed in 0u64..10_000,
        n_workers in 40usize..120,
        shards in 2usize..6,
        drift in 0.0f64..0.4,
    ) {
        let (g, w) = universe(seed, n_workers);
        let plan = ShardPlan::build(&g, &w, shards, Routing::HashId);
        let evs = events(&g, seed ^ 0x5eed, drift);

        let (log_seq, rep_seq) = run(&g, &plan, &evs, cfg(1, BudgetMode::Deterministic));
        let (log_par, rep_par) = run(&g, &plan, &evs, cfg(4, BudgetMode::Deterministic));

        prop_assert_eq!(rep_seq.capacity_violations, 0);
        prop_assert_eq!(rep_par.capacity_violations, 0);
        // Bit-identical arithmetic on both paths: the pool reorders
        // scheduling, never the merge, so even the floats must agree
        // exactly.
        prop_assert_eq!(rep_seq.final_value, rep_par.final_value);
        prop_assert_eq!(rep_seq.final_assignments, rep_par.final_assignments);
        prop_assert_eq!(rep_seq.reseeds, rep_par.reseeds);
        prop_assert_eq!(rep_seq.decisions, rep_par.decisions);
        prop_assert_eq!(log_seq, log_par);
    }

    /// Boundary rescue, for arbitrary universes and shard counts: the
    /// rescue pass must never violate capacity (the service folds rescue
    /// validation — including "chosen edge is actually cross-shard" —
    /// into `capacity_violations`), and shards + rescue must be worth at
    /// least as much as shards alone.
    #[test]
    fn boundary_rescue_is_feasible_and_never_worse(
        seed in 0u64..10_000,
        n_workers in 40usize..100,
        shards in 2usize..8,
        drift in 0.0f64..0.4,
    ) {
        let (g, w) = universe(seed, n_workers);
        let plan = ShardPlan::build(&g, &w, shards, Routing::HashId);
        let evs = events(&g, seed ^ 0xabcd, drift);

        let (_, rep_off) = run(&g, &plan, &evs, cfg(1, BudgetMode::Deterministic));
        let mut on = cfg(1, BudgetMode::Deterministic);
        on.boundary_pass = true;
        let (_, rep_on) = run(&g, &plan, &evs, on);

        prop_assert_eq!(rep_on.capacity_violations, 0);
        prop_assert!(rep_on.rescued_weight >= 0.0);
        prop_assert!(
            rep_on.final_value >= rep_off.final_value - 1e-9,
            "rescue made the assignment worse: {} < {}",
            rep_on.final_value, rep_off.final_value
        );
        prop_assert!(rep_on.effective_retained >= rep_on.retained_weight - 1e-12);
    }

    /// Wall-clock budgets: solve adoption may differ across thread counts
    /// (budget racing is timing-sensitive by design), but the safety
    /// invariants may not — every configuration must reconcile with zero
    /// capacity violations and closed ingress accounting.
    #[test]
    fn wallclock_budgets_stay_capacity_safe_at_any_width(
        seed in 0u64..10_000,
        n_workers in 40usize..100,
        threads in 1usize..5,
    ) {
        let (g, w) = universe(seed, n_workers);
        let plan = ShardPlan::build(&g, &w, 4, Routing::HashId);
        let evs = events(&g, seed ^ 0xbeef, 0.2);

        let (_, rep) = run(&g, &plan, &evs, cfg(threads, BudgetMode::Wallclock(25)));
        prop_assert_eq!(rep.capacity_violations, 0);
        prop_assert!(rep.events_processed > 0);
        prop_assert_eq!(
            rep.events_in,
            rep.events_processed
                + rep.invalid_events
                + rep.cross_benefit_drops
                + rep.dropped_newest
                + rep.dropped_oldest
        );
        prop_assert_eq!(rep.pool_threads, threads);
    }
}
