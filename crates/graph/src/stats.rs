//! Dataset statistics — the numbers the evaluation's "datasets" table (T1)
//! reports for each workload profile.

use crate::{BipartiteGraph, TaskId, WorkerId};

/// Summary statistics of a labor-market instance.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of workers.
    pub n_workers: usize,
    /// Number of tasks.
    pub n_tasks: usize,
    /// Number of eligibility edges.
    pub n_edges: usize,
    /// Edge density relative to the complete bipartite graph.
    pub density: f64,
    /// Mean / max worker degree.
    pub worker_degree_mean: f64,
    /// Maximum worker degree.
    pub worker_degree_max: usize,
    /// Mean task degree.
    pub task_degree_mean: f64,
    /// Maximum task degree.
    pub task_degree_max: usize,
    /// Workers with no eligible task (can never be assigned).
    pub isolated_workers: usize,
    /// Tasks with no eligible worker (can never be served).
    pub isolated_tasks: usize,
    /// Sum of worker capacities.
    pub total_capacity: u64,
    /// Sum of task demands.
    pub total_demand: u64,
    /// Mean requester benefit over edges.
    pub mean_rb: f64,
    /// Mean worker benefit over edges.
    pub mean_wb: f64,
    /// Number of connected components (ignoring isolated nodes).
    pub components: usize,
}

impl GraphStats {
    /// Computes statistics for a graph in O(V + E).
    pub fn compute(g: &BipartiteGraph) -> Self {
        let n_w = g.n_workers();
        let n_t = g.n_tasks();
        let m = g.n_edges();

        let mut wd_max = 0usize;
        let mut isolated_w = 0usize;
        for w in g.workers() {
            let d = g.worker_degree(w);
            wd_max = wd_max.max(d);
            if d == 0 {
                isolated_w += 1;
            }
        }
        let mut td_max = 0usize;
        let mut isolated_t = 0usize;
        for t in g.tasks() {
            let d = g.task_degree(t);
            td_max = td_max.max(d);
            if d == 0 {
                isolated_t += 1;
            }
        }

        let (sum_rb, sum_wb) = g
            .edges()
            .fold((0.0, 0.0), |(a, b), e| (a + g.rb(e), b + g.wb(e)));

        Self {
            n_workers: n_w,
            n_tasks: n_t,
            n_edges: m,
            density: if n_w == 0 || n_t == 0 {
                0.0
            } else {
                m as f64 / (n_w as f64 * n_t as f64)
            },
            worker_degree_mean: if n_w == 0 { 0.0 } else { m as f64 / n_w as f64 },
            worker_degree_max: wd_max,
            task_degree_mean: if n_t == 0 { 0.0 } else { m as f64 / n_t as f64 },
            task_degree_max: td_max,
            isolated_workers: isolated_w,
            isolated_tasks: isolated_t,
            total_capacity: g.total_capacity(),
            total_demand: g.total_demand(),
            mean_rb: if m == 0 { 0.0 } else { sum_rb / m as f64 },
            mean_wb: if m == 0 { 0.0 } else { sum_wb / m as f64 },
            components: connected_components(g),
        }
    }
}

/// Number of connected components among non-isolated nodes, via BFS over the
/// bipartite adjacency.
pub fn connected_components(g: &BipartiteGraph) -> usize {
    let n_w = g.n_workers();
    let n_t = g.n_tasks();
    let mut seen_w = vec![false; n_w];
    let mut seen_t = vec![false; n_t];
    let mut components = 0usize;
    let mut queue_w: Vec<u32> = Vec::new();
    let mut queue_t: Vec<u32> = Vec::new();

    for start in 0..n_w as u32 {
        let w = WorkerId::new(start);
        if seen_w[start as usize] || g.worker_degree(w) == 0 {
            continue;
        }
        components += 1;
        seen_w[start as usize] = true;
        queue_w.clear();
        queue_w.push(start);
        while !queue_w.is_empty() || !queue_t.is_empty() {
            while let Some(wi) = queue_w.pop() {
                for e in g.worker_edges(WorkerId::new(wi)) {
                    let t = g.task_of(e).index();
                    if !seen_t[t] {
                        seen_t[t] = true;
                        queue_t.push(t as u32);
                    }
                }
            }
            while let Some(ti) = queue_t.pop() {
                for e in g.task_edges(TaskId::new(ti)) {
                    let w2 = g.worker_of(e).index();
                    if !seen_w[w2] {
                        seen_w[w2] = true;
                        queue_w.push(w2 as u32);
                    }
                }
            }
        }
    }
    components
}

/// Degree histogram of one side, bucketed as `hist[min(deg, cap)] += 1`.
///
/// `cap` bounds the histogram length; the last bucket aggregates all degrees
/// `>= cap` (heavy tails in the power-law profiles would otherwise make the
/// table unbounded).
pub fn worker_degree_histogram(g: &BipartiteGraph, cap: usize) -> Vec<usize> {
    let mut hist = vec![0usize; cap + 1];
    for w in g.workers() {
        hist[g.worker_degree(w).min(cap)] += 1;
    }
    hist
}

/// Task-side analogue of [`worker_degree_histogram`].
pub fn task_degree_histogram(g: &BipartiteGraph, cap: usize) -> Vec<usize> {
    let mut hist = vec![0usize; cap + 1];
    for t in g.tasks() {
        hist[g.task_degree(t).min(cap)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn two_component_graph() -> BipartiteGraph {
        // Component A: w0-t0, w1-t0. Component B: w2-t1. Isolated: w3, t2.
        let mut b = GraphBuilder::new();
        let ws = b.add_workers(4, 2);
        let ts = b.add_tasks(3, 1);
        b.add_edge(ws[0], ts[0], 0.4, 0.8).unwrap();
        b.add_edge(ws[1], ts[0], 0.6, 0.2).unwrap();
        b.add_edge(ws[2], ts[1], 1.0, 0.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn stats_basic() {
        let g = two_component_graph();
        let s = GraphStats::compute(&g);
        assert_eq!(s.n_workers, 4);
        assert_eq!(s.n_tasks, 3);
        assert_eq!(s.n_edges, 3);
        assert_eq!(s.isolated_workers, 1);
        assert_eq!(s.isolated_tasks, 1);
        assert_eq!(s.components, 2);
        assert_eq!(s.worker_degree_max, 1);
        assert_eq!(s.task_degree_max, 2);
        assert!((s.density - 3.0 / 12.0).abs() < 1e-12);
        assert!((s.mean_rb - (0.4 + 0.6 + 1.0) / 3.0).abs() < 1e-12);
        assert!((s.mean_wb - (0.8 + 0.2 + 0.0) / 3.0).abs() < 1e-12);
        assert_eq!(s.total_capacity, 8);
        assert_eq!(s.total_demand, 3);
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new().build().unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.n_edges, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.components, 0);
        assert_eq!(s.mean_rb, 0.0);
    }

    #[test]
    fn single_component_spanning_both_sides() {
        // Path w0-t0-w1-t1 → one component.
        let mut b = GraphBuilder::new();
        let ws = b.add_workers(2, 1);
        let ts = b.add_tasks(2, 1);
        b.add_edge(ws[0], ts[0], 0.5, 0.5).unwrap();
        b.add_edge(ws[1], ts[0], 0.5, 0.5).unwrap();
        b.add_edge(ws[1], ts[1], 0.5, 0.5).unwrap();
        let g = b.build().unwrap();
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn degree_histograms() {
        let g = two_component_graph();
        let wh = worker_degree_histogram(&g, 4);
        assert_eq!(wh[0], 1); // w3 isolated
        assert_eq!(wh[1], 3);
        let th = task_degree_histogram(&g, 1);
        // Bucket 1 aggregates degree >= 1 (t0 has degree 2, t1 degree 1).
        assert_eq!(th[0], 1);
        assert_eq!(th[1], 2);
    }
}
