//! Mutable graph construction with validation.
//!
//! Construction is the only fallible phase: once a [`BipartiteGraph`] exists
//! every index in it is valid by construction, and the algorithm crates can
//! use infallible indexing throughout.

use crate::csr::BipartiteGraph;
use crate::{TaskId, WorkerId};
use mbta_util::FxHashSet;
use std::fmt;

/// Errors detected while building a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a worker id `>=` the number of workers.
    WorkerOutOfRange {
        /// The offending worker id.
        worker: u32,
        /// Number of workers in the builder.
        n_workers: u32,
    },
    /// An edge referenced a task id `>=` the number of tasks.
    TaskOutOfRange {
        /// The offending task id.
        task: u32,
        /// Number of tasks in the builder.
        n_tasks: u32,
    },
    /// The same (worker, task) pair was added twice.
    DuplicateEdge {
        /// Worker endpoint of the duplicated edge.
        worker: u32,
        /// Task endpoint of the duplicated edge.
        task: u32,
    },
    /// A benefit weight was NaN or infinite.
    InvalidWeight {
        /// Worker endpoint of the edge with the bad weight.
        worker: u32,
        /// Task endpoint of the edge with the bad weight.
        task: u32,
    },
    /// A worker was declared with capacity zero (it could never participate;
    /// almost always an upstream bug, so we reject it loudly).
    ZeroCapacity {
        /// The offending worker id.
        worker: u32,
    },
    /// A task was declared with demand zero.
    ZeroDemand {
        /// The offending task id.
        task: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::WorkerOutOfRange { worker, n_workers } => {
                write!(
                    f,
                    "worker id {worker} out of range (have {n_workers} workers)"
                )
            }
            GraphError::TaskOutOfRange { task, n_tasks } => {
                write!(f, "task id {task} out of range (have {n_tasks} tasks)")
            }
            GraphError::DuplicateEdge { worker, task } => {
                write!(f, "duplicate edge (worker {worker}, task {task})")
            }
            GraphError::InvalidWeight { worker, task } => {
                write!(
                    f,
                    "non-finite benefit on edge (worker {worker}, task {task})"
                )
            }
            GraphError::ZeroCapacity { worker } => {
                write!(f, "worker {worker} has zero capacity")
            }
            GraphError::ZeroDemand { task } => write!(f, "task {task} has zero demand"),
        }
    }
}

impl std::error::Error for GraphError {}

/// One staged edge: endpoints plus the two benefit weights.
#[derive(Debug, Clone, Copy)]
struct StagedEdge {
    worker: u32,
    task: u32,
    /// Requester benefit in `[0, 1]` (quality the requester expects).
    rb: f64,
    /// Worker benefit in `[0, 1]` (utility the worker derives).
    wb: f64,
}

/// Builder for [`BipartiteGraph`].
///
/// # Example
/// ```
/// use mbta_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let w = b.add_worker(2);          // capacity 2
/// let t = b.add_task(1);            // demand 1
/// b.add_edge(w, t, 0.9, 0.4).unwrap();
/// let g = b.build().unwrap();
/// assert_eq!(g.n_workers(), 1);
/// assert_eq!(g.n_edges(), 1);
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    capacities: Vec<u32>,
    demands: Vec<u32>,
    edges: Vec<StagedEdge>,
    /// Duplicate detection; keyed by packed (worker, task).
    seen: FxHashSet<u64>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-reserved space.
    pub fn with_capacity(n_workers: usize, n_tasks: usize, n_edges: usize) -> Self {
        let mut b = Self::new();
        b.capacities.reserve(n_workers);
        b.demands.reserve(n_tasks);
        b.edges.reserve(n_edges);
        b.seen.reserve(n_edges);
        b
    }

    /// Adds a worker with the given capacity (max concurrent tasks) and
    /// returns its id. Capacity validity is checked at [`build`](Self::build).
    pub fn add_worker(&mut self, capacity: u32) -> WorkerId {
        let id = WorkerId::from_index(self.capacities.len());
        self.capacities.push(capacity);
        id
    }

    /// Adds `n` workers all with the same capacity.
    pub fn add_workers(&mut self, n: usize, capacity: u32) -> Vec<WorkerId> {
        (0..n).map(|_| self.add_worker(capacity)).collect()
    }

    /// Adds a task with the given demand (distinct workers needed) and
    /// returns its id.
    pub fn add_task(&mut self, demand: u32) -> TaskId {
        let id = TaskId::from_index(self.demands.len());
        self.demands.push(demand);
        id
    }

    /// Adds `n` tasks all with the same demand.
    pub fn add_tasks(&mut self, n: usize, demand: u32) -> Vec<TaskId> {
        (0..n).map(|_| self.add_task(demand)).collect()
    }

    /// Number of workers added so far.
    pub fn n_workers(&self) -> usize {
        self.capacities.len()
    }

    /// Number of tasks added so far.
    pub fn n_tasks(&self) -> usize {
        self.demands.len()
    }

    /// Number of edges added so far.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an eligibility edge carrying requester benefit `rb` and worker
    /// benefit `wb` (both in `[0,1]`; out-of-range finite values are clamped,
    /// non-finite values are rejected).
    pub fn add_edge(
        &mut self,
        worker: WorkerId,
        task: TaskId,
        rb: f64,
        wb: f64,
    ) -> Result<(), GraphError> {
        let (w, t) = (worker.raw(), task.raw());
        if w as usize >= self.capacities.len() {
            return Err(GraphError::WorkerOutOfRange {
                worker: w,
                n_workers: self.capacities.len() as u32,
            });
        }
        if t as usize >= self.demands.len() {
            return Err(GraphError::TaskOutOfRange {
                task: t,
                n_tasks: self.demands.len() as u32,
            });
        }
        if !rb.is_finite() || !wb.is_finite() {
            return Err(GraphError::InvalidWeight { worker: w, task: t });
        }
        let key = (u64::from(w) << 32) | u64::from(t);
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge { worker: w, task: t });
        }
        self.edges.push(StagedEdge {
            worker: w,
            task: t,
            rb: rb.clamp(0.0, 1.0),
            wb: wb.clamp(0.0, 1.0),
        });
        Ok(())
    }

    /// Finalizes construction: validates node attributes and produces the
    /// immutable CSR graph.
    pub fn build(self) -> Result<BipartiteGraph, GraphError> {
        for (i, &c) in self.capacities.iter().enumerate() {
            if c == 0 {
                return Err(GraphError::ZeroCapacity { worker: i as u32 });
            }
        }
        for (i, &d) in self.demands.iter().enumerate() {
            if d == 0 {
                return Err(GraphError::ZeroDemand { task: i as u32 });
            }
        }

        let n_w = self.capacities.len();
        let n_t = self.demands.len();
        let m = self.edges.len();

        // Counting sort by worker to build the forward CSR; edge ids are
        // assigned in forward-CSR order so `edge_worker` is monotone.
        let mut w_off = vec![0u32; n_w + 1];
        for e in &self.edges {
            w_off[e.worker as usize + 1] += 1;
        }
        for i in 0..n_w {
            w_off[i + 1] += w_off[i];
        }
        let mut cursor = w_off.clone();
        let mut edge_task = vec![0u32; m];
        let mut edge_worker = vec![0u32; m];
        let mut edge_rb = vec![0f64; m];
        let mut edge_wb = vec![0f64; m];
        for e in &self.edges {
            let slot = cursor[e.worker as usize] as usize;
            cursor[e.worker as usize] += 1;
            edge_task[slot] = e.task;
            edge_worker[slot] = e.worker;
            edge_rb[slot] = e.rb;
            edge_wb[slot] = e.wb;
        }

        // Reverse CSR: for each task, the list of incident edge ids.
        let mut t_off = vec![0u32; n_t + 1];
        for &t in &edge_task {
            t_off[t as usize + 1] += 1;
        }
        for i in 0..n_t {
            t_off[i + 1] += t_off[i];
        }
        let mut t_cursor = t_off.clone();
        let mut t_edges = vec![0u32; m];
        for (eid, &t) in edge_task.iter().enumerate() {
            let slot = t_cursor[t as usize] as usize;
            t_cursor[t as usize] += 1;
            t_edges[slot] = eid as u32;
        }

        Ok(BipartiteGraph::from_parts(
            self.capacities,
            self.demands,
            w_off,
            t_off,
            t_edges,
            edge_worker,
            edge_task,
            edge_rb,
            edge_wb,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_graph() {
        let mut b = GraphBuilder::new();
        let ws = b.add_workers(3, 1);
        let ts = b.add_tasks(2, 2);
        b.add_edge(ws[0], ts[0], 0.5, 0.6).unwrap();
        b.add_edge(ws[1], ts[0], 0.7, 0.2).unwrap();
        b.add_edge(ws[1], ts[1], 0.9, 0.9).unwrap();
        b.add_edge(ws[2], ts[1], 0.1, 0.3).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.n_workers(), 3);
        assert_eq!(g.n_tasks(), 2);
        assert_eq!(g.n_edges(), 4);
        // Forward adjacency of worker 1 covers both tasks.
        let tasks: Vec<u32> = g.worker_edges(ws[1]).map(|e| g.task_of(e).raw()).collect();
        assert_eq!(tasks, vec![0, 1]);
        // Reverse adjacency of task 1 covers workers 1 and 2.
        let workers: Vec<u32> = g.task_edges(ts[1]).map(|e| g.worker_of(e).raw()).collect();
        assert_eq!(workers, vec![1, 2]);
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker(1);
        let t = b.add_task(1);
        b.add_edge(w, t, 0.5, 0.5).unwrap();
        assert_eq!(
            b.add_edge(w, t, 0.4, 0.4),
            Err(GraphError::DuplicateEdge { worker: 0, task: 0 })
        );
    }

    #[test]
    fn out_of_range_endpoints_rejected() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker(1);
        let t = b.add_task(1);
        assert!(matches!(
            b.add_edge(WorkerId::new(5), t, 0.1, 0.1),
            Err(GraphError::WorkerOutOfRange { worker: 5, .. })
        ));
        assert!(matches!(
            b.add_edge(w, TaskId::new(9), 0.1, 0.1),
            Err(GraphError::TaskOutOfRange { task: 9, .. })
        ));
    }

    #[test]
    fn non_finite_weights_rejected_finite_clamped() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker(1);
        let t0 = b.add_task(1);
        let t1 = b.add_task(1);
        assert!(matches!(
            b.add_edge(w, t0, f64::NAN, 0.5),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            b.add_edge(w, t0, 0.5, f64::INFINITY),
            Err(GraphError::InvalidWeight { .. })
        ));
        b.add_edge(w, t0, -3.0, 2.0).unwrap(); // clamped
        b.add_edge(w, t1, 0.25, 0.75).unwrap();
        let g = b.build().unwrap();
        let e0 = g.worker_edges(w).next().unwrap();
        assert_eq!(g.rb(e0), 0.0);
        assert_eq!(g.wb(e0), 1.0);
    }

    #[test]
    fn zero_capacity_and_demand_rejected() {
        let mut b = GraphBuilder::new();
        b.add_worker(0);
        b.add_task(1);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::ZeroCapacity { worker: 0 }
        );

        let mut b = GraphBuilder::new();
        b.add_worker(1);
        b.add_task(0);
        assert_eq!(b.build().unwrap_err(), GraphError::ZeroDemand { task: 0 });
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.n_workers(), 0);
        assert_eq!(g.n_tasks(), 0);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn isolated_nodes_are_fine() {
        let mut b = GraphBuilder::new();
        b.add_workers(4, 2);
        b.add_tasks(3, 1);
        let g = b.build().unwrap();
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.worker_degree(WorkerId::new(2)), 0);
        assert_eq!(g.task_degree(TaskId::new(1)), 0);
    }

    #[test]
    fn error_display_strings() {
        let e = GraphError::DuplicateEdge { worker: 1, task: 2 };
        assert_eq!(e.to_string(), "duplicate edge (worker 1, task 2)");
        let e = GraphError::ZeroCapacity { worker: 7 };
        assert!(e.to_string().contains("worker 7"));
    }
}
