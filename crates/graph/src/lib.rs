//! `mbta-graph`: the bipartite labor-market graph.
//!
//! The abstract of the reproduced paper stresses that real labor markets are
//! *bipartite*: a worker can only take tasks it is connected to
//! (qualification, region, language, platform rules). This crate is the
//! structural substrate every algorithm runs on:
//!
//! * [`builder::GraphBuilder`] — mutable construction with validation
//!   (duplicate edges, id range checks, weight sanity),
//! * [`BipartiteGraph`] — immutable CSR storage with forward (worker→edges)
//!   and reverse (task→edges) adjacency, per-edge requester/worker benefit
//!   weights, per-worker capacities and per-task demands,
//! * [`stats`] — degree histograms, density, connectivity summaries (the
//!   "dataset statistics" table of the evaluation),
//! * [`serial`] — a compact binary format (via `bytes`) for persisting
//!   generated instances so experiments can be re-run bit-identically,
//! * [`random`] — small random-instance helpers shared by tests and benches
//!   (full workload *models* live in `mbta-workload`),
//! * [`subgraph`] — induced subgraphs with id back-maps (the batch-online
//!   engine and the incremental maintainer solve on restrictions).
//!
//! Identifiers are `u32` newtypes ([`WorkerId`], [`TaskId`], [`EdgeId`]);
//! all hot paths are dense index loops, never hash lookups.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use mbta_util::define_id;

define_id!(pub struct WorkerId, "Identifier of a worker (left side of the bipartition).");
define_id!(pub struct TaskId, "Identifier of a task (right side of the bipartition).");
define_id!(pub struct EdgeId, "Identifier of an eligibility edge between a worker and a task.");

pub mod builder;
pub mod csr;
pub mod random;
pub mod serial;
pub mod stats;
pub mod subgraph;

pub use builder::{GraphBuilder, GraphError};
pub use csr::BipartiteGraph;
pub use stats::GraphStats;
