//! Small random-instance helpers shared by tests and microbenches.
//!
//! These are deliberately simple (uniform weights, Erdős–Rényi-style edges).
//! The *workload models* that reproduce the paper's evaluation profiles —
//! Zipf pay, power-law degrees, skill vectors — live in `mbta-workload`;
//! this module exists so the lower-level crates can generate instances
//! without a dependency cycle.

use crate::builder::GraphBuilder;
use crate::{BipartiteGraph, TaskId, WorkerId};
use mbta_util::SplitMix64;

/// Parameters for [`random_bipartite`].
#[derive(Debug, Clone, Copy)]
pub struct RandomGraphSpec {
    /// Number of workers.
    pub n_workers: usize,
    /// Number of tasks.
    pub n_tasks: usize,
    /// Average worker degree (edges are sampled without replacement until
    /// `n_workers * avg_degree` distinct pairs exist, capped at the complete
    /// graph).
    pub avg_degree: f64,
    /// Capacity assigned to every worker.
    pub capacity: u32,
    /// Demand assigned to every task.
    pub demand: u32,
}

impl Default for RandomGraphSpec {
    fn default() -> Self {
        Self {
            n_workers: 100,
            n_tasks: 50,
            avg_degree: 8.0,
            capacity: 1,
            demand: 1,
        }
    }
}

/// Generates a uniform random bipartite instance with i.i.d. uniform
/// `rb`/`wb` weights. Deterministic in `seed`.
pub fn random_bipartite(spec: &RandomGraphSpec, seed: u64) -> BipartiteGraph {
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::with_capacity(
        spec.n_workers,
        spec.n_tasks,
        (spec.n_workers as f64 * spec.avg_degree) as usize,
    );
    let ws = b.add_workers(spec.n_workers, spec.capacity);
    let ts = b.add_tasks(spec.n_tasks, spec.demand);
    if ws.is_empty() || ts.is_empty() {
        return b.build().expect("validated");
    }

    let want = ((spec.n_workers as f64 * spec.avg_degree) as u64)
        .min(spec.n_workers as u64 * spec.n_tasks as u64) as usize;
    let mut added = 0usize;
    // Rejection sampling on the duplicate check; at < 50% density the
    // expected retries per edge are < 2.
    while added < want {
        let w = ws[rng.next_index(ws.len())];
        let t = ts[rng.next_index(ts.len())];
        let rb = rng.next_f64();
        let wb = rng.next_f64();
        if b.add_edge(w, t, rb, wb).is_ok() {
            added += 1;
        }
    }
    b.build().expect("validated")
}

/// Generates a *complete* small bipartite graph with uniform weights —
/// the shape the dense Hungarian solver is cross-validated on.
pub fn complete_bipartite(n_workers: usize, n_tasks: usize, seed: u64) -> BipartiteGraph {
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::with_capacity(n_workers, n_tasks, n_workers * n_tasks);
    let ws = b.add_workers(n_workers, 1);
    let ts = b.add_tasks(n_tasks, 1);
    for &w in &ws {
        for &t in &ts {
            b.add_edge(w, t, rng.next_f64(), rng.next_f64())
                .expect("no duplicates in nested loop");
        }
    }
    b.build().expect("validated")
}

/// Builds a graph directly from an explicit edge list — the ergonomic
/// constructor tests use. Panics on invalid input (tests only).
pub fn from_edges(
    capacities: &[u32],
    demands: &[u32],
    edges: &[(u32, u32, f64, f64)],
) -> BipartiteGraph {
    let mut b = GraphBuilder::with_capacity(capacities.len(), demands.len(), edges.len());
    for &c in capacities {
        b.add_worker(c);
    }
    for &d in demands {
        b.add_task(d);
    }
    for &(w, t, rb, wb) in edges {
        b.add_edge(WorkerId::new(w), TaskId::new(t), rb, wb)
            .expect("valid test edge");
    }
    b.build().expect("valid test graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn random_graph_hits_target_degree() {
        let spec = RandomGraphSpec {
            n_workers: 200,
            n_tasks: 100,
            avg_degree: 6.0,
            capacity: 2,
            demand: 3,
        };
        let g = random_bipartite(&spec, 1);
        assert_eq!(g.n_workers(), 200);
        assert_eq!(g.n_tasks(), 100);
        assert_eq!(g.n_edges(), 1200);
        let s = GraphStats::compute(&g);
        assert!((s.worker_degree_mean - 6.0).abs() < 1e-9);
    }

    #[test]
    fn random_graph_deterministic_in_seed() {
        let spec = RandomGraphSpec::default();
        let a = random_bipartite(&spec, 7);
        let b = random_bipartite(&spec, 7);
        let c = random_bipartite(&spec, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_capped_at_complete_graph() {
        let spec = RandomGraphSpec {
            n_workers: 4,
            n_tasks: 3,
            avg_degree: 100.0,
            capacity: 1,
            demand: 1,
        };
        let g = random_bipartite(&spec, 2);
        assert_eq!(g.n_edges(), 12);
    }

    #[test]
    fn complete_graph_shape() {
        let g = complete_bipartite(5, 4, 3);
        assert_eq!(g.n_edges(), 20);
        for w in g.workers() {
            assert_eq!(g.worker_degree(w), 4);
        }
    }

    #[test]
    fn empty_sides_handled() {
        let spec = RandomGraphSpec {
            n_workers: 0,
            n_tasks: 10,
            avg_degree: 3.0,
            capacity: 1,
            demand: 1,
        };
        let g = random_bipartite(&spec, 4);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn from_edges_builds() {
        let g = from_edges(&[1, 1], &[1], &[(0, 0, 0.5, 0.5), (1, 0, 0.25, 0.75)]);
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.task_degree(TaskId::new(0)), 2);
    }
}
