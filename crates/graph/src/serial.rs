//! Compact binary (de)serialization of labor-market instances.
//!
//! Generated instances are persisted so an experiment can be re-run
//! bit-identically without re-generating (and so large instances can be
//! shared between the criterion benches and the table harness). The format
//! is deliberately simple:
//!
//! ```text
//! magic   "MBTA"           4 bytes
//! version u32 LE           (currently 1)
//! n_w     u32 LE
//! n_t     u32 LE
//! m       u32 LE
//! caps    n_w × u32 LE
//! dems    n_t × u32 LE
//! edges   m × { worker u32, task u32, rb f64, wb f64 }  (little-endian)
//! ```
//!
//! Weights travel as raw IEEE-754 bits, so round-trips are exact.

use crate::builder::{GraphBuilder, GraphError};
use crate::{BipartiteGraph, TaskId, WorkerId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"MBTA";
const VERSION: u32 = 1;

/// Errors from [`read_graph`].
#[derive(Debug)]
pub enum SerialError {
    /// The buffer did not start with the `MBTA` magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer ended before the declared payload.
    Truncated,
    /// The payload decoded but failed graph validation.
    Graph(GraphError),
}

impl fmt::Display for SerialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerialError::BadMagic => write!(f, "bad magic (not an MBTA graph file)"),
            SerialError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            SerialError::Truncated => write!(f, "truncated graph file"),
            SerialError::Graph(e) => write!(f, "invalid graph payload: {e}"),
        }
    }
}

impl std::error::Error for SerialError {}

impl From<GraphError> for SerialError {
    fn from(e: GraphError) -> Self {
        SerialError::Graph(e)
    }
}

/// Serializes a graph into a freshly allocated buffer.
pub fn write_graph(g: &BipartiteGraph) -> Bytes {
    let m = g.n_edges();
    let mut buf = BytesMut::with_capacity(16 + 4 * (g.n_workers() + g.n_tasks()) + 24 * m);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(g.n_workers() as u32);
    buf.put_u32_le(g.n_tasks() as u32);
    buf.put_u32_le(m as u32);
    for &c in g.capacities() {
        buf.put_u32_le(c);
    }
    for &d in g.demands() {
        buf.put_u32_le(d);
    }
    for e in g.edges() {
        buf.put_u32_le(g.worker_of(e).raw());
        buf.put_u32_le(g.task_of(e).raw());
        buf.put_f64_le(g.rb(e));
        buf.put_f64_le(g.wb(e));
    }
    buf.freeze()
}

/// Deserializes a graph previously written by [`write_graph`].
pub fn read_graph(mut buf: impl Buf) -> Result<BipartiteGraph, SerialError> {
    if buf.remaining() < 20 {
        return Err(SerialError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SerialError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(SerialError::BadVersion(version));
    }
    let n_w = buf.get_u32_le() as usize;
    let n_t = buf.get_u32_le() as usize;
    let m = buf.get_u32_le() as usize;

    if buf.remaining() < 4 * (n_w + n_t) {
        return Err(SerialError::Truncated);
    }
    let mut b = GraphBuilder::with_capacity(n_w, n_t, m);
    for _ in 0..n_w {
        b.add_worker(buf.get_u32_le());
    }
    for _ in 0..n_t {
        b.add_task(buf.get_u32_le());
    }
    if buf.remaining() < 24 * m {
        return Err(SerialError::Truncated);
    }
    for _ in 0..m {
        let w = buf.get_u32_le();
        let t = buf.get_u32_le();
        let rb = buf.get_f64_le();
        let wb = buf.get_f64_le();
        b.add_edge(WorkerId::new(w), TaskId::new(t), rb, wb)?;
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_bipartite, RandomGraphSpec};

    #[test]
    fn roundtrip_random_graph() {
        let g = random_bipartite(
            &RandomGraphSpec {
                n_workers: 50,
                n_tasks: 30,
                avg_degree: 5.0,
                capacity: 2,
                demand: 3,
            },
            11,
        );
        let bytes = write_graph(&g);
        let g2 = read_graph(bytes).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        let g2 = read_graph(write_graph(&g)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn bad_magic_rejected() {
        let err =
            read_graph(Bytes::from_static(b"NOPE\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0")).unwrap_err();
        assert!(matches!(err, SerialError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let g = GraphBuilder::new().build().unwrap();
        let mut bytes = BytesMut::from(&write_graph(&g)[..]);
        bytes[4] = 99; // version field low byte
        let err = read_graph(bytes.freeze()).unwrap_err();
        assert!(matches!(err, SerialError::BadVersion(99)));
    }

    #[test]
    fn truncation_detected() {
        let g = random_bipartite(&RandomGraphSpec::default(), 1);
        let bytes = write_graph(&g);
        for cut in [3usize, 10, 21, bytes.len() - 1] {
            let err = read_graph(bytes.slice(..cut)).unwrap_err();
            assert!(matches!(err, SerialError::Truncated), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn corrupt_payload_fails_validation() {
        // Hand-build a payload with a duplicate edge.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(1); // workers
        buf.put_u32_le(1); // tasks
        buf.put_u32_le(2); // edges
        buf.put_u32_le(1); // capacity
        buf.put_u32_le(1); // demand
        for _ in 0..2 {
            buf.put_u32_le(0);
            buf.put_u32_le(0);
            buf.put_f64_le(0.5);
            buf.put_f64_le(0.5);
        }
        let err = read_graph(buf.freeze()).unwrap_err();
        assert!(matches!(
            err,
            SerialError::Graph(GraphError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn weights_roundtrip_exactly() {
        let mut b = GraphBuilder::new();
        let w = b.add_worker(1);
        let t = b.add_task(1);
        let rb = 0.123_456_789_012_345_68;
        let wb = 1.0 - f64::EPSILON;
        b.add_edge(w, t, rb, wb).unwrap();
        let g = b.build().unwrap();
        let g2 = read_graph(write_graph(&g)).unwrap();
        let e = g2.edges().next().unwrap();
        assert_eq!(g2.rb(e), rb);
        assert_eq!(g2.wb(e), wb);
    }
}
