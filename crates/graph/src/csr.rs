//! Immutable CSR storage for the bipartite labor-market graph.
//!
//! Layout (all arrays dense, `u32`/`f64`):
//!
//! * forward CSR: `w_off[w]..w_off[w+1]` is the contiguous *edge id* range of
//!   worker `w`. Edge ids are assigned in this order, so the forward side
//!   needs no indirection array — `edge_task[eid]` and the weight arrays are
//!   indexed directly.
//! * reverse CSR: `t_off[t]..t_off[t+1]` indexes into `t_edges`, which holds
//!   edge ids incident to task `t` (in increasing worker order).
//!
//! This "edges sorted by left endpoint, right side via an id list" layout is
//! the smallest representation that gives O(deg) iteration from both sides,
//! which is what the matching algorithms need.

use crate::{EdgeId, TaskId, WorkerId};

/// Destructured graph: `(capacities, demands, edges as (worker, task, rb, wb))`.
pub type EdgeListParts = (Vec<u32>, Vec<u32>, Vec<(u32, u32, f64, f64)>);

/// Immutable bipartite labor-market graph. Construct via
/// [`GraphBuilder`](crate::builder::GraphBuilder) or
/// [`serial::read_graph`](crate::serial::read_graph).
#[derive(Debug, Clone, PartialEq)]
pub struct BipartiteGraph {
    capacities: Vec<u32>,
    demands: Vec<u32>,
    w_off: Vec<u32>,
    t_off: Vec<u32>,
    t_edges: Vec<u32>,
    edge_worker: Vec<u32>,
    edge_task: Vec<u32>,
    edge_rb: Vec<f64>,
    edge_wb: Vec<f64>,
}

impl BipartiteGraph {
    /// Assembles a graph from raw parts. Crate-internal: callers are the
    /// builder and the deserializer, both of which guarantee consistency.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        capacities: Vec<u32>,
        demands: Vec<u32>,
        w_off: Vec<u32>,
        t_off: Vec<u32>,
        t_edges: Vec<u32>,
        edge_worker: Vec<u32>,
        edge_task: Vec<u32>,
        edge_rb: Vec<f64>,
        edge_wb: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(w_off.len(), capacities.len() + 1);
        debug_assert_eq!(t_off.len(), demands.len() + 1);
        debug_assert_eq!(t_edges.len(), edge_task.len());
        debug_assert_eq!(edge_worker.len(), edge_task.len());
        debug_assert_eq!(edge_rb.len(), edge_task.len());
        debug_assert_eq!(edge_wb.len(), edge_task.len());
        Self {
            capacities,
            demands,
            w_off,
            t_off,
            t_edges,
            edge_worker,
            edge_task,
            edge_rb,
            edge_wb,
        }
    }

    /// Number of workers (left side).
    #[inline]
    pub fn n_workers(&self) -> usize {
        self.capacities.len()
    }

    /// Number of tasks (right side).
    #[inline]
    pub fn n_tasks(&self) -> usize {
        self.demands.len()
    }

    /// Number of eligibility edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edge_task.len()
    }

    /// Capacity (max concurrent tasks) of a worker.
    #[inline]
    pub fn capacity(&self, w: WorkerId) -> u32 {
        self.capacities[w.index()]
    }

    /// Demand (distinct workers needed) of a task.
    #[inline]
    pub fn demand(&self, t: TaskId) -> u32 {
        self.demands[t.index()]
    }

    /// All worker capacities, indexed by worker id.
    #[inline]
    pub fn capacities(&self) -> &[u32] {
        &self.capacities
    }

    /// All task demands, indexed by task id.
    #[inline]
    pub fn demands(&self) -> &[u32] {
        &self.demands
    }

    /// Worker endpoint of an edge.
    #[inline]
    pub fn worker_of(&self, e: EdgeId) -> WorkerId {
        WorkerId::new(self.edge_worker[e.index()])
    }

    /// Task endpoint of an edge.
    #[inline]
    pub fn task_of(&self, e: EdgeId) -> TaskId {
        TaskId::new(self.edge_task[e.index()])
    }

    /// Requester benefit of an edge (expected quality), in `[0, 1]`.
    #[inline]
    pub fn rb(&self, e: EdgeId) -> f64 {
        self.edge_rb[e.index()]
    }

    /// Worker benefit of an edge (worker utility), in `[0, 1]`.
    #[inline]
    pub fn wb(&self, e: EdgeId) -> f64 {
        self.edge_wb[e.index()]
    }

    /// Raw requester-benefit array, indexed by edge id.
    #[inline]
    pub fn rb_slice(&self) -> &[f64] {
        &self.edge_rb
    }

    /// Raw worker-benefit array, indexed by edge id.
    #[inline]
    pub fn wb_slice(&self) -> &[f64] {
        &self.edge_wb
    }

    /// Raw edge→task endpoint array, indexed by edge id.
    #[inline]
    pub fn edge_tasks(&self) -> &[u32] {
        &self.edge_task
    }

    /// Raw edge→worker endpoint array, indexed by edge id.
    #[inline]
    pub fn edge_workers(&self) -> &[u32] {
        &self.edge_worker
    }

    /// Degree (number of eligible tasks) of a worker.
    #[inline]
    pub fn worker_degree(&self, w: WorkerId) -> usize {
        (self.w_off[w.index() + 1] - self.w_off[w.index()]) as usize
    }

    /// Degree (number of eligible workers) of a task.
    #[inline]
    pub fn task_degree(&self, t: TaskId) -> usize {
        (self.t_off[t.index() + 1] - self.t_off[t.index()]) as usize
    }

    /// Iterates the edge ids incident to a worker (in increasing task order
    /// of insertion).
    #[inline]
    pub fn worker_edges(&self, w: WorkerId) -> impl Iterator<Item = EdgeId> + '_ {
        (self.w_off[w.index()]..self.w_off[w.index() + 1]).map(EdgeId::new)
    }

    /// Edge-id range of a worker as raw bounds; the matching inner loops use
    /// this to iterate without iterator overhead.
    #[inline]
    pub fn worker_edge_range(&self, w: WorkerId) -> std::ops::Range<usize> {
        self.w_off[w.index()] as usize..self.w_off[w.index() + 1] as usize
    }

    /// Iterates the edge ids incident to a task.
    #[inline]
    pub fn task_edges(&self, t: TaskId) -> impl Iterator<Item = EdgeId> + '_ {
        self.t_edges[self.t_off[t.index()] as usize..self.t_off[t.index() + 1] as usize]
            .iter()
            .map(|&e| EdgeId::new(e))
    }

    /// Iterates all worker ids.
    #[inline]
    pub fn workers(&self) -> impl Iterator<Item = WorkerId> {
        (0..self.n_workers() as u32).map(WorkerId::new)
    }

    /// Iterates all task ids.
    #[inline]
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> {
        (0..self.n_tasks() as u32).map(TaskId::new)
    }

    /// Iterates all edge ids.
    #[inline]
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.n_edges() as u32).map(EdgeId::new)
    }

    /// Looks up the edge between `w` and `t`, if any (O(deg(w)) scan —
    /// fine off the hot path; algorithms never need point lookups).
    pub fn find_edge(&self, w: WorkerId, t: TaskId) -> Option<EdgeId> {
        self.worker_edges(w).find(|&e| self.task_of(e) == t)
    }

    /// Total capacity over all workers (an upper bound on assignment size).
    pub fn total_capacity(&self) -> u64 {
        self.capacities.iter().map(|&c| u64::from(c)).sum()
    }

    /// Total demand over all tasks (the other upper bound).
    pub fn total_demand(&self) -> u64 {
        self.demands.iter().map(|&d| u64::from(d)).sum()
    }

    /// Destructures into `(capacities, demands, edge list)` triples — used by
    /// the serializer and by tests that want to rebuild a permuted instance.
    pub fn to_edge_list(&self) -> EdgeListParts {
        let edges = (0..self.n_edges())
            .map(|e| {
                (
                    self.edge_worker[e],
                    self.edge_task[e],
                    self.edge_rb[e],
                    self.edge_wb[e],
                )
            })
            .collect();
        (self.capacities.clone(), self.demands.clone(), edges)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::{TaskId, WorkerId};

    fn diamond() -> crate::BipartiteGraph {
        // 2 workers x 2 tasks, all 4 edges.
        let mut b = GraphBuilder::new();
        let ws = b.add_workers(2, 1);
        let ts = b.add_tasks(2, 1);
        for (i, &w) in ws.iter().enumerate() {
            for (j, &t) in ts.iter().enumerate() {
                b.add_edge(w, t, 0.1 * (i + 1) as f64, 0.2 * (j + 1) as f64)
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn adjacency_is_consistent_both_sides() {
        let g = diamond();
        for e in g.edges() {
            let w = g.worker_of(e);
            let t = g.task_of(e);
            assert!(g.worker_edges(w).any(|x| x == e));
            assert!(g.task_edges(t).any(|x| x == e));
        }
        assert_eq!(g.worker_degree(WorkerId::new(0)), 2);
        assert_eq!(g.task_degree(TaskId::new(1)), 2);
    }

    #[test]
    fn find_edge() {
        let g = diamond();
        let e = g.find_edge(WorkerId::new(1), TaskId::new(0)).unwrap();
        assert_eq!(g.worker_of(e), WorkerId::new(1));
        assert_eq!(g.task_of(e), TaskId::new(0));
        // Exhaustive graph: every pair present.
        assert!(g.find_edge(WorkerId::new(0), TaskId::new(1)).is_some());
    }

    #[test]
    fn totals() {
        let mut b = GraphBuilder::new();
        b.add_worker(3);
        b.add_worker(2);
        b.add_task(4);
        let g = b.build().unwrap();
        assert_eq!(g.total_capacity(), 5);
        assert_eq!(g.total_demand(), 4);
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = diamond();
        let (caps, dems, edges) = g.to_edge_list();
        let mut b = GraphBuilder::new();
        for c in caps {
            b.add_worker(c);
        }
        for d in dems {
            b.add_task(d);
        }
        for (w, t, rb, wb) in edges {
            b.add_edge(WorkerId::new(w), TaskId::new(t), rb, wb)
                .unwrap();
        }
        let g2 = b.build().unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_range_matches_iterator() {
        let g = diamond();
        for w in g.workers() {
            let via_iter: Vec<usize> = g.worker_edges(w).map(|e| e.index()).collect();
            let via_range: Vec<usize> = g.worker_edge_range(w).collect();
            assert_eq!(via_iter, via_range);
        }
    }
}
