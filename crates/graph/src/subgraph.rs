//! Induced subgraphs with id mappings.
//!
//! Several layers need to solve on a *restriction* of the market — the
//! batch-online engine solves each arrival batch against remaining demand,
//! the incremental maintainer reasons about the active sub-market — and
//! hand-rolling the node/edge remapping at each call site is exactly the
//! kind of off-by-one factory this module exists to close. A
//! [`SubgraphSpec`] selects workers (with capacity overrides), tasks (with
//! demand overrides) and an edge predicate; [`induce`] builds the small
//! graph plus the maps back to the parent's ids.

use crate::builder::GraphBuilder;
use crate::{BipartiteGraph, EdgeId, TaskId, WorkerId};

/// Selection for [`induce`].
pub struct SubgraphSpec<'a> {
    /// Selected workers (parent ids) with the capacity each should have in
    /// the subgraph (e.g. remaining capacity). Zero-capacity entries are
    /// dropped (the builder rejects them, and they cannot matter).
    pub workers: &'a [(WorkerId, u32)],
    /// Selected tasks (parent ids) with subgraph demands; zero-demand
    /// entries are dropped.
    pub tasks: &'a [(TaskId, u32)],
}

/// An induced subgraph plus the maps back to parent ids.
pub struct Subgraph {
    /// The induced graph.
    pub graph: BipartiteGraph,
    /// Subgraph worker id → parent worker id.
    pub worker_back: Vec<WorkerId>,
    /// Subgraph task id → parent task id.
    pub task_back: Vec<TaskId>,
    /// Subgraph edge id → parent edge id.
    pub edge_back: Vec<EdgeId>,
}

impl Subgraph {
    /// Maps a subgraph edge back to the parent edge.
    pub fn parent_edge(&self, e: EdgeId) -> EdgeId {
        self.edge_back[e.index()]
    }

    /// Extracts parent-edge weights for the subgraph's edges.
    pub fn project_weights(&self, parent_weights: &[f64]) -> Vec<f64> {
        self.edge_back
            .iter()
            .map(|e| parent_weights[e.index()])
            .collect()
    }
}

/// Builds the subgraph induced by the spec: it contains every parent edge
/// whose endpoints are both selected (with positive capacity/demand) and
/// which passes `edge_filter`.
///
/// # Panics
/// Panics if a worker or task id appears twice in the spec, or is out of
/// range for the parent graph.
pub fn induce(
    parent: &BipartiteGraph,
    spec: &SubgraphSpec<'_>,
    mut edge_filter: impl FnMut(EdgeId) -> bool,
) -> Subgraph {
    // Parent-id → subgraph-id maps (u32::MAX = not selected).
    const NONE: u32 = u32::MAX;
    let mut w_map = vec![NONE; parent.n_workers()];
    let mut t_map = vec![NONE; parent.n_tasks()];

    let mut b = GraphBuilder::new();
    let mut worker_back = Vec::new();
    for &(w, cap) in spec.workers {
        if cap == 0 {
            continue;
        }
        assert!(
            w_map[w.index()] == NONE,
            "worker {w} selected twice in subgraph spec"
        );
        let sub = b.add_worker(cap);
        w_map[w.index()] = sub.raw();
        worker_back.push(w);
    }
    let mut task_back = Vec::new();
    for &(t, dem) in spec.tasks {
        if dem == 0 {
            continue;
        }
        assert!(
            t_map[t.index()] == NONE,
            "task {t} selected twice in subgraph spec"
        );
        let sub = b.add_task(dem);
        t_map[t.index()] = sub.raw();
        task_back.push(t);
    }

    let mut edge_back = Vec::new();
    // Iterate in the *selected worker* order so subgraph edge ids follow
    // the builder's forward-CSR order deterministically.
    for &w in &worker_back {
        for e in parent.worker_edges(w) {
            let t = parent.task_of(e);
            if t_map[t.index()] == NONE || !edge_filter(e) {
                continue;
            }
            b.add_edge(
                WorkerId::new(w_map[w.index()]),
                TaskId::new(t_map[t.index()]),
                parent.rb(e),
                parent.wb(e),
            )
            .expect("parent edges are duplicate-free");
            edge_back.push(e);
        }
    }
    Subgraph {
        graph: b.build().expect("induced graph is valid"),
        worker_back,
        task_back,
        edge_back,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::from_edges;

    fn parent() -> BipartiteGraph {
        from_edges(
            &[2, 1, 1],
            &[1, 2],
            &[
                (0, 0, 0.1, 0.2),
                (0, 1, 0.3, 0.4),
                (1, 0, 0.5, 0.6),
                (2, 1, 0.7, 0.8),
            ],
        )
    }

    #[test]
    fn induces_selected_portion() {
        let g = parent();
        let sub = induce(
            &g,
            &SubgraphSpec {
                workers: &[(WorkerId::new(0), 1), (WorkerId::new(2), 1)],
                tasks: &[(TaskId::new(1), 2)],
            },
            |_| true,
        );
        // Edges (0,1) and (2,1) survive.
        assert_eq!(sub.graph.n_workers(), 2);
        assert_eq!(sub.graph.n_tasks(), 1);
        assert_eq!(sub.graph.n_edges(), 2);
        // Weights carried over; back-maps correct.
        let e0 = EdgeId::new(0);
        assert_eq!(sub.graph.rb(e0), 0.3);
        assert_eq!(sub.parent_edge(e0), EdgeId::new(1));
        assert_eq!(sub.worker_back, vec![WorkerId::new(0), WorkerId::new(2)]);
        assert_eq!(sub.task_back, vec![TaskId::new(1)]);
        // Capacity override applied (parent had 2, we asked for 1).
        assert_eq!(sub.graph.capacity(WorkerId::new(0)), 1);
    }

    #[test]
    fn zero_capacity_entries_dropped() {
        let g = parent();
        let sub = induce(
            &g,
            &SubgraphSpec {
                workers: &[(WorkerId::new(0), 0), (WorkerId::new(1), 1)],
                tasks: &[(TaskId::new(0), 1), (TaskId::new(1), 0)],
            },
            |_| true,
        );
        assert_eq!(sub.graph.n_workers(), 1);
        assert_eq!(sub.graph.n_tasks(), 1);
        assert_eq!(sub.graph.n_edges(), 1); // only (1, 0)
        assert_eq!(sub.parent_edge(EdgeId::new(0)), EdgeId::new(2));
    }

    #[test]
    fn edge_filter_applies() {
        let g = parent();
        let sub = induce(
            &g,
            &SubgraphSpec {
                workers: &[(WorkerId::new(0), 2)],
                tasks: &[(TaskId::new(0), 1), (TaskId::new(1), 2)],
            },
            |e| g.rb(e) > 0.2,
        );
        assert_eq!(sub.graph.n_edges(), 1); // (0,1) with rb 0.3
    }

    #[test]
    fn project_weights_follows_edge_back() {
        let g = parent();
        let sub = induce(
            &g,
            &SubgraphSpec {
                workers: &[(WorkerId::new(1), 1), (WorkerId::new(2), 1)],
                tasks: &[(TaskId::new(0), 1), (TaskId::new(1), 1)],
            },
            |_| true,
        );
        let parent_weights = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(sub.project_weights(&parent_weights), vec![30.0, 40.0]);
    }

    #[test]
    #[should_panic(expected = "selected twice")]
    fn duplicate_selection_panics() {
        let g = parent();
        induce(
            &g,
            &SubgraphSpec {
                workers: &[(WorkerId::new(0), 1), (WorkerId::new(0), 1)],
                tasks: &[],
            },
            |_| true,
        );
    }

    #[test]
    fn empty_spec_gives_empty_graph() {
        let g = parent();
        let sub = induce(
            &g,
            &SubgraphSpec {
                workers: &[],
                tasks: &[],
            },
            |_| true,
        );
        assert_eq!(sub.graph.n_workers(), 0);
        assert_eq!(sub.graph.n_edges(), 0);
    }
}
