//! Command implementations.

use crate::args::{
    Command, FallbackMode, FollowOpts, RouteOpts, SendOpts, ServeOpts, ShardWorkerOpts, USAGE,
};
use mbta_core::algorithms::solve;
use mbta_core::budget::{greedy_budgeted, lagrangian_budgeted};
use mbta_core::engine::{solve_robust, EngineConfig, EngineError, QualityTier};
use mbta_core::evaluate::Evaluation;
use mbta_core::frontier::lambda_sweep;
use mbta_core::maxmin::maxmin_with_weights;
use mbta_core::online::run_online;
use mbta_core::report::AssignmentReport;
use mbta_graph::serial::{read_graph, write_graph};
use mbta_graph::stats::GraphStats;
use mbta_graph::BipartiteGraph;
use mbta_market::benefit::edge_weights;
use mbta_market::{BenefitParams, Combiner};
use mbta_matching::kbest::k_best_bmatchings;
use mbta_net::{
    send_events, Client, NetConfig, NetIngress, Reply, Request, Role, StatusInfo, StatusServer,
};
use mbta_service::{
    recover, Arrival, BatchConfig, BatchStats, BenefitDrift, BudgetMode, Decision, DecisionSink,
    DeferBackoff, DispatchService, DurableStore, NullSink, OfferOutcome, OnlineConfig,
    RecoveredState, ServiceConfig, ServiceReport, ShardPlan, StoreConfig, WriteSink,
};
use mbta_store::{heartbeat_age, heartbeat_touch, FollowerState, TailStatus, WalTail};
use mbta_telemetry::{MetricValue, RegistryDiff, Snapshot};
use mbta_util::table::{fnum, Table};
use mbta_workload::faults::adversarial_instance;
use mbta_workload::trace::TraceSpec;
use mbta_workload::{TraceFile, WorkloadSpec};
use std::collections::BTreeMap;
use std::error::Error;
use std::fs;
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::thread;
use std::time::{Duration, Instant};

/// Runs a parsed command.
pub fn run(cmd: Command) -> Result<(), Box<dyn Error>> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Gen {
            profile,
            workers,
            tasks,
            degree,
            dims,
            seed,
            out,
        } => {
            let spec = WorkloadSpec {
                profile,
                n_workers: workers,
                n_tasks: tasks,
                avg_worker_degree: degree,
                skill_dims: dims,
                seed,
            };
            let g = spec.generate().realize(&BenefitParams::default())?;
            fs::write(&out, write_graph(&g))?;
            println!(
                "wrote {}: {} workers, {} tasks, {} edges ({} profile, seed {})",
                out.display(),
                g.n_workers(),
                g.n_tasks(),
                g.n_edges(),
                profile.name(),
                seed
            );
            Ok(())
        }
        Command::Stats { file } => {
            // A telemetry snapshot (as written by `serve --metrics-out`) is
            // Prometheus text with `# TYPE` headers; anything else is a
            // persisted graph instance.
            let bytes = fs::read(&file)?;
            if let Ok(text) = std::str::from_utf8(&bytes) {
                if text.contains("# TYPE ") {
                    let snap = Snapshot::parse_prometheus(text).map_err(|e| {
                        format!("cannot parse metrics snapshot {}: {e}", file.display())
                    })?;
                    print!("{}", render_metrics(&file, &snap));
                    return Ok(());
                }
            }
            let g = read_graph(&bytes[..])?;
            let s = GraphStats::compute(&g);
            let mut t = Table::new(format!("stats: {}", file.display()), &["metric", "value"]);
            let rows: Vec<(&str, String)> = vec![
                ("workers", s.n_workers.to_string()),
                ("tasks", s.n_tasks.to_string()),
                ("edges", s.n_edges.to_string()),
                ("density %", fnum(s.density * 100.0, 3)),
                ("worker degree mean", fnum(s.worker_degree_mean, 2)),
                ("worker degree max", s.worker_degree_max.to_string()),
                ("task degree mean", fnum(s.task_degree_mean, 2)),
                ("task degree max", s.task_degree_max.to_string()),
                ("isolated workers", s.isolated_workers.to_string()),
                ("isolated tasks", s.isolated_tasks.to_string()),
                ("total capacity", s.total_capacity.to_string()),
                ("total demand", s.total_demand.to_string()),
                ("mean requester benefit", fnum(s.mean_rb, 4)),
                ("mean worker benefit", fnum(s.mean_wb, 4)),
                ("connected components", s.components.to_string()),
            ];
            for (k, v) in rows {
                t.row(vec![k.to_string(), v]);
            }
            print!("{}", t.render());
            Ok(())
        }
        Command::Solve {
            file,
            algorithm,
            combiner,
            pairs,
            deadline_ms,
            fallback,
        } => {
            let g = load(&file)?;
            let robust = deadline_ms.is_some() || fallback.is_some();
            let start = Instant::now();
            let (m, tier) = if robust {
                // Route through the fault-tolerant engine: --fallback picks
                // the degradation policy, --deadline-ms bounds the solve.
                // --algorithm is ignored here (the engine picks its chain).
                let weights = edge_weights(&g, combiner);
                let mut cfg = match fallback {
                    Some(FallbackMode::Chain) => EngineConfig::new(),
                    // `--fallback none` and bare `--deadline-ms` both run
                    // exact-only; only the former makes degradation fatal.
                    Some(FallbackMode::None) | None => EngineConfig::new().exact_only(),
                };
                if let Some(ms) = deadline_ms {
                    cfg = cfg.with_deadline_ms(ms);
                }
                let sol = solve_robust(&g, &weights, &cfg)?;
                if fallback == Some(FallbackMode::None) && sol.tier < QualityTier::Exact {
                    return Err(format!(
                        "solve degraded to tier '{}' under --fallback none \
                         (exact tier required; raise --deadline-ms or use --fallback chain)",
                        sol.tier
                    )
                    .into());
                }
                (sol.matching, Some(sol.tier))
            } else {
                (solve(&g, combiner, algorithm), None)
            };
            let elapsed = start.elapsed();
            m.validate(&g)?;
            let ev = Evaluation::compute(&g, &m, combiner);
            match tier {
                Some(t) => println!(
                    "robust engine under {:?}: {} pairs in {:.2?} [tier: {t}]",
                    combiner,
                    m.len(),
                    elapsed
                ),
                None => println!(
                    "{} under {:?}: {} pairs in {:.2?}",
                    algorithm.name(),
                    combiner,
                    m.len(),
                    elapsed
                ),
            }
            println!("  total mutual benefit : {:.3}", ev.total_mb);
            println!("  requester side       : {:.3}", ev.total_rb);
            println!("  worker side          : {:.3}", ev.total_wb);
            println!("  min edge benefit     : {:.4}", ev.min_edge_mb);
            println!(
                "  demand coverage      : {:.1}%",
                ev.demand_coverage * 100.0
            );
            println!(
                "  worker participation : {:.1}%",
                ev.worker_participation * 100.0
            );
            if pairs {
                for &e in &m.edges {
                    println!(
                        "  w{} -> t{}  (rb {:.3}, wb {:.3})",
                        g.worker_of(e).raw(),
                        g.task_of(e).raw(),
                        g.rb(e),
                        g.wb(e)
                    );
                }
            }
            Ok(())
        }
        Command::FaultCampaign {
            instances,
            deadline_ms,
            seed,
        } => {
            println!(
                "fault-injection campaign: {instances} instances, \
                 {deadline_ms} ms deadline, base seed {seed}"
            );
            let mut injected: BTreeMap<&'static str, usize> = BTreeMap::new();
            let mut tiers: BTreeMap<&'static str, usize> = BTreeMap::new();
            let mut errors: BTreeMap<&'static str, usize> = BTreeMap::new();
            let (mut solved, mut rejected) = (0usize, 0usize);
            let start = Instant::now();
            for i in 0..instances {
                let inst = adversarial_instance(seed.wrapping_add(i as u64));
                for k in &inst.injected {
                    *injected.entry(k.name()).or_insert(0) += 1;
                }
                let cfg = EngineConfig::new().with_deadline_ms(deadline_ms);
                match solve_robust(&inst.graph, &inst.weights, &cfg) {
                    Ok(sol) => {
                        sol.matching.validate(&inst.graph).map_err(|e| {
                            format!("seed {}: engine returned invalid matching: {e}", inst.seed)
                        })?;
                        *tiers.entry(sol.tier.name()).or_insert(0) += 1;
                        solved += 1;
                    }
                    Err(e) => {
                        *errors.entry(engine_error_class(&e)).or_insert(0) += 1;
                        rejected += 1;
                    }
                }
            }
            let elapsed = start.elapsed();
            let mut t = Table::new("campaign outcomes", &["outcome", "count"]);
            t.row(vec!["solved (valid matching)".into(), solved.to_string()]);
            t.row(vec!["rejected (typed error)".into(), rejected.to_string()]);
            for (name, n) in &tiers {
                t.row(vec![format!("tier: {name}"), n.to_string()]);
            }
            for (name, n) in &errors {
                t.row(vec![format!("error: {name}"), n.to_string()]);
            }
            for (name, n) in &injected {
                t.row(vec![format!("fault: {name}"), n.to_string()]);
            }
            print!("{}", t.render());
            println!("campaign passed: no panics, every matching valid, in {elapsed:.2?}");
            Ok(())
        }
        Command::MaxMin { file, combiner } => {
            let g = load(&file)?;
            let weights = edge_weights(&g, combiner);
            let start = Instant::now();
            let r = maxmin_with_weights(&g, &weights);
            let elapsed = start.elapsed();
            r.matching.validate(&g)?;
            println!("egalitarian (bottleneck) solve in {elapsed:.2?}:");
            println!("  cardinality (max)    : {}", r.cardinality);
            println!("  bottleneck floor     : {:.4}", r.bottleneck);
            println!(
                "  total benefit        : {:.3}",
                r.matching.total_weight(&weights)
            );
            println!("  feasibility probes   : {}", r.probes);
            Ok(())
        }
        Command::Budget {
            file,
            limit,
            combiner,
            iters,
        } => {
            let g = load(&file)?;
            let weights = edge_weights(&g, combiner);
            // Persisted graphs carry benefits, not task pay: unit costs.
            let costs = vec![1.0; g.n_edges()];
            let gr = greedy_budgeted(&g, &weights, &costs, limit);
            let la = lagrangian_budgeted(&g, &weights, &costs, limit, iters);
            println!("budget-constrained solve (limit {limit}, unit edge costs):");
            println!(
                "  greedy     : benefit {:.3}, cost {:.1}, {} pairs",
                gr.total_weight,
                gr.total_cost,
                gr.matching.len()
            );
            println!(
                "  lagrangian : benefit {:.3}, cost {:.1}, {} pairs (mu {:.4}, {} solves)",
                la.total_weight,
                la.total_cost,
                la.matching.len(),
                la.mu,
                la.solves
            );
            Ok(())
        }
        Command::Online {
            file,
            policy,
            order,
        } => {
            let g = load(&file)?;
            let out = run_online(&g, mbta_market::Combiner::balanced(), order, policy);
            out.matching.validate(&g)?;
            println!("online simulation ({policy:?}, {order:?}):");
            println!("  online value   : {:.3}", out.online_value);
            println!("  offline optimum: {:.3}", out.offline_value);
            println!("  competitive    : {:.1}%", out.competitive_ratio() * 100.0);
            println!("  pairs          : {}", out.matching.len());
            Ok(())
        }
        Command::Report {
            file,
            algorithm,
            combiner,
            top,
        } => {
            let g = load(&file)?;
            let m = solve(&g, combiner, algorithm);
            m.validate(&g)?;
            let report = AssignmentReport::build(&g, &m, combiner);
            print!("{}", report.render(top));
            Ok(())
        }
        Command::TopK { file, k, combiner } => {
            let g = load(&file)?;
            let weights = edge_weights(&g, combiner);
            let solutions = k_best_bmatchings(&g, &weights, k);
            println!("top {} assignments (of {} requested):", solutions.len(), k);
            for (rank, s) in solutions.iter().enumerate() {
                s.matching.validate(&g)?;
                println!(
                    "  #{:<2} weight {:>10.4}  pairs {}",
                    rank + 1,
                    s.weight,
                    s.matching.len()
                );
            }
            Ok(())
        }
        Command::GenTrace {
            profile,
            workers,
            tasks,
            degree,
            dims,
            seed,
            horizon,
            repeats,
            out,
        } => {
            let wspec = WorkloadSpec {
                profile,
                n_workers: workers,
                n_tasks: tasks,
                avg_worker_degree: degree,
                skill_dims: dims,
                seed,
            };
            let tspec = TraceSpec {
                horizon,
                mean_session: horizon * 0.2,
                mean_task_lifetime: horizon * 0.3,
                seed,
            };
            let events = tspec.generate_repeated(workers, tasks, repeats);
            let tf = TraceFile::new(wspec, events)?;
            let n = tf.events.len();
            fs::write(&out, tf.render())?;
            println!(
                "wrote {}: {n} events over horizon {horizon} \
                 ({workers} workers x {repeats} sessions, {tasks} tasks x {repeats} postings, seed {seed})",
                out.display()
            );
            Ok(())
        }
        Command::Serve(opts) => run_service(&opts, false),
        Command::Replay(opts) => run_service(&opts, true),
        Command::PlanStats { trace, shards } => run_plan_stats(&trace, &shards),
        Command::Follow(opts) => run_follow(&opts),
        Command::Send(opts) => run_send(&opts),
        Command::ShardWorker(opts) => run_shard_worker(&opts),
        Command::Route(opts) => run_route(&opts),
        Command::Recover { trace, wal_dir } => run_recover(&trace, &wal_dir),
        Command::Sweep { file, steps } => {
            let g = load(&file)?;
            let lambdas: Vec<f64> = (0..steps).map(|i| i as f64 / (steps - 1) as f64).collect();
            let pts = lambda_sweep(&g, &lambdas);
            let mut t = Table::new(
                format!("lambda sweep: {}", file.display()),
                &[
                    "lambda",
                    "total_rb",
                    "total_wb",
                    "welfare",
                    "worker_share%",
                    "pairs",
                ],
            );
            for p in pts {
                t.row(vec![
                    fnum(p.lambda, 2),
                    fnum(p.total_rb, 2),
                    fnum(p.total_wb, 2),
                    fnum(p.total_welfare(), 2),
                    fnum(p.worker_share() * 100.0, 1),
                    p.cardinality.to_string(),
                ]);
            }
            print!("{}", t.render());
            Ok(())
        }
    }
}

/// Stable short labels for campaign accounting (the `Display` impl
/// interpolates instance-specific numbers, which would fragment the tally).
fn engine_error_class(e: &EngineError) -> &'static str {
    match e {
        EngineError::WeightLenMismatch { .. } => "weight-len-mismatch",
        EngineError::NonFiniteWeight { .. } => "non-finite-weight",
        EngineError::NegativeWeight { .. } => "negative-weight",
        EngineError::EmptyGraph { .. } => "empty-graph",
        EngineError::NoAssignableCapacity => "no-assignable-capacity",
    }
}

/// Pretty-prints a parsed telemetry snapshot: one table per metric kind,
/// with histogram quantiles derived from the shared bucket layout.
fn render_metrics(path: &Path, snap: &Snapshot) -> String {
    let mut counters = Table::new(
        format!("metrics: counters ({})", path.display()),
        &["name", "total"],
    );
    let mut gauges = Table::new(
        "metrics: gauges",
        &["name", "last", "mean", "min", "max", "sets"],
    );
    let mut hists = Table::new(
        "metrics: histograms",
        &["name", "count", "p50", "p99", "max", "mean"],
    );
    let (mut nc, mut ng, mut nh) = (0usize, 0usize, 0usize);
    for m in &snap.metrics {
        match &m.value {
            MetricValue::Counter(v) => {
                nc += 1;
                counters.row(vec![m.name.clone(), v.to_string()]);
            }
            MetricValue::Gauge {
                last,
                count,
                mean,
                min,
                max,
            } => {
                ng += 1;
                gauges.row(vec![
                    m.name.clone(),
                    fnum(*last, 3),
                    fnum(*mean, 3),
                    fnum(*min, 3),
                    fnum(*max, 3),
                    count.to_string(),
                ]);
            }
            MetricValue::Histogram(h) => {
                nh += 1;
                hists.row(vec![
                    m.name.clone(),
                    h.count.to_string(),
                    fnum(h.quantile(0.5), 3),
                    fnum(h.quantile(0.99), 3),
                    fnum(h.max, 3),
                    fnum(h.mean(), 3),
                ]);
            }
        }
    }
    let mut out = String::new();
    for (n, t) in [(nc, counters), (ng, gauges), (nh, hists)] {
        if n > 0 {
            out.push_str(&t.render());
        }
    }
    if out.is_empty() {
        out.push_str("metrics snapshot is empty\n");
    }
    out
}

/// Renders a snapshot for `--metrics-out`: JSON when the path ends in
/// `.json`, Prometheus text exposition otherwise.
fn render_snapshot_file(snap: &Snapshot, path: &Path) -> String {
    if path.extension().is_some_and(|e| e == "json") {
        snap.to_json()
    } else {
        snap.to_prometheus()
    }
}

/// Tees interval telemetry deltas out of the batch stream: every `every`
/// batches, the registry delta since the previous write overwrites
/// `path` (the file is a scrape target, not a log). The final cumulative
/// snapshot lands after the run via `run_service`.
struct MetricsTee<'a, S> {
    inner: &'a mut S,
    path: &'a Path,
    every: u64,
    seen: u64,
    diff: RegistryDiff,
    error: Option<io::Error>,
}

impl<S: DecisionSink> DecisionSink for MetricsTee<'_, S> {
    fn on_batch(&mut self, stats: &BatchStats, decisions: &[Decision]) {
        self.inner.on_batch(stats, decisions);
        self.seen += 1;
        if self.error.is_none() && self.seen.is_multiple_of(self.every) {
            let delta = self.diff.advance(mbta_telemetry::global().snapshot());
            if let Err(e) = fs::write(self.path, render_snapshot_file(&delta, self.path)) {
                self.error = Some(e);
            }
        }
    }
}

/// Streams every arrival through the service, pumping between offers so
/// watermark flushes happen promptly and `Defer` backpressure makes
/// progress instead of spinning.
///
/// Runs as an epoch loop: when `--replan-threshold` is set and the live
/// cut degrades past it, the service is detached at the batch boundary, a
/// fresh plan is built from the live weights, and the carried state is
/// resumed under it (journaling a plan record if a WAL is attached). With
/// no threshold the loop is a single epoch over the initial plan.
fn drive<S: DecisionSink>(
    g: &BipartiteGraph,
    mut plan: ShardPlan,
    cfg: &ServiceConfig,
    poison_shard: Option<usize>,
    mut store: Option<DurableStore>,
    events: &[Arrival],
    sink: &mut S,
) -> ServiceReport {
    let mut idx = 0usize;
    let mut carried = None;
    loop {
        let mut svc = match carried.take() {
            None => {
                let mut svc = DispatchService::new(g, &plan, cfg.clone());
                if let Some(s) = poison_shard {
                    svc.poison_shard(s);
                }
                if let Some(store) = store.take() {
                    svc.attach_store(store);
                }
                svc
            }
            Some(c) => DispatchService::resume(g, &plan, c, sink),
        };
        while idx < events.len() {
            let a = events[idx];
            while let OfferOutcome::Deferred = svc.offer(a) {
                svc.pump(sink);
            }
            idx += 1;
            svc.pump(sink);
            if svc.replan_due() {
                break;
            }
        }
        if idx >= events.len() {
            return svc.finish(sink);
        }
        let c = svc.detach();
        plan = ShardPlan::build(g, c.live_weights(), plan.n_shards(), plan.routing);
        carried = Some(c);
    }
}

/// Network analogue of [`drive`]: pops arrivals off the TCP ingress
/// queue, keeps the primary's heartbeat file fresh, and publishes live
/// status for `QUERY_STATUS` replies. Ends when a client has sent `FIN`
/// and the queue is drained.
fn drive_net<S: DecisionSink>(
    mut svc: DispatchService<'_>,
    ingress: &NetIngress,
    wal_dir: Option<&Path>,
    sink: &mut S,
) -> Result<ServiceReport, Box<dyn Error>> {
    let beat_every = Duration::from_millis(100);
    let mut last_beat = Instant::now();
    loop {
        if let Some(dir) = wal_dir {
            if last_beat.elapsed() >= beat_every {
                heartbeat_touch(dir)
                    .map_err(|e| format!("cannot write heartbeat in {}: {e}", dir.display()))?;
                last_beat = Instant::now();
            }
        }
        match ingress.pop_wait(Duration::from_millis(50)) {
            Some((_ns, a)) => {
                while let OfferOutcome::Deferred = svc.offer(a) {
                    svc.pump(sink);
                }
                svc.pump(sink);
            }
            None => {
                svc.pump(sink);
                if ingress.fin_received() && ingress.is_drained() {
                    break;
                }
            }
        }
        ingress.set_status(
            svc.batches_committed(),
            svc.current_assignments(),
            svc.current_value(),
        );
    }
    Ok(svc.finish(sink))
}

/// [`drive_net`], wrapped in a [`MetricsTee`] when interval scraping was
/// requested — the tee keeps overwriting the snapshot file during the
/// run, so the counters survive a `kill -9` of the primary.
fn drive_net_metered<S: DecisionSink>(
    svc: DispatchService<'_>,
    ingress: &NetIngress,
    wal_dir: Option<&Path>,
    sink: &mut S,
    opts: &ServeOpts,
) -> Result<ServiceReport, Box<dyn Error>> {
    match (&opts.metrics_out, opts.metrics_every) {
        (Some(path), Some(every)) => {
            let mut tee = MetricsTee {
                inner: sink,
                path,
                every,
                seen: 0,
                diff: RegistryDiff::new(),
                error: None,
            };
            let report = drive_net(svc, ingress, wal_dir, &mut tee)?;
            if let Some(e) = tee.error {
                return Err(format!("cannot write metrics to {}: {e}", path.display()).into());
            }
            Ok(report)
        }
        _ => drive_net(svc, ingress, wal_dir, sink),
    }
}

/// [`drive`], wrapped in a [`MetricsTee`] when interval scraping was
/// requested via `--metrics-out` + `--metrics-every`.
#[allow(clippy::too_many_arguments)]
fn drive_metered<S: DecisionSink>(
    g: &BipartiteGraph,
    plan: ShardPlan,
    cfg: &ServiceConfig,
    poison_shard: Option<usize>,
    store: Option<DurableStore>,
    events: &[Arrival],
    sink: &mut S,
    opts: &ServeOpts,
) -> Result<ServiceReport, Box<dyn Error>> {
    match (&opts.metrics_out, opts.metrics_every) {
        (Some(path), Some(every)) => {
            let mut tee = MetricsTee {
                inner: sink,
                path,
                every,
                seen: 0,
                diff: RegistryDiff::new(),
                error: None,
            };
            let report = drive(g, plan, cfg, poison_shard, store, events, &mut tee);
            if let Some(e) = tee.error {
                return Err(format!("cannot write metrics to {}: {e}", path.display()).into());
            }
            Ok(report)
        }
        _ => Ok(drive(g, plan, cfg, poison_shard, store, events, sink)),
    }
}

/// Shared implementation of `serve` (wall-clock solve budgets) and
/// `replay` (deterministic budgets; the decision log is byte-identical
/// across runs). Exits non-zero if the final assignment violates any
/// capacity, or if `--max-wall-ms` is exceeded.
fn run_service(opts: &ServeOpts, deterministic: bool) -> Result<(), Box<dyn Error>> {
    let text = fs::read_to_string(&opts.trace)
        .map_err(|e| format!("cannot read trace {}: {e}", opts.trace.display()))?;
    let tf = TraceFile::parse(&text)?;
    let g = tf.spec.generate().realize(&BenefitParams::default())?;
    let weights = edge_weights(&g, Combiner::balanced());
    let plan = ShardPlan::build(&g, &weights, opts.shards, opts.routing);

    let cfg = ServiceConfig {
        batch: BatchConfig {
            max_events: opts.batch_max,
            max_bytes: opts.batch_bytes,
            flush_interval: opts.flush_ms,
        },
        queue_cap: opts.queue_cap,
        drop_policy: opts.drop_policy,
        budget: if deterministic {
            BudgetMode::Deterministic
        } else {
            BudgetMode::Wallclock(opts.budget_ms)
        },
        threads: opts.threads,
        boundary_pass: opts.boundary_pass,
        replan_threshold: opts.replan_threshold,
        online: opts.online.then_some(OnlineConfig {
            drift_threshold: opts.drift_threshold,
        }),
        owned_shard: None,
    };
    let store = match &opts.wal_dir {
        Some(dir) => {
            let store_cfg = StoreConfig {
                fsync: opts.fsync,
                snapshot_every: opts.snapshot_every,
                group_every: opts.group_commit,
                ..StoreConfig::default()
            };
            let (store, recovered) = DurableStore::open(dir, store_cfg)
                .map_err(|e| format!("cannot open WAL dir {}: {e}", dir.display()))?;
            if recovered.watermark != 0 {
                // Resuming a half-served trace would double-apply its prefix;
                // the journal is for post-mortem recovery, not continuation.
                return Err(format!(
                    "WAL dir {} already holds {} committed batches; \
                     inspect it with `mbta recover` or point --wal-dir at a fresh directory",
                    dir.display(),
                    recovered.watermark
                )
                .into());
            }
            Some(store)
        }
        None => None,
    };

    let report = if let Some(addr) = &opts.listen {
        // The network loop pulls events as they arrive and never detaches,
        // so the initial plan lives for the whole run.
        let mut svc = DispatchService::new(&g, &plan, cfg);
        if let Some(s) = opts.poison_shard {
            svc.poison_shard(s);
        }
        if let Some(store) = store {
            svc.attach_store(store);
        }
        // Network ingress: the trace defines the universe, the events
        // arrive over TCP. Heartbeat before binding, so any follower that
        // can see the socket can also see a beat.
        if let Some(dir) = &opts.wal_dir {
            heartbeat_touch(dir)
                .map_err(|e| format!("cannot write heartbeat in {}: {e}", dir.display()))?;
        }
        let ingress = NetIngress::bind(NetConfig {
            addr: addr.clone(),
            queue_cap: opts.queue_cap,
            seed: tf.spec.seed,
            ..NetConfig::default()
        })
        .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
        println!("serve: listening on {}", ingress.local_addr());
        let report = match &opts.decisions {
            Some(path) => {
                let file = fs::File::create(path)?;
                let mut sink = WriteSink::new(io::BufWriter::new(file));
                let report =
                    drive_net_metered(svc, &ingress, opts.wal_dir.as_deref(), &mut sink, opts)?;
                if let Some(e) = sink.error.take() {
                    return Err(Box::new(e));
                }
                sink.into_inner().flush()?;
                report
            }
            None => drive_net_metered(svc, &ingress, opts.wal_dir.as_deref(), &mut NullSink, opts)?,
        };
        let s = ingress.stats();
        let mut t = Table::new(
            format!("net ingress: {}", ingress.local_addr()),
            &["metric", "value"],
        );
        let rows: Vec<(&str, u64)> = vec![
            ("connections", s.conns),
            ("frames", s.frames),
            ("events accepted", s.accepted),
            ("retry-after bounces", s.retry_after),
            ("malformed frames", s.malformed),
            ("bytes in", s.bytes_in),
            ("queue high watermark", s.queue_high_watermark as u64),
        ];
        for (k, v) in rows {
            t.row(vec![k.to_string(), v.to_string()]);
        }
        print!("{}", t.render());
        report
    } else {
        let base = tf.events.iter().copied().map(Arrival::from_trace);
        let events: Vec<Arrival> = if opts.drift > 0.0 {
            BenefitDrift::new(&g, opts.drift, tf.spec.seed).weave(base)
        } else {
            base.collect()
        };
        match &opts.decisions {
            Some(path) => {
                let file = fs::File::create(path)?;
                let mut sink = WriteSink::new(io::BufWriter::new(file));
                let report = drive_metered(
                    &g,
                    plan,
                    &cfg,
                    opts.poison_shard,
                    store,
                    &events,
                    &mut sink,
                    opts,
                )?;
                if let Some(e) = sink.error.take() {
                    return Err(Box::new(e));
                }
                sink.into_inner().flush()?;
                report
            }
            None => drive_metered(
                &g,
                plan,
                &cfg,
                opts.poison_shard,
                store,
                &events,
                &mut NullSink,
                opts,
            )?,
        }
    };

    // The final write is the cumulative run snapshot (replacing the last
    // interval delta, if any) — what the CI smoke test greps and what
    // `mbta stats` pretty-prints.
    if let Some(path) = &opts.metrics_out {
        let snap = mbta_telemetry::global().snapshot();
        fs::write(path, render_snapshot_file(&snap, path))
            .map_err(|e| format!("cannot write metrics to {}: {e}", path.display()))?;
        println!("metrics snapshot: {}", path.display());
    }

    print!("{}", report.render());
    println!(
        "{}: {} events in, {} decisions, {} violations, {} ms",
        if deterministic { "replay" } else { "serve" },
        report.events_in,
        report.decisions,
        report.capacity_violations,
        fnum(report.wall_ms, 1)
    );
    // Stable one-line quality summary (the CI sharding smoke greps it).
    println!(
        "sharding: retained {}, effective {}, rescued weight {}, \
         {} rescue solves, {} replans",
        fnum(report.retained_weight, 4),
        fnum(report.effective_retained, 4),
        fnum(report.rescued_weight, 4),
        report.rescue_solves,
        report.replans
    );
    if report.capacity_violations > 0 {
        return Err(format!(
            "capacity invariant violated: {} violations in final assignment",
            report.capacity_violations
        )
        .into());
    }
    if let Some(budget) = opts.max_wall_ms {
        if report.wall_ms > budget as f64 {
            return Err(format!(
                "wall-clock budget exceeded: {} ms > {budget} ms",
                fnum(report.wall_ms, 1)
            )
            .into());
        }
    }
    Ok(())
}

/// `mbta plan-stats`: tabulate shard-plan quality — cross edges and the
/// fraction of planned edge weight kept intra-shard — for every routing
/// policy at each requested shard count, over the trace's universe.
fn run_plan_stats(trace: &Path, shards: &[usize]) -> Result<(), Box<dyn Error>> {
    let text = fs::read_to_string(trace)
        .map_err(|e| format!("cannot read trace {}: {e}", trace.display()))?;
    let tf = TraceFile::parse(&text)?;
    let g = tf.spec.generate().realize(&BenefitParams::default())?;
    let weights = edge_weights(&g, Combiner::balanced());

    let mut t = Table::new(
        format!("plan-stats: {}", trace.display()),
        &["shards", "routing", "cross edges", "retained wt"],
    );
    let mut best: Option<(usize, &'static str, f64)> = None;
    for &k in shards {
        for routing in [
            mbta_service::Routing::HashId,
            mbta_service::Routing::Range,
            mbta_service::Routing::MinCut,
        ] {
            let plan = ShardPlan::build(&g, &weights, k, routing);
            t.row(vec![
                k.to_string(),
                routing.name().to_string(),
                plan.cross_edges.to_string(),
                fnum(plan.retained_weight, 4),
            ]);
            if best.is_none_or(|(_, _, r)| plan.retained_weight > r) {
                best = Some((k, routing.name(), plan.retained_weight));
            }
        }
    }
    print!("{}", t.render());
    if let Some((k, name, r)) = best {
        // Stable one-line summary (scripts grep it).
        println!(
            "plan-stats: best {name} at {k} shards, retained {}",
            fnum(r, 4)
        );
    }
    Ok(())
}

/// `mbta recover`: rebuild assignment state from a WAL directory (latest
/// valid snapshot + log-tail replay) and validate it against the trace's
/// universe graph. Exits non-zero on any capacity violation — the durable
/// state must be safe to act on, not merely parseable.
fn run_recover(trace: &Path, wal_dir: &Path) -> Result<(), Box<dyn Error>> {
    let text = fs::read_to_string(trace)
        .map_err(|e| format!("cannot read trace {}: {e}", trace.display()))?;
    let tf = TraceFile::parse(&text)?;
    let g = tf.spec.generate().realize(&BenefitParams::default())?;

    let start = Instant::now();
    let state =
        recover(wal_dir).map_err(|e| format!("cannot recover from {}: {e}", wal_dir.display()))?;
    let elapsed = start.elapsed();
    let violations = recovered_capacity_violations(&g, &state);

    let mut t = Table::new(
        format!("recover: {}", wal_dir.display()),
        &["metric", "value"],
    );
    let rows: Vec<(&str, String)> = vec![
        ("batch watermark", state.watermark.to_string()),
        (
            "snapshot base",
            state
                .snapshot_watermark
                .map_or_else(|| "none (pure WAL replay)".into(), |w| w.to_string()),
        ),
        ("wal records replayed", state.records_replayed.to_string()),
        ("torn bytes dropped", state.truncated_bytes.to_string()),
        ("shards", state.shards.len().to_string()),
        ("assignments", state.assignments().to_string()),
        ("total weight", fnum(state.total_weight(), 4)),
        ("capacity violations", violations.to_string()),
        ("recovery time", format!("{elapsed:.2?}")),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    print!("{}", t.render());
    // Stable one-line summary (the CI crash-recovery smoke greps it).
    println!(
        "recover: watermark {}, {} assignments, total weight {}, \
         {} capacity violations, {} bytes truncated",
        state.watermark,
        state.assignments(),
        fnum(state.total_weight(), 4),
        violations,
        state.truncated_bytes
    );
    if violations > 0 {
        return Err(format!(
            "recovered state violates {violations} capacities against {}",
            trace.display()
        )
        .into());
    }
    Ok(())
}

/// Whether nothing is listening on `addr`. Promotion gate: a `kill -9`'d
/// primary can leave its port in TIME_WAIT, where a fresh bind fails even
/// though the primary is gone — so a failed bind falls back to a connect
/// probe, and a refused connect proves no listener exists. Only a port
/// that *answers* keeps the follower waiting (split-brain avoidance).
fn port_is_dead(addr: &str) -> bool {
    if let Ok(l) = TcpListener::bind(addr) {
        drop(l);
        return true;
    }
    match addr.to_socket_addrs().ok().and_then(|mut it| it.next()) {
        Some(sa) => matches!(
            TcpStream::connect_timeout(&sa, Duration::from_millis(250)),
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused
        ),
        None => false,
    }
}

fn follower_status(f: &FollowerState, role: Role) -> StatusInfo {
    StatusInfo {
        role,
        watermark: f.watermark(),
        assignments: f.assignments() as u64,
        total_weight: f.total_weight(),
    }
}

/// `mbta follow`: tail a primary's WAL directory as a warm read-only
/// replica, serve status queries, and on primary death (stale heartbeat
/// and dead ingress port) promote — replay the durable tail, persist a
/// warm snapshot, and validate the promoted state against the trace's
/// universe. Exits non-zero on any capacity violation.
fn run_follow(o: &FollowOpts) -> Result<(), Box<dyn Error>> {
    let text = fs::read_to_string(&o.trace)
        .map_err(|e| format!("cannot read trace {}: {e}", o.trace.display()))?;
    let tf = TraceFile::parse(&text)?;
    let g = tf.spec.generate().realize(&BenefitParams::default())?;

    // Anchor a relative --wal-dir to the startup cwd once: the heartbeat
    // file is re-read on every poll, and resolving the path at poll time
    // would silently follow any later cwd change to a different (stale)
    // heartbeat. Not `canonicalize` — the primary may not have created
    // the directory yet.
    let wal_dir = if o.wal_dir.is_absolute() {
        o.wal_dir.clone()
    } else {
        std::env::current_dir()
            .map_err(|e| format!("cannot resolve current dir for --wal-dir: {e}"))?
            .join(&o.wal_dir)
    };

    // Wait for the primary to exist: WAL dir with a first heartbeat.
    let deadline = Instant::now() + Duration::from_millis(o.max_wait_ms);
    while !matches!(heartbeat_age(&wal_dir), Ok(Some(_))) {
        if Instant::now() >= deadline {
            return Err(format!(
                "no primary heartbeat in {} after {} ms",
                wal_dir.display(),
                o.max_wait_ms
            )
            .into());
        }
        thread::sleep(Duration::from_millis(o.poll_ms));
    }

    // Warm start from the durable state, then follow the live tail.
    let state =
        recover(&wal_dir).map_err(|e| format!("cannot recover from {}: {e}", wal_dir.display()))?;
    let mut follower = FollowerState::from_recovered(&state);
    let mut tail = WalTail::resume_from(&wal_dir, follower.watermark());
    println!(
        "follow: warm at watermark {}, {} assignments",
        follower.watermark(),
        follower.assignments()
    );

    let status = match &o.query_listen {
        Some(addr) => {
            let srv = StatusServer::bind(addr, follower_status(&follower, Role::Follower))
                .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
            println!("follow: status queries on {}", srv.local_addr());
            Some(srv)
        }
        None => None,
    };

    loop {
        let poll = tail.poll()?;
        mbta_telemetry::counter_add("mbta_follow_polls_total", 1);
        if !poll.records.is_empty() {
            mbta_telemetry::counter_add("mbta_follow_records_total", poll.records.len() as u64);
        }
        for rec in &poll.records {
            follower.apply(rec);
        }
        if poll.status == TailStatus::Gap {
            // The primary compacted past our position: re-seed from the
            // latest snapshot instead of replaying a hole.
            mbta_telemetry::counter_add("mbta_follow_gaps_total", 1);
            let state = recover(&wal_dir)
                .map_err(|e| format!("cannot re-recover from {}: {e}", wal_dir.display()))?;
            follower = FollowerState::from_recovered(&state);
            tail = WalTail::resume_from(&wal_dir, follower.watermark());
        }
        if let Some(s) = &status {
            s.update(follower_status(&follower, Role::Follower));
        }

        let age = heartbeat_age(&wal_dir)?.unwrap_or(Duration::MAX);
        if age >= Duration::from_millis(o.heartbeat_ms)
            && o.listen.as_deref().is_none_or(port_is_dead)
        {
            break;
        }
        thread::sleep(Duration::from_millis(o.poll_ms));
    }

    // Promote. The writer is dead, so a torn tail frame is final: one
    // last poll picks up every completed record, then the torn suffix is
    // dropped exactly as crash recovery would drop it.
    let last = tail.poll()?;
    for rec in &last.records {
        follower.apply(rec);
    }
    let violations = recovered_capacity_violations(&g, &follower.to_recovered());
    let snap_path = mbta_store::snapshot::write(&wal_dir, &follower.to_snapshot())
        .map_err(|e| format!("cannot write promotion snapshot: {e}"))?;
    if let Some(s) = &status {
        s.update(follower_status(&follower, Role::Primary));
    }
    println!("follow: warm snapshot {}", snap_path.display());
    // Stable one-line summary (the CI failover smoke greps it).
    println!(
        "follow: promoted at watermark {}, {} assignments, total weight {}, \
         {} capacity violations, {} bytes in flight dropped",
        follower.watermark(),
        follower.assignments(),
        fnum(follower.total_weight(), 4),
        violations,
        last.blocked_bytes
    );
    if violations > 0 {
        return Err(format!(
            "promoted state violates {violations} capacities against {}",
            o.trace.display()
        )
        .into());
    }
    Ok(())
}

/// `mbta send`: stream a trace's events to a serving ingress over TCP
/// (with RETRY-AFTER-aware backoff), or probe an endpoint's status.
fn run_send(o: &SendOpts) -> Result<(), Box<dyn Error>> {
    let mut client = Client::connect_retry(&o.addr, Duration::from_millis(o.connect_wait_ms))
        .map_err(|e| format!("cannot connect to {}: {e}", o.addr))?;
    if o.status {
        return match client.request(&Request::QueryStatus)? {
            Reply::Status(s) => {
                println!(
                    "status: role {}, watermark {}, {} assignments, total weight {}",
                    s.role.name(),
                    s.watermark,
                    s.assignments,
                    fnum(s.total_weight, 4)
                );
                Ok(())
            }
            other => Err(format!("unexpected reply to status query: {other:?}").into()),
        };
    }
    let trace = o.trace.as_ref().expect("parser requires --trace");
    let text = fs::read_to_string(trace)
        .map_err(|e| format!("cannot read trace {}: {e}", trace.display()))?;
    let tf = TraceFile::parse(&text)?;
    let base = tf.events.iter().copied().map(Arrival::from_trace);
    let events: Vec<Arrival> = if o.drift > 0.0 {
        let g = tf.spec.generate().realize(&BenefitParams::default())?;
        BenefitDrift::new(&g, o.drift, tf.spec.seed).weave(base)
    } else {
        base.collect()
    };

    let mut backoff = DeferBackoff::new(5, 500, tf.spec.seed);
    let start = Instant::now();
    let summary = send_events(&mut client, o.namespace, &events, o.batch, &mut backoff)?;
    client.request(&Request::Fin)?;
    // Stable one-line summary (the CI overload smoke greps it).
    println!(
        "send: {} events in {} batches, {} retries, {:.2?}",
        summary.sent,
        summary.batches,
        summary.retries,
        start.elapsed()
    );
    if summary.sent as usize != events.len() {
        return Err(format!(
            "server acknowledged {} of {} events",
            summary.sent,
            events.len()
        )
        .into());
    }
    Ok(())
}

/// `mbta shard-worker`: one cluster shard-owner process. Prints the bound
/// address on startup (scripts capture ephemeral ports from it), serves
/// until the router FINs, then prints per-namespace reports. Fails if any
/// namespace ended with capacity violations.
fn run_shard_worker(o: &ShardWorkerOpts) -> Result<(), Box<dyn Error>> {
    let mut cfg = mbta_cluster::WorkerConfig::new(o.traces.clone(), o.shard, o.shards);
    cfg.listen = o.listen.clone();
    cfg.routing = o.routing;
    cfg.placements = o.placements.clone();
    cfg.wal_dir = o.wal_dir.clone();
    cfg.fsync = o.fsync;
    cfg.group_commit = o.group_commit;
    cfg.snapshot_every = o.snapshot_every;
    cfg.queue_cap = o.queue_cap;
    cfg.threads = o.threads;
    cfg.online = o.online.then_some(o.drift_threshold);
    cfg.budget_ms = o.budget_ms;
    cfg.linger_ms = o.linger_ms;
    cfg.decisions_dir = o.decisions_dir.clone();

    let (shard, shards) = (o.shard, o.shards);
    let summary = mbta_cluster::worker::run(cfg, |addr| {
        // Stable one-line banner (scripts grep the address out of it).
        println!("shard-worker: shard {shard}/{shards} listening on {addr}");
    })?;

    let mut t = Table::new(
        format!("shard-worker report: shard {shard}/{shards}"),
        &[
            "ns",
            "events_in",
            "processed",
            "foreign",
            "decisions",
            "batches",
            "violations",
            "value",
        ],
    );
    for (ns, r) in summary.reports.iter().enumerate() {
        t.row(vec![
            ns.to_string(),
            r.events_in.to_string(),
            r.events_processed.to_string(),
            r.foreign_events.to_string(),
            r.decisions.to_string(),
            r.batches.to_string(),
            r.capacity_violations.to_string(),
            fnum(r.final_value, 4),
        ]);
    }
    print!("{}", t.render());
    println!(
        "shard-worker: {} events, {} unknown-namespace, {} violations",
        summary.events,
        summary.unknown_namespace,
        summary.violations()
    );
    if summary.violations() > 0 {
        return Err(format!(
            "shard {shard} finished with {} capacity violations",
            summary.violations()
        )
        .into());
    }
    Ok(())
}

/// `mbta route`: the cluster router. Admits client events exactly-once,
/// routes them with the shared per-namespace plans, fans out to the
/// shard owners, and reports the aggregated outcome. Poisoned shards
/// degrade the run (and are surfaced here) but never abort it; the exit
/// is non-zero only if events went *unaccounted*.
fn run_route(o: &RouteOpts) -> Result<(), Box<dyn Error>> {
    let cfg = mbta_cluster::RouterConfig {
        listen: o.listen.clone(),
        owners: o.owners.clone(),
        traces: o.traces.clone(),
        routing: o.routing,
        placements: o.placements.clone(),
        save_placements: o.save_placements.clone(),
        queue_cap: o.queue_cap,
        batch: o.batch,
        owner_retry_ms: o.owner_retry_ms,
        report_wait_ms: o.report_wait_ms,
    };
    let (n_owners, n_tenants) = (o.owners.len(), o.traces.len());
    let summary = mbta_cluster::router::run(cfg, |addr| {
        println!("route: listening on {addr} ({n_owners} owners, {n_tenants} tenants)");
    })?;

    let mut t = Table::new(
        "router report: per-owner outcome".to_string(),
        &[
            "shard",
            "owner",
            "sent",
            "state",
            "events",
            "decisions",
            "assignments",
            "weight",
        ],
    );
    for (s, addr) in o.owners.iter().enumerate() {
        let state = if summary.poisoned[s] {
            "POISONED"
        } else {
            "ok"
        };
        let (events, decisions, assignments, weight) = match &summary.owner_reports[s] {
            Some(r) => (
                r.events.to_string(),
                r.decisions.to_string(),
                r.assignments.to_string(),
                fnum(r.total_weight, 4),
            ),
            None => ("-".into(), "-".into(), "-".into(), "-".into()),
        };
        t.row(vec![
            s.to_string(),
            addr.clone(),
            summary.per_owner_sent[s].to_string(),
            state.to_string(),
            events,
            decisions,
            assignments,
            weight,
        ]);
    }
    print!("{}", t.render());
    println!(
        "route: {} admitted = {} forwarded + {} degraded + {} invalid + {} cross + {} unknown-ns",
        summary.admitted,
        summary.forwarded,
        summary.degraded,
        summary.invalid,
        summary.cross_benefit,
        summary.unknown_namespace
    );
    if !summary.conserved() {
        return Err(format!(
            "router lost track of {} admitted events",
            summary.admitted
                - summary.forwarded
                - summary.degraded
                - summary.invalid
                - summary.cross_benefit
                - summary.unknown_namespace
        )
        .into());
    }
    Ok(())
}

/// Counts capacity violations of a recovered state against the universe
/// graph: out-of-range edges, edges assigned in two shards, workers over
/// capacity, tasks over demand.
fn recovered_capacity_violations(g: &BipartiteGraph, state: &RecoveredState) -> usize {
    let mut seen = vec![false; g.n_edges()];
    let mut w_load = vec![0u32; g.n_workers()];
    let mut t_load = vec![0u32; g.n_tasks()];
    let mut violations = 0usize;
    for shard in &state.shards {
        for &e in shard {
            let Some(slot) = seen.get_mut(e as usize) else {
                violations += 1; // edge outside the trace's universe
                continue;
            };
            if std::mem::replace(slot, true) {
                violations += 1; // same edge assigned in two shards
                continue;
            }
            let edge = mbta_graph::EdgeId::new(e);
            w_load[g.worker_of(edge).index()] += 1;
            t_load[g.task_of(edge).index()] += 1;
        }
    }
    violations += g
        .workers()
        .filter(|&w| w_load[w.index()] > g.capacity(w))
        .count();
    violations += g
        .tasks()
        .filter(|&t| t_load[t.index()] > g.demand(t))
        .count();
    violations
}

fn load(path: &Path) -> Result<BipartiteGraph, Box<dyn Error>> {
    let bytes = fs::read(path)?;
    Ok(read_graph(&bytes[..])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbta_core::algorithms::Algorithm;
    use mbta_market::Combiner;
    use mbta_matching::mcmf::PathAlgo;
    use mbta_workload::Profile;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mbta_cli_{}_{name}", std::process::id()))
    }

    #[test]
    fn gen_stats_solve_sweep_roundtrip() {
        let out = tmp("roundtrip.mbta");
        run(Command::Gen {
            profile: Profile::Uniform,
            workers: 50,
            tasks: 25,
            degree: 4.0,
            dims: 4,
            seed: 9,
            out: out.clone(),
        })
        .unwrap();
        assert!(out.exists());

        run(Command::Stats { file: out.clone() }).unwrap();
        run(Command::Solve {
            file: out.clone(),
            algorithm: Algorithm::ExactMB {
                algo: PathAlgo::Dijkstra,
            },
            combiner: Combiner::balanced(),
            pairs: true,
            deadline_ms: None,
            fallback: None,
        })
        .unwrap();
        run(Command::Solve {
            file: out.clone(),
            algorithm: Algorithm::ExactMB {
                algo: PathAlgo::Dijkstra,
            },
            combiner: Combiner::balanced(),
            pairs: false,
            deadline_ms: Some(50),
            fallback: Some(FallbackMode::Chain),
        })
        .unwrap();
        run(Command::Sweep {
            file: out.clone(),
            steps: 3,
        })
        .unwrap();
        run(Command::MaxMin {
            file: out.clone(),
            combiner: Combiner::balanced(),
        })
        .unwrap();
        run(Command::Budget {
            file: out.clone(),
            limit: 10.0,
            combiner: Combiner::Harmonic,
            iters: 10,
        })
        .unwrap();
        run(Command::Online {
            file: out.clone(),
            policy: mbta_matching::online::OnlinePolicy::Greedy,
            order: mbta_core::online::ArrivalOrder::Random { seed: 1 },
        })
        .unwrap();
        run(Command::Report {
            file: out.clone(),
            algorithm: Algorithm::GreedyMB,
            combiner: Combiner::balanced(),
            top: 5,
        })
        .unwrap();
        run(Command::TopK {
            file: out.clone(),
            k: 3,
            combiner: Combiner::balanced(),
        })
        .unwrap();
        let _ = std::fs::remove_file(out);
    }

    fn small_serve_opts(trace: PathBuf, decisions: Option<PathBuf>) -> ServeOpts {
        ServeOpts {
            trace,
            shards: 4,
            threads: 2,
            batch_max: 64,
            batch_bytes: 1 << 20,
            flush_ms: 5.0,
            queue_cap: 4096,
            drop_policy: mbta_service::DropPolicy::Defer,
            routing: mbta_service::Routing::HashId,
            boundary_pass: false,
            replan_threshold: None,
            online: false,
            drift_threshold: 0.2,
            budget_ms: 50,
            drift: 0.1,
            poison_shard: None,
            max_wall_ms: None,
            decisions,
            metrics_out: None,
            metrics_every: None,
            wal_dir: None,
            snapshot_every: 64,
            fsync: mbta_service::FsyncPolicy::Batch,
            group_commit: 1,
            listen: None,
        }
    }

    #[test]
    fn serve_with_wal_then_recover_matches() {
        let trace = tmp("walserve.trace");
        run(Command::GenTrace {
            profile: Profile::Uniform,
            workers: 50,
            tasks: 30,
            degree: 4.0,
            dims: 4,
            seed: 29,
            horizon: 30.0,
            repeats: 2,
            out: trace.clone(),
        })
        .unwrap();

        let dir = tmp("walserve.wal");
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = small_serve_opts(trace.clone(), None);
        opts.wal_dir = Some(dir.clone());
        opts.snapshot_every = 8;
        opts.fsync = mbta_service::FsyncPolicy::Never;
        run(Command::Replay(opts.clone())).unwrap();

        // The sealed run recovers cleanly and validates against the trace.
        run(Command::Recover {
            trace: trace.clone(),
            wal_dir: dir.clone(),
        })
        .unwrap();

        // Re-serving into the same (non-empty) WAL dir must refuse — the
        // journal is post-mortem state, not a resume point.
        let r = run(Command::Replay(opts));
        assert!(r.is_err(), "non-empty WAL dir must be rejected");
        let msg = r.unwrap_err().to_string();
        assert!(msg.contains("already holds"), "unexpected error: {msg}");

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn online_serve_with_wal_then_recover_matches() {
        let trace = tmp("online-serve.trace");
        run(Command::GenTrace {
            profile: Profile::Uniform,
            workers: 50,
            tasks: 30,
            degree: 4.0,
            dims: 4,
            seed: 31,
            horizon: 30.0,
            repeats: 2,
            out: trace.clone(),
        })
        .unwrap();

        let dir = tmp("online-serve.wal");
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = small_serve_opts(trace.clone(), None);
        opts.online = true;
        opts.drift_threshold = 0.1;
        opts.drift = 0.3;
        opts.wal_dir = Some(dir.clone());
        opts.snapshot_every = 8;
        opts.fsync = mbta_service::FsyncPolicy::Never;
        run(Command::Replay(opts)).unwrap();

        // The per-event journal recovers cleanly and validates against
        // the trace (zero capacity violations, weights consistent).
        run(Command::Recover {
            trace: trace.clone(),
            wal_dir: dir.clone(),
        })
        .unwrap();

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn serve_over_network_then_follow_promotes() {
        let trace = tmp("net.trace");
        run(Command::GenTrace {
            profile: Profile::Uniform,
            workers: 50,
            tasks: 30,
            degree: 4.0,
            dims: 4,
            seed: 31,
            horizon: 30.0,
            repeats: 2,
            out: trace.clone(),
        })
        .unwrap();

        let dir = tmp("net.wal");
        let _ = std::fs::remove_dir_all(&dir);
        // Reserve an ephemeral port, then reuse it for the real ingress
        // so the sender and the follower's takeover gate know the address.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };

        let mut opts = small_serve_opts(trace.clone(), None);
        opts.wal_dir = Some(dir.clone());
        opts.snapshot_every = 8;
        opts.fsync = mbta_service::FsyncPolicy::Never;
        opts.drift = 0.0; // with --listen, drift is woven by the sender
        opts.listen = Some(addr.clone());
        let primary =
            std::thread::spawn(move || run(Command::Serve(opts)).map_err(|e| e.to_string()));

        // Follower tails the same WAL dir while the primary is serving.
        let follow_opts = crate::args::FollowOpts {
            trace: trace.clone(),
            wal_dir: dir.clone(),
            listen: Some(addr.clone()),
            query_listen: Some("127.0.0.1:0".to_string()),
            heartbeat_ms: 500,
            poll_ms: 10,
            max_wait_ms: 20_000,
        };
        let follower = std::thread::spawn(move || {
            run(Command::Follow(follow_opts)).map_err(|e| e.to_string())
        });

        run(Command::Send(crate::args::SendOpts {
            addr,
            trace: Some(trace.clone()),
            batch: 64,
            drift: 0.1,
            status: false,
            namespace: 0,
            connect_wait_ms: 20_000,
        }))
        .unwrap();

        // FIN drains the primary; its heartbeat then goes stale and its
        // port dies, so the follower promotes with zero violations.
        primary.join().unwrap().unwrap();
        follower.join().unwrap().unwrap();

        // The durable state — including the follower's warm promotion
        // snapshot — recovers cleanly against the trace's universe.
        run(Command::Recover {
            trace: trace.clone(),
            wal_dir: dir.clone(),
        })
        .unwrap();

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn recover_without_wal_dir_errors() {
        let trace = tmp("norecover.trace");
        run(Command::GenTrace {
            profile: Profile::Uniform,
            workers: 20,
            tasks: 10,
            degree: 3.0,
            dims: 2,
            seed: 5,
            horizon: 10.0,
            repeats: 1,
            out: trace.clone(),
        })
        .unwrap();
        let r = run(Command::Recover {
            trace: trace.clone(),
            wal_dir: PathBuf::from("/nonexistent/mbta-wal-dir"),
        });
        assert!(r.is_err());
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn serve_writes_parseable_metrics_snapshot() {
        let trace = tmp("metrics.trace");
        run(Command::GenTrace {
            profile: Profile::Uniform,
            workers: 50,
            tasks: 30,
            degree: 4.0,
            dims: 4,
            seed: 19,
            horizon: 30.0,
            repeats: 2,
            out: trace.clone(),
        })
        .unwrap();

        let mpath = tmp("metrics.prom");
        let mut opts = small_serve_opts(trace.clone(), None);
        opts.metrics_out = Some(mpath.clone());
        opts.metrics_every = Some(2);
        run(Command::Serve(opts)).unwrap();

        let text = std::fs::read_to_string(&mpath).unwrap();
        let snap = Snapshot::parse_prometheus(&text).unwrap();
        let batches = snap.metrics.iter().find_map(|m| match (&m.name, &m.value) {
            (n, MetricValue::Counter(v)) if n == "mbta_service_batches_total" => Some(*v),
            _ => None,
        });
        #[cfg(feature = "telemetry")]
        {
            assert!(
                batches.unwrap_or(0) > 0,
                "mbta_service_batches_total missing or zero in snapshot:\n{text}"
            );
            // `mbta stats` sniffs the snapshot and pretty-prints it.
            run(Command::Stats {
                file: mpath.clone(),
            })
            .unwrap();
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = batches;

        for p in [trace, mpath] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn gen_trace_then_replay_is_deterministic() {
        let trace = tmp("replay.trace");
        run(Command::GenTrace {
            profile: Profile::Uniform,
            workers: 60,
            tasks: 40,
            degree: 4.0,
            dims: 4,
            seed: 11,
            horizon: 40.0,
            repeats: 2,
            out: trace.clone(),
        })
        .unwrap();

        let log_a = tmp("replay_a.log");
        let log_b = tmp("replay_b.log");
        run(Command::Replay(small_serve_opts(
            trace.clone(),
            Some(log_a.clone()),
        )))
        .unwrap();
        run(Command::Replay(small_serve_opts(
            trace.clone(),
            Some(log_b.clone()),
        )))
        .unwrap();
        let a = std::fs::read(&log_a).unwrap();
        let b = std::fs::read(&log_b).unwrap();
        assert!(!a.is_empty(), "replay produced an empty decision log");
        assert_eq!(a, b, "replay decision logs differ between runs");

        for p in [trace, log_a, log_b] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn replay_min_cut_with_rescue_and_replan_is_deterministic() {
        let trace = tmp("mincut.trace");
        run(Command::GenTrace {
            profile: Profile::Uniform,
            workers: 80,
            tasks: 50,
            degree: 5.0,
            dims: 4,
            seed: 17,
            horizon: 40.0,
            repeats: 2,
            out: trace.clone(),
        })
        .unwrap();

        let mk = |log: PathBuf, threads: usize| {
            let mut o = small_serve_opts(trace.clone(), Some(log));
            o.routing = mbta_service::Routing::MinCut;
            o.boundary_pass = true;
            o.replan_threshold = Some(0.01);
            o.shards = 8;
            o.threads = threads;
            o.drift = 0.3;
            o
        };
        let log_a = tmp("mincut_a.log");
        let log_b = tmp("mincut_b.log");
        run(Command::Replay(mk(log_a.clone(), 1))).unwrap();
        run(Command::Replay(mk(log_b.clone(), 4))).unwrap();
        let a = std::fs::read(&log_a).unwrap();
        let b = std::fs::read(&log_b).unwrap();
        assert!(!a.is_empty(), "replay produced an empty decision log");
        assert_eq!(a, b, "boundary pass broke cross-width determinism");

        // The plan-quality tabulation runs over the same universe.
        run(Command::PlanStats {
            trace: trace.clone(),
            shards: vec![2, 4, 8],
        })
        .unwrap();

        for p in [trace, log_a, log_b] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn serve_with_poisoned_shard_completes() {
        let trace = tmp("poison.trace");
        run(Command::GenTrace {
            profile: Profile::Uniform,
            workers: 50,
            tasks: 30,
            degree: 4.0,
            dims: 4,
            seed: 13,
            horizon: 30.0,
            repeats: 2,
            out: trace.clone(),
        })
        .unwrap();

        let mut opts = small_serve_opts(trace.clone(), None);
        opts.poison_shard = Some(0);
        run(Command::Serve(opts)).unwrap();
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn solve_fallback_none_fails_on_degraded_tier() {
        let out = tmp("fallback_none.mbta");
        run(Command::Gen {
            profile: Profile::Uniform,
            workers: 400,
            tasks: 200,
            degree: 8.0,
            dims: 4,
            seed: 7,
            out: out.clone(),
        })
        .unwrap();

        // A zero-ms deadline forces degradation below the exact tier;
        // under `--fallback none` that must surface as a hard error.
        let r = run(Command::Solve {
            file: out.clone(),
            algorithm: Algorithm::ExactMB {
                algo: PathAlgo::Dijkstra,
            },
            combiner: Combiner::balanced(),
            pairs: false,
            deadline_ms: Some(0),
            fallback: Some(FallbackMode::None),
        });
        assert!(r.is_err(), "--fallback none must fail when tier < exact");
        let msg = r.unwrap_err().to_string();
        assert!(msg.contains("fallback none"), "unexpected error: {msg}");

        // Same deadline under `--fallback chain` degrades gracefully.
        run(Command::Solve {
            file: out.clone(),
            algorithm: Algorithm::ExactMB {
                algo: PathAlgo::Dijkstra,
            },
            combiner: Combiner::balanced(),
            pairs: false,
            deadline_ms: Some(0),
            fallback: Some(FallbackMode::Chain),
        })
        .unwrap();
        let _ = std::fs::remove_file(out);
    }

    #[test]
    fn fault_campaign_runs_clean() {
        run(Command::FaultCampaign {
            instances: 120,
            deadline_ms: 50,
            seed: 0,
        })
        .unwrap();
    }

    #[test]
    fn missing_file_errors() {
        let r = run(Command::Stats {
            file: PathBuf::from("/nonexistent/definitely_missing.mbta"),
        });
        assert!(r.is_err());
    }

    #[test]
    fn corrupt_file_errors() {
        let out = tmp("corrupt.mbta");
        std::fs::write(&out, b"this is not a graph").unwrap();
        let r = run(Command::Stats { file: out.clone() });
        assert!(r.is_err());
        let _ = std::fs::remove_file(out);
    }

    #[test]
    fn help_prints() {
        run(Command::Help).unwrap();
    }
}
